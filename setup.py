"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work in
offline environments lacking the ``wheel`` package."""
from setuptools import setup

setup()
