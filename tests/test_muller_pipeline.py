"""The Muller pipeline: generator, synthesis, and the textbook result."""

import pytest

from repro.analysis import check_implementability
from repro.boolmin import equivalent, parse_expr
from repro.petri import is_live, is_marked_graph, is_safe
from repro.stg import muller_pipeline
from repro.synth import synthesize_gc
from repro.synth.netlist import GateKind
from repro.ts import build_state_graph
from repro.verify import verify_circuit


class TestGenerator:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_structure(self, n):
        stg = muller_pipeline(n)
        assert is_marked_graph(stg.net)
        assert is_safe(stg.net)
        assert is_live(stg.net)
        assert stg.inputs == ["c0"]
        assert len(stg.outputs) == n

    def test_state_count_doubles(self):
        sizes = [len(build_state_graph(muller_pipeline(n)))
                 for n in (1, 2, 3, 4)]
        assert sizes == [4, 8, 16, 32]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            muller_pipeline(0)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_implementable_without_csc_signals(self, n):
        assert check_implementability(muller_pipeline(n)).implementable


class TestTextbookResult:
    def test_middle_stages_are_c_elements_of_neighbours(self):
        """Stage i: set = c(i-1)·c(i+1)', reset = c(i-1)'·c(i+1)."""
        netlist = synthesize_gc(muller_pipeline(3))
        for i in (1, 2):
            gate = netlist.gates["c%d" % i]
            assert gate.kind == GateKind.C_ELEMENT
            assert equivalent(gate.set_expr,
                              parse_expr("c%d & ~c%d" % (i - 1, i + 1)))
            assert equivalent(gate.reset_expr,
                              parse_expr("~c%d & c%d" % (i - 1, i + 1)))

    def test_last_stage_follows_predecessor(self):
        netlist = synthesize_gc(muller_pipeline(3))
        gate = netlist.gates["c3"]
        assert equivalent(gate.set_expr, parse_expr("c2"))
        assert equivalent(gate.reset_expr, parse_expr("~c2"))

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_pipeline_verifies_speed_independent(self, n):
        stg = muller_pipeline(n)
        netlist = synthesize_gc(stg)
        report = verify_circuit(netlist, stg)
        assert report.ok, report.summary()
        assert report.states == 2 ** (n + 1)
