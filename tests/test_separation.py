"""Time separation of events on timed marked graphs (paper Section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.petri import PetriNet
from repro.stg import pipeline_ring, vme_read
from repro.timing import (
    TimedMarkedGraph,
    UnrolledGraph,
    max_separation,
    max_separation_unrolled,
    validates_assumption,
)


def two_branch_net(da, db):
    """fork -> two parallel branches (a, b) -> join; delays per transition."""
    net = PetriNet("fork2")
    net.add_place("p0", tokens=1)
    for name in ("pa", "pb", "qa", "qb"):
        net.add_place(name)
    for t in ("fork", "a", "b", "join"):
        net.add_transition(t)
    net.add_arc("p0", "fork")
    net.add_arc("fork", "pa")
    net.add_arc("fork", "pb")
    net.add_arc("pa", "a")
    net.add_arc("pb", "b")
    net.add_arc("a", "qa")
    net.add_arc("b", "qb")
    net.add_arc("qa", "join")
    net.add_arc("qb", "join")
    net.add_arc("join", "p0")
    delays = {"fork": (0, 0), "join": (0, 0), "a": da, "b": db}
    return TimedMarkedGraph(net, delays)


class TestValidation:
    def test_requires_marked_graph(self):
        from repro.stg import vme_read_write

        with pytest.raises(ModelError):
            TimedMarkedGraph(vme_read_write().net, {})

    def test_requires_all_delays(self):
        net = pipeline_ring(3).net
        with pytest.raises(ModelError):
            TimedMarkedGraph(net, {"s0+": (1, 2)})

    def test_rejects_bad_intervals(self):
        net = pipeline_ring(3).net
        delays = {t: (1, 2) for t in net.transitions}
        bad = dict(delays)
        bad[next(iter(net.transitions))] = (3, 1)
        with pytest.raises(ModelError):
            TimedMarkedGraph(net, bad)


class TestTwoBranch:
    def test_deterministic_delays(self):
        """a takes exactly 3, b exactly 5: sep(a,b) = -2, sep(b,a) = 2."""
        tmg = two_branch_net((3, 3), (5, 5))
        assert max_separation_unrolled(tmg, ("a", 0), ("b", 0)) == -2
        assert max_separation_unrolled(tmg, ("b", 0), ("a", 0)) == 2

    def test_interval_delays_worst_case(self):
        """a in [1,4], b in [2,6]: max(t_a - t_b) = 4 - 2 = 2."""
        tmg = two_branch_net((1, 4), (2, 6))
        assert max_separation_unrolled(tmg, ("a", 0), ("b", 0)) == 2
        assert max_separation_unrolled(tmg, ("b", 0), ("a", 0)) == 5

    def test_negative_separation_proves_ordering(self):
        """a in [1,2], b in [5,9]: a always first; sep(a,b) = 2-5 = -3."""
        tmg = two_branch_net((1, 2), (5, 9))
        assert max_separation_unrolled(tmg, ("a", 0), ("b", 0)) == -3
        assert validates_assumption(tmg, "a", "b")
        assert not validates_assumption(tmg, "b", "a")


class TestCyclic:
    def test_sequential_ring_separation(self):
        """In a 4-stage ring with unit delays, consecutive stages are
        exactly one delay apart."""
        net = pipeline_ring(4).net
        delays = {t: (1, 1) for t in net.transitions}
        tmg = TimedMarkedGraph(net, delays)
        # the ring fires s0+, s1-, s2+, s3- in sequence each cycle
        transitions = sorted(net.transitions)
        sep = max_separation(tmg, transitions[1], transitions[0])
        assert sep == pytest.approx(1.0)

    def test_vme_assumption_validation(self):
        """With a slow bus and a fast device, LDTACK- precedes the next
        DSr+ — the Figure 11(a) assumption is justified."""
        delays = {
            "DSr+": (18, 25), "DSr-": (4, 6), "DTACK+": (1, 2),
            "DTACK-": (1, 2), "LDS+": (1, 2), "LDS-": (1, 2),
            "LDTACK+": (3, 5), "LDTACK-": (3, 5), "D+": (1, 2), "D-": (1, 2),
        }
        tmg = TimedMarkedGraph(vme_read().net, delays)
        assert validates_assumption(tmg, "LDTACK-", "DSr+",
                                    occurrence_offset=-1)

    def test_vme_assumption_fails_with_fast_bus(self):
        delays = {t: (1, 2) for t in vme_read().net.transitions}
        tmg = TimedMarkedGraph(vme_read().net, delays)
        assert not validates_assumption(tmg, "LDTACK-", "DSr+",
                                        occurrence_offset=-1)


class TestUnrolledGraph:
    def test_topological_order_complete(self):
        net = vme_read().net
        delays = {t: (1, 2) for t in net.transitions}
        graph = UnrolledGraph(TimedMarkedGraph(net, delays), 3)
        assert len(graph.topo) == 3 * len(net.transitions)

    def test_corner_times_bound_path_times(self):
        tmg = two_branch_net((1, 4), (2, 6))
        graph = UnrolledGraph(tmg, 1)
        lo = graph.earliest_latest(use_max=False)
        hi = graph.earliest_latest(use_max=True)
        for node in graph.topo:
            assert lo[node] <= hi[node]


@given(st.integers(1, 5), st.integers(0, 3), st.integers(1, 5),
       st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_separation_antisymmetry_bound(la, wa, lb, wb):
    """sep(a,b) + sep(b,a) >= 0 always (max is over independent choices)."""
    tmg = two_branch_net((la, la + wa), (lb, lb + wb))
    ab = max_separation_unrolled(tmg, ("a", 0), ("b", 0))
    ba = max_separation_unrolled(tmg, ("b", 0), ("a", 0))
    assert ab + ba >= 0
    # and each is bounded by the extreme corner difference
    assert ab <= (la + wa) - lb
    assert ba <= (lb + wb) - la
