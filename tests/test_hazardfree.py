"""Exact hazard-free two-level minimization (Nowick–Dill, paper §3.3)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import SynthesisError
from repro.boolmin import (
    InputTransition,
    check_cover_hazard_free,
    cube_contains,
    cube_covers,
    cube_from_str,
    dhf_prime_implicants,
    int_to_minterm,
    is_dhf_implicant,
    minimize_hazard_free,
)


def t(start, end, fs, fe):
    return InputTransition(tuple(start), tuple(end), fs, fe)


class TestTransitionModel:
    def test_transition_cube(self):
        tr = t((0, 0, 1), (1, 0, 1), 1, 1)
        assert tr.cube == (None, 0, 1)
        assert tr.kind == "1->1"

    def test_inconsistent_spec_rejected(self):
        from repro.boolmin.hazardfree import onset_offset

        transitions = [
            t((0, 0), (0, 0), 1, 1),
            t((0, 0), (0, 0), 0, 0),
        ]
        with pytest.raises(SynthesisError):
            onset_offset(transitions, 2)


class TestDHFImplicants:
    def test_static_one_requires_single_cube(self):
        """f = 1 on both halves of a 1->1 transition: the union of two
        products covering it is hazardous; the minimizer must pick the
        single covering cube."""
        transitions = [
            t((0, 0), (1, 1), 1, 1),  # multi-input 1->1 change
        ]
        cover = minimize_hazard_free(transitions, 2)
        assert any(cube_covers(c, (None, None)) for c in cover)

    def test_dynamic_intersection_condition(self):
        tr10 = t((1, 1), (0, 0), 1, 0)
        # a cube containing the start is fine
        assert is_dhf_implicant(cube_from_str("1-"), [tr10]) is False or True
        # cube {x1=1} intersects the transition cube (--) and contains the
        # start (1,1)? (1,1) has x0=1 -> "1-" contains it
        assert is_dhf_implicant(cube_from_str("1-"), [tr10])
        # cube {x1=0 side}: "0-" intersects but misses the start
        assert not is_dhf_implicant(cube_from_str("0-"), [tr10])

    def test_dhf_primes_respect_constraints(self):
        transitions = [
            t((1, 1, 0), (0, 0, 0), 1, 0),   # 1->0 dynamic
            t((1, 1, 0), (1, 1, 1), 1, 1),   # static 1 elsewhere
        ]
        primes = dhf_prime_implicants(transitions, 3)
        for p in primes:
            assert is_dhf_implicant(p, transitions)


class TestMinimization:
    def test_single_static_transition(self):
        transitions = [t((1, 0), (1, 1), 1, 1)]
        cover = minimize_hazard_free(transitions, 2)
        assert len(cover) == 1
        assert cube_covers(cover[0], (1, None))

    def test_cover_respects_off_points(self):
        transitions = [
            t((1, 1), (1, 1), 1, 1),   # stable ON point
            t((0, 0), (0, 0), 0, 0),   # stable OFF point
            t((1, 1), (0, 1), 1, 0),   # falls when x0 drops
        ]
        cover = minimize_hazard_free(transitions, 2)
        assert not check_cover_hazard_free(cover, transitions)
        assert not any(cube_contains(c, (0, 0)) for c in cover)

    def test_no_cover_exists(self):
        """A 1->1 transition whose cube contains an OFF point cannot be
        hazard-freely covered."""
        transitions = [
            t((0, 0), (1, 1), 1, 1),     # requires the full square
            t((0, 1), (0, 1), 0, 0),     # but (0,1) must be OFF
        ]
        with pytest.raises(SynthesisError):
            minimize_hazard_free(transitions, 2)

    def test_empty_onset(self):
        transitions = [t((0, 0), (1, 1), 0, 0)]
        assert minimize_hazard_free(transitions, 2) == []

    def test_checker_flags_handover(self):
        """Covering a 1->1 transition with two half-cubes is a static-1
        hazard the checker must flag."""
        transitions = [t((0, 0), (1, 1), 1, 1)]
        bad_cover = [cube_from_str("0-"), cube_from_str("1-")]
        problems = check_cover_hazard_free(bad_cover, transitions)
        assert problems and "static-1" in problems[0]


@st.composite
def random_spec(draw, n=3):
    """Random consistent transition specifications over n=3 variables."""
    transitions = []
    n_transitions = draw(st.integers(1, 4))
    for _ in range(n_transitions):
        start = tuple(draw(st.sampled_from([0, 1])) for _ in range(n))
        # monotonic change: flip a random subset
        flips = draw(st.sets(st.integers(0, n - 1), max_size=n))
        end = tuple((1 - v) if i in flips else v
                    for i, v in enumerate(start))
        fs = draw(st.sampled_from([0, 1]))
        fe = draw(st.sampled_from([0, 1])) if flips else fs
        transitions.append(t(start, end, fs, fe))
    return transitions


@given(random_spec())
@settings(max_examples=120, deadline=None)
def test_minimized_cover_is_hazard_free(transitions):
    from repro.boolmin.hazardfree import onset_offset

    try:
        onset_offset(transitions, 3)
    except SynthesisError:
        assume(False)
    try:
        cover = minimize_hazard_free(transitions, 3)
    except SynthesisError:
        return  # legitimately uncoverable
    assert not check_cover_hazard_free(cover, transitions)


@given(random_spec())
@settings(max_examples=80, deadline=None)
def test_cover_matches_function_values(transitions):
    from repro.boolmin.hazardfree import onset_offset

    try:
        onset, offset = onset_offset(transitions, 3)
        cover = minimize_hazard_free(transitions, 3)
    except SynthesisError:
        assume(False)
        return
    for m in onset:
        assert any(cube_contains(c, int_to_minterm(m, 3)) for c in cover)
    for m in offset:
        assert not any(cube_contains(c, int_to_minterm(m, 3)) for c in cover)
