"""Extensions: STG mirroring, timing slack, HDL testbench generation."""

import pytest

from repro.errors import ModelError
from repro.stg import SignalType, vme_read, vme_read_csc
from repro.synth import (
    generate_testbench,
    stimulus_plan,
    synthesize_complex_gates,
)
from repro.timing import TimedMarkedGraph, bottleneck_report, delay_slack

VME_DELAYS = {
    "DSr+": (18, 25), "DSr-": (4, 6), "DTACK+": (1, 2), "DTACK-": (1, 2),
    "LDS+": (1, 2), "LDS-": (1, 2), "LDTACK+": (3, 5), "LDTACK-": (3, 5),
    "D+": (1, 2), "D-": (1, 2),
}


class TestMirror:
    def test_roles_swapped(self):
        spec = vme_read()
        mirror = spec.mirror()
        assert mirror.inputs == sorted(spec.outputs)
        assert mirror.outputs == sorted(spec.inputs)

    def test_structure_preserved(self):
        spec = vme_read()
        mirror = spec.mirror()
        assert mirror.net.stats() == spec.net.stats()

    def test_internal_signals_unchanged(self):
        spec = vme_read_csc()
        mirror = spec.mirror()
        assert mirror.internal == spec.internal

    def test_double_mirror_is_identity_on_types(self):
        spec = vme_read()
        double = spec.mirror().mirror()
        assert {s: k for s, k in double.signal_types.items()} == \
            {s: k for s, k in spec.signal_types.items()}

    def test_mirror_is_the_environment(self):
        """Composing the mirror's 'circuit' against the original spec
        closes the system consistently: the mirror drives DSr/LDTACK."""
        mirror = vme_read().mirror()
        assert mirror.type_of("DSr") == SignalType.OUTPUT
        assert mirror.type_of("LDS") == SignalType.INPUT


class TestSlack:
    def test_critical_transitions_have_zero_slack(self):
        tmg = TimedMarkedGraph(vme_read().net, VME_DELAYS)
        report = bottleneck_report(tmg)
        for t in ("DSr+", "LDS+", "LDTACK+", "D+", "DTACK+", "DSr-", "D-",
                  "DTACK-"):
            assert report[t] == pytest.approx(0.0, abs=1e-3), t

    def test_reset_branch_slack(self):
        """LDS-/LDTACK- sit on the shorter reset branch: the branch can
        absorb exactly the cycle-time difference (20 time units)."""
        tmg = TimedMarkedGraph(vme_read().net, VME_DELAYS)
        assert delay_slack(tmg, "LDS-") == pytest.approx(20.0, abs=1e-3)
        assert delay_slack(tmg, "LDTACK-") == pytest.approx(20.0, abs=1e-3)

    def test_slack_is_tight(self):
        """Growing a delay by its slack keeps the cycle time; growing
        beyond increases it."""
        from repro.timing import cycle_time

        tmg = TimedMarkedGraph(vme_read().net, VME_DELAYS)
        base = cycle_time(tmg)
        slack = delay_slack(tmg, "LDS-")
        grown = dict(VME_DELAYS)
        lo, hi = grown["LDS-"]
        grown["LDS-"] = (lo, hi + slack + 1.0)
        assert cycle_time(TimedMarkedGraph(vme_read().net, grown)) > base


class TestTestbench:
    def test_plan_covers_every_event_once(self):
        plan = stimulus_plan(vme_read())
        assert len(plan) == 10
        drives = [(s, v) for kind, s, v in plan if kind == "drive"]
        expects = [(s, v) for kind, s, v in plan if kind == "expect"]
        assert ("DSr", 1) in drives and ("LDTACK", 0) in drives
        assert ("LDS", 1) in expects and ("D", 0) in expects

    def test_plan_respects_spec_order(self):
        plan = stimulus_plan(vme_read())
        order = [(s, v) for _, s, v in plan]
        assert order.index(("DSr", 1)) < order.index(("LDS", 1))
        assert order.index(("LDTACK", 1)) < order.index(("D", 1))

    def test_testbench_structure(self):
        netlist = synthesize_complex_gates(vme_read_csc())
        tb = generate_testbench(vme_read(), netlist, cycles=3)
        assert "module vme_read_tb;" in tb
        assert "vme_read_cg dut(" in tb
        assert "repeat (3) begin" in tb
        assert tb.count("expect_edge(1'b") == 6  # three output signals x2
        assert '$display("PASS")' in tb
        assert tb.strip().endswith("endmodule")

    def test_missing_driver_rejected(self):
        from repro.synth import Gate, Netlist

        partial = Netlist("partial", inputs=["DSr", "LDTACK"])
        partial.add(Gate.comb("LDS", "DSr"))
        with pytest.raises(ModelError):
            generate_testbench(vme_read(), partial)
