"""Symbolic reachability vs explicit enumeration (paper Section 2.2)."""

import pytest

from repro.bdd import DenseSymbolicReachability, SymbolicReachability, symbolic_marking_count
from repro.errors import ModelError
from repro.petri import linear_reduce, reachable_markings
from repro.stg import (
    latch_controller,
    parallel_handshakes,
    pipeline_ring,
    sequencer,
    vme_read,
    vme_read_csc,
    vme_read_write,
)


ALL_NETS = [
    ("vme_read", lambda: vme_read().net),
    ("vme_read_csc", lambda: vme_read_csc().net),
    ("vme_read_write", lambda: vme_read_write().net),
    ("latch", lambda: latch_controller().net),
    ("ph3", lambda: parallel_handshakes(3).net),
    ("ring", lambda: pipeline_ring(6, 2).net),
    ("seq", lambda: sequencer(3).net),
]


@pytest.mark.parametrize("name,maker", ALL_NETS)
def test_symbolic_count_matches_explicit(name, maker):
    net = maker()
    assert SymbolicReachability(net).count() == len(reachable_markings(net))


def test_symbolic_contains_each_explicit_marking():
    net = vme_read().net
    sym = SymbolicReachability(net)
    for m in reachable_markings(net):
        assert sym.contains(m)


def test_symbolic_deadlock_detection():
    from repro.petri import PetriNet

    net = PetriNet("dead")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    sym = SymbolicReachability(net)
    assert sym.deadlocks() != 0  # non-FALSE BDD

    live = SymbolicReachability(vme_read().net)
    assert live.deadlocks() == 0


def test_bdd_grows_slower_than_state_count():
    """The Section 2.2 claim: implicit representation is much more compact
    than explicit enumeration on concurrent systems."""
    sizes = {}
    for n in (2, 4, 6):
        sym = SymbolicReachability(parallel_handshakes(n).net)
        sym.reachable()
        sizes[n] = (sym.bdd_size(), 4 ** n)
    # BDD grows linearly-ish while the state count grows 16x per step
    assert sizes[6][0] < sizes[6][1]
    assert sizes[6][0] < 8 * sizes[2][0]


class TestDense:
    def test_dense_count_on_reduced_read_write(self):
        red = linear_reduce(vme_read_write().net)
        dense = DenseSymbolicReachability(red)
        assert dense.count() == len(reachable_markings(red))

    def test_dense_characteristic_constant_true(self):
        """Paper Section 2.2: the characteristic function of the reduced
        READ/WRITE net's reachability set reduces to constant 1 under the
        dense encoding."""
        red = linear_reduce(vme_read_write().net)
        dense = DenseSymbolicReachability(red)
        assert dense.characteristic_is_constant_true()

    def test_dense_fails_without_cover(self):
        from repro.petri import PetriNet

        net = PetriNet("nc")
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        with pytest.raises(ModelError):
            DenseSymbolicReachability(net)

    def test_dense_fewer_variables_than_naive(self):
        red = linear_reduce(vme_read_write().net)
        naive = SymbolicReachability(red)
        dense = DenseSymbolicReachability(red)
        assert dense.encoding.width < len(naive.places)


def test_symbolic_marking_count_dispatch():
    net = sequencer(2).net
    assert symbolic_marking_count(net, "naive") == 4
    with pytest.raises(ModelError):
        symbolic_marking_count(net, "magic")
