"""Symbolic reachability vs explicit enumeration (paper Section 2.2)."""

import pytest

from repro.bdd import DenseSymbolicReachability, SymbolicReachability, symbolic_marking_count
from repro.errors import ModelError
from repro.petri import linear_reduce, reachable_markings
from repro.stg import (
    latch_controller,
    parallel_handshakes,
    pipeline_ring,
    sequencer,
    vme_read,
    vme_read_csc,
    vme_read_write,
)


ALL_NETS = [
    ("vme_read", lambda: vme_read().net),
    ("vme_read_csc", lambda: vme_read_csc().net),
    ("vme_read_write", lambda: vme_read_write().net),
    ("latch", lambda: latch_controller().net),
    ("ph3", lambda: parallel_handshakes(3).net),
    ("ring", lambda: pipeline_ring(6, 2).net),
    ("seq", lambda: sequencer(3).net),
]


@pytest.mark.parametrize("name,maker", ALL_NETS)
def test_symbolic_count_matches_explicit(name, maker):
    net = maker()
    assert SymbolicReachability(net).count() == len(reachable_markings(net))


def test_symbolic_contains_each_explicit_marking():
    net = vme_read().net
    sym = SymbolicReachability(net)
    for m in reachable_markings(net):
        assert sym.contains(m)


def test_symbolic_deadlock_detection():
    from repro.petri import PetriNet

    net = PetriNet("dead")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    sym = SymbolicReachability(net)
    assert sym.deadlocks() != 0  # non-FALSE BDD

    live = SymbolicReachability(vme_read().net)
    assert live.deadlocks() == 0


def test_bdd_grows_slower_than_state_count():
    """The Section 2.2 claim: implicit representation is much more compact
    than explicit enumeration on concurrent systems."""
    sizes = {}
    for n in (2, 4, 6):
        sym = SymbolicReachability(parallel_handshakes(n).net)
        sym.reachable()
        sizes[n] = (sym.bdd_size(), 4 ** n)
    # BDD grows linearly-ish while the state count grows 16x per step
    assert sizes[6][0] < sizes[6][1]
    assert sizes[6][0] < 8 * sizes[2][0]


class TestDense:
    def test_dense_count_on_reduced_read_write(self):
        red = linear_reduce(vme_read_write().net)
        dense = DenseSymbolicReachability(red)
        assert dense.count() == len(reachable_markings(red))

    def test_dense_characteristic_constant_true(self):
        """Paper Section 2.2: the characteristic function of the reduced
        READ/WRITE net's reachability set reduces to constant 1 under the
        dense encoding."""
        red = linear_reduce(vme_read_write().net)
        dense = DenseSymbolicReachability(red)
        assert dense.characteristic_is_constant_true()

    def test_dense_fails_without_cover(self):
        from repro.petri import PetriNet

        net = PetriNet("nc")
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        with pytest.raises(ModelError):
            DenseSymbolicReachability(net)

    def test_dense_fewer_variables_than_naive(self):
        red = linear_reduce(vme_read_write().net)
        naive = SymbolicReachability(red)
        dense = DenseSymbolicReachability(red)
        assert dense.encoding.width < len(naive.places)


def test_symbolic_marking_count_dispatch():
    net = sequencer(2).net
    assert symbolic_marking_count(net, "naive") == 4
    with pytest.raises(ModelError):
        symbolic_marking_count(net, "magic")


class TestRelationStyles:
    """Partitioned frontier image vs the paper's monolithic relation."""

    @pytest.mark.parametrize("name,maker", ALL_NETS)
    def test_partitioned_and_monolithic_fixpoints_agree(self, name, maker):
        net = maker()
        partitioned = SymbolicReachability(net, relation="partitioned")
        monolithic = SymbolicReachability(net, relation="monolithic")
        assert partitioned.count() == monolithic.count()

    def test_dense_styles_agree(self):
        red = linear_reduce(vme_read_write().net)
        assert DenseSymbolicReachability(red, relation="partitioned").count() \
            == DenseSymbolicReachability(red, relation="monolithic").count()

    def test_unknown_style_rejected(self):
        with pytest.raises(ModelError):
            SymbolicReachability(vme_read().net, relation="magic")


class TestMaterialisation:
    def test_to_transition_system_matches_naive_engine(self):
        from repro.ts import build_reachability_graph

        stg = vme_read()
        reference = build_reachability_graph(stg, engine="naive")
        ts = SymbolicReachability(stg.net).to_transition_system()
        assert ts.states == reference.states
        assert list(ts.arcs()) == list(reference.arcs())

    def test_budget_raises_before_enumeration(self):
        from repro.errors import StateExplosionError

        sym = SymbolicReachability(parallel_handshakes(4).net)
        with pytest.raises(StateExplosionError):
            sym.to_transition_system(max_states=10)

    def test_safety_violation_witness(self):
        from repro.petri import PetriNet

        net = PetriNet("unsafe")
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        violation = SymbolicReachability(net).safety_violation()
        assert violation is not None
        transition, marking = violation
        assert transition == "t"
        assert marking.get("p") and marking.get("q")
        assert SymbolicReachability(vme_read().net).safety_violation() is None

    def test_safety_witness_is_reachable_in_real_token_game(self):
        """The witness marking must exist in the uncapped token game, not
        merely in the token-capped symbolic semantics: here 'a' only
        becomes unsafe-looking in capped-only states past the real
        violation at the initial marking, and must not be blamed."""
        from repro.petri import Marking, PetriNet

        net = PetriNet("capped")
        net.add_place("x", tokens=1)
        net.add_place("m", tokens=1)
        net.add_place("w")
        net.add_transition("z")
        net.add_arc("x", "z")
        net.add_arc("z", "m")
        net.add_arc("z", "w")
        net.add_transition("a")
        net.add_arc("w", "a")
        net.add_arc("a", "m")
        violation = SymbolicReachability(net).safety_violation()
        assert violation == ("z", Marking({"x": 1, "m": 1}))

    def test_initial_marking_validation(self):
        from repro.petri import Marking

        net = vme_read().net
        with pytest.raises(ModelError):
            SymbolicReachability(net, initial=Marking({"nope": 1}))
        with pytest.raises(ModelError):
            p = sorted(net.places)[0]
            SymbolicReachability(net, initial=Marking({p: 2}))
