"""API hygiene: every public module, class, function and method is
documented."""

import importlib
import inspect
import pkgutil

import repro


def walk_public_objects():
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue
        mod = importlib.import_module(modinfo.name)
        yield modinfo.name, "module", mod
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != modinfo.name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield "%s.%s" % (modinfo.name, name), "object", obj
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_"):
                            continue
                        if inspect.isfunction(meth):
                            yield ("%s.%s.%s" % (modinfo.name, name, mname),
                                   "method", meth)


def test_every_public_item_documented():
    missing = []
    for qualname, kind, obj in walk_public_objects():
        doc = obj.__doc__ if kind == "module" else inspect.getdoc(obj)
        if not doc or not doc.strip():
            missing.append(qualname)
    assert not missing, "undocumented public items: %s" % missing


def test_every_package_reexports_all():
    import os

    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue
        mod = importlib.import_module(modinfo.name)
        if hasattr(mod, "__path__"):  # a package
            assert hasattr(mod, "__all__"), modinfo.name
            for name in mod.__all__:
                assert hasattr(mod, name), (modinfo.name, name)
