"""API and documentation hygiene.

* every public module, class, function and method is documented;
* every public engine entry point names all members of ``ENGINES``;
* the code blocks in ``README.md`` and ``docs/engines.md`` execute
  verbatim (doctest-style, so the documentation cannot rot);
* relative markdown links in the documentation resolve.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def walk_public_objects():
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue
        mod = importlib.import_module(modinfo.name)
        yield modinfo.name, "module", mod
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != modinfo.name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield "%s.%s" % (modinfo.name, name), "object", obj
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_"):
                            continue
                        if inspect.isfunction(meth):
                            yield ("%s.%s.%s" % (modinfo.name, name, mname),
                                   "method", meth)


def test_every_public_item_documented():
    missing = []
    for qualname, kind, obj in walk_public_objects():
        doc = obj.__doc__ if kind == "module" else inspect.getdoc(obj)
        if not doc or not doc.strip():
            missing.append(qualname)
    assert not missing, "undocumented public items: %s" % missing


def test_every_package_reexports_all():
    import os

    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue
        mod = importlib.import_module(modinfo.name)
        if hasattr(mod, "__path__"):  # a package
            assert hasattr(mod, "__all__"), modinfo.name
            for name in mod.__all__:
                assert hasattr(mod, name), (modinfo.name, name)


# ---------------------------------------------------------------------- #
# the unified engine framework is fully documented
# ---------------------------------------------------------------------- #

def engine_entry_points():
    from repro.analysis import check_implementability
    from repro.ts import build_reachability_graph, build_state_graph

    return [build_reachability_graph, build_state_graph,
            check_implementability]


def test_engine_entry_points_name_every_engine():
    """Every public entry point taking ``engine=`` documents all members
    of ``ENGINES`` — either in its own docstring or its module's (the
    regression this guards: the builder docstring once said "two engines
    are provided" while dispatching four)."""
    from repro.ts.builder import ENGINES

    for fn in engine_entry_points():
        doc = (inspect.getdoc(fn) or "") + "\n" + \
            (inspect.getdoc(inspect.getmodule(fn)) or "")
        missing = ['"%s"' % e for e in ENGINES if '"%s"' % e not in doc]
        assert not missing, (
            "%s does not name engines %s" % (fn.__qualname__, missing))


# ---------------------------------------------------------------------- #
# executable documentation
# ---------------------------------------------------------------------- #

def python_blocks(path: Path):
    """The ```python fenced code blocks of a markdown file, in order."""
    blocks = re.findall(r"```python\n(.*?)```", path.read_text(), re.S)
    assert blocks, "no ```python blocks in %s" % path
    return blocks


@pytest.mark.parametrize("document", [
    "README.md", "docs/engines.md", "docs/observability.md",
    "docs/portfolio.md"])
def test_documentation_code_blocks_execute(document):
    """README quickstart, the engine guide and the observability guide
    run verbatim, top to bottom, in one shared namespace per document."""
    path = REPO_ROOT / document
    namespace = {}
    for index, block in enumerate(python_blocks(path)):
        code = compile(block, "%s[block %d]" % (document, index), "exec")
        exec(code, namespace)  # noqa: S102 - that is the point


def markdown_documents():
    return [REPO_ROOT / "README.md"] + \
        sorted((REPO_ROOT / "docs").glob("*.md"))


def test_markdown_relative_links_resolve():
    """Every relative link target in README/docs exists on disk."""
    link = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    broken = []
    for document in markdown_documents():
        for target in link.findall(document.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue  # pure in-page anchor
            if not (document.parent / target_path).exists():
                broken.append("%s -> %s" % (document.name, target))
    assert not broken, "broken markdown links: %s" % broken
