"""Waveform rendering (Figure 2 regeneration)."""

import pytest

from repro.errors import ModelError
from repro.stg import STG, canonical_trace, render_waveforms, vme_read


class TestCanonicalTrace:
    def test_read_cycle_trace_length(self, read_stg):
        trace = canonical_trace(read_stg)
        assert len(trace) == 10  # every transition exactly once
        assert sorted(trace) == sorted(read_stg.net.transitions)

    def test_trace_returns_to_initial(self, read_stg):
        from repro.petri import fire_sequence

        final = fire_sequence(read_stg.net, read_stg.initial_marking,
                              canonical_trace(read_stg))
        assert final == read_stg.initial_marking

    def test_no_cycle_raises(self):
        stg = STG("acyclic", outputs=["x"])
        plus = stg.add_event("x+")
        p = stg.add_place("p", tokens=1)
        stg.net.add_arc(p, plus)
        with pytest.raises(ModelError):
            canonical_trace(stg)


class TestRendering:
    def test_read_cycle_waveform_shape(self, read_stg):
        text = render_waveforms(read_stg)
        lines = text.splitlines()
        # header + one row per signal
        assert len(lines) == 1 + len(read_stg.signals)
        for signal in read_stg.signals:
            assert any(line.strip().startswith(signal) for line in lines)

    def test_waveform_has_edges(self, read_stg):
        text = render_waveforms(read_stg)
        assert "/" in text and "\\" in text

    def test_rise_fall_order_per_signal(self, read_stg):
        """Every signal's first edge is a rise and edges alternate."""
        text = render_waveforms(read_stg)
        for line in text.splitlines()[1:]:
            edges = [c for c in line if c in "/\\"]
            if not edges:
                continue
            assert edges[0] == "/"
            for a, b in zip(edges, edges[1:]):
                assert a != b

    def test_explicit_trace(self, read_stg):
        text = render_waveforms(read_stg, trace=["DSr+", "LDS+"])
        dsr_row = next(line for line in text.splitlines()
                       if line.strip().startswith("DSr "))
        assert "/" in dsr_row and "\\" not in dsr_row
