"""Quine–McCluskey exact minimization, incl. property-based checks."""

from hypothesis import given, settings, strategies as st

from repro.boolmin import (
    cube_contains,
    cube_to_str,
    int_to_minterm,
    literal_count,
    minimize,
    prime_implicants,
    verify_cover,
)


class TestKnownFunctions:
    def test_empty_onset(self):
        assert minimize([], [], 3) == []

    def test_full_onset_is_tautology(self):
        assert minimize(list(range(8)), [], 3) == [(None, None, None)]

    def test_onset_plus_dc_tautology(self):
        assert minimize([0, 3], [1, 2], 2) == [(None, None)]

    def test_or_function(self):
        cover = minimize([0b01, 0b10, 0b11], [], 2)
        assert sorted(cube_to_str(c) for c in cover) == ["-1", "1-"]

    def test_xor_needs_two_cubes(self):
        cover = minimize([0b01, 0b10], [], 2)
        assert sorted(cube_to_str(c) for c in cover) == ["01", "10"]

    def test_dc_enlarges_cubes(self):
        # f(a,b) on {11}, dc {10}: minimal cover is "1-"
        assert minimize([3], [2], 2) == [(1, None)]

    def test_classic_4var_example(self):
        """f = Σm(4,8,10,11,12,15) + d(9,14): the textbook QM example;
        minimal cover has 3 cubes."""
        onset = [4, 8, 10, 11, 12, 15]
        dc = [9, 14]
        cover = minimize(onset, dc, 4)
        assert len(cover) == 3
        assert verify_cover(cover, onset,
                            [m for m in range(16)
                             if m not in onset and m not in dc], 4)

    def test_determinism(self):
        a = minimize([1, 3, 5, 7, 9], [2, 11], 4)
        b = minimize([9, 7, 5, 3, 1], [11, 2], 4)
        assert a == b


class TestPrimes:
    def test_primes_of_or(self):
        primes = prime_implicants([1, 2, 3], [], 2)
        # two primes: -1 and 1-
        assert len(primes) == 2

    def test_primes_cover_all_onset(self):
        onset = [0, 2, 5, 7]
        primes = prime_implicants(onset, [], 3)
        from repro.boolmin.quine_mccluskey import _implicant_covers

        for m in onset:
            assert any(_implicant_covers(p, m) for p in primes)


@st.composite
def onset_dc(draw, nvars=4):
    universe = list(range(1 << nvars))
    onset = draw(st.sets(st.sampled_from(universe), max_size=10))
    dc = draw(st.sets(st.sampled_from(universe), max_size=6)) - onset
    return sorted(onset), sorted(dc), nvars


@given(onset_dc())
@settings(max_examples=120, deadline=None)
def test_cover_correctness(data):
    onset, dc, n = data
    cover = minimize(onset, dc, n)
    offset = [m for m in range(1 << n) if m not in onset and m not in dc]
    assert verify_cover(cover, onset, offset, n)


@given(onset_dc())
@settings(max_examples=60, deadline=None)
def test_cover_cubes_are_primes(data):
    """Each chosen cube must be a prime implicant (maximal)."""
    onset, dc, n = data
    cover = minimize(onset, dc, n)
    care_on = set(onset) | set(dc)
    for cube in cover:
        # growing any fixed literal to don't-care must hit the OFF set
        for pos in range(n):
            if cube[pos] is None:
                continue
            grown = list(cube)
            grown[pos] = None
            grown_t = tuple(grown)
            hits_off = any(
                cube_contains(grown_t, int_to_minterm(m, n))
                for m in range(1 << n) if m not in care_on
            )
            assert hits_off, "cube %s not prime" % cube_to_str(cube)


@given(onset_dc())
@settings(max_examples=60, deadline=None)
def test_no_single_cube_redundant(data):
    """Irredundancy: dropping any cube must uncover some ON minterm."""
    onset, dc, n = data
    cover = minimize(onset, dc, n)
    if len(cover) <= 1:
        return
    for i in range(len(cover)):
        rest = cover[:i] + cover[i + 1:]
        uncovered = [
            m for m in onset
            if not any(cube_contains(c, int_to_minterm(m, n)) for c in rest)
        ]
        assert uncovered, "cube %d is redundant" % i
