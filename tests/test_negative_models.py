"""Mutation tests: deliberately broken specifications must be caught by
the right check (the analysis is only trustworthy if it rejects)."""

import pytest

from repro.analysis import check_implementability
from repro.errors import ConsistencyError, UnboundedError
from repro.stg import parse_g, vme_read, write_g
from repro.ts import build_state_graph


def mutate_g(replacements):
    text = write_g(vme_read())
    for old, new in replacements:
        assert old in text
        text = text.replace(old, new)
    return text


class TestBrokenVME:
    def test_dropped_handshake_edge_breaks_consistency(self):
        """Deleting LDTACK- makes LDTACK rise twice in a row."""
        text = mutate_g([("p10 LDTACK-\n", ""),
                         ("LDTACK- p0\n", ""),
                         ("LDS- p10\n", "LDS- p0\n")])
        stg = parse_g(text)
        with pytest.raises(ConsistencyError):
            build_state_graph(stg)

    def test_double_marked_place_breaks_safeness(self):
        text = mutate_g([(".marking { p0 p1 }", ".marking { p0 p1 p5 }")])
        stg = parse_g(text)
        with pytest.raises(UnboundedError):
            build_state_graph(stg)

    def test_swapped_roles_break_persistency_detection_direction(self):
        """Making LDTACK an output and LDS an input flips who is blamed —
        but the VME read cycle has no disabling at all, so both stay
        persistent; the CSC conflict however persists regardless of
        signal roles."""
        text = mutate_g([(".inputs DSr LDTACK", ".inputs DSr LDS"),
                         (".outputs D DTACK LDS", ".outputs D DTACK LDTACK")])
        stg = parse_g(text)
        report = check_implementability(stg)
        assert report.consistent
        assert not report.has_csc

    def test_report_not_implementable_is_not_exception(self):
        """Analysis reports problems rather than crashing."""
        report = check_implementability(vme_read())
        assert not report.implementable
        assert report.summary()


class TestGFormatEdges:
    def test_dummy_declaration_parsed(self):
        stg = parse_g("""
.model withdummy
.inputs a
.outputs b
.dummy eps
.graph
a+ eps~
eps~ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
""")
        assert stg.signals_of_type(stg.type_of("eps").__class__.DUMMY) \
            == ["eps"]
        sg = build_state_graph(stg)
        # the dummy does not contribute a code bit change
        assert len(sg) == 5

    def test_unknown_directives_tolerated(self):
        stg = parse_g("""
.model tolerant
.inputs a
.outputs b
.capacity 1
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
""")
        assert len(stg.net.transitions) == 4
