"""The repro.obs instrumentation layer: spans, counters, sinks, schemas."""

import io
import json

import pytest

from repro import obs
from repro.obs.sinks import JsonlSink, MemorySink, report
from repro.stg import vme_read

pytestmark = pytest.mark.usefixtures("pristine_obs")


@pytest.fixture
def pristine_obs():
    """Start and finish each test with the layer in its default state."""
    obs.reset()
    yield
    obs.reset()


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_enable_disable(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_tracing_scopes_and_restores(self):
        with obs.tracing() as sink:
            assert obs.enabled()
            assert sink in obs.active_sinks()
        assert not obs.enabled()
        assert sink not in obs.active_sinks()

    def test_tracing_restores_an_enabled_layer(self):
        obs.enable()
        with obs.tracing():
            pass
        assert obs.enabled()


class TestSpans:
    def test_nesting_parent_depth_and_dispatch_order(self):
        with obs.tracing() as sink:
            with obs.span("outer", engine="compiled"):
                with obs.span("inner"):
                    pass
        # children close (and stream) before their parents
        assert [r["name"] for r in sink.records] == ["inner", "outer"]
        inner, outer = sink.records
        assert inner["parent"] == "outer" and inner["depth"] == 1
        assert outer["parent"] is None and outer["depth"] == 0
        assert outer["tags"] == {"engine": "compiled"}
        assert inner["seq"] > outer["seq"]  # outer entered first

    def test_timing_sanity(self):
        with obs.tracing() as sink:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(range(1000))
        inner, outer = sink.records
        assert 0.0 <= inner["duration_s"] <= outer["duration_s"]
        assert outer["start_s"] <= inner["start_s"]

    def test_counters_gauges_and_annotations(self):
        with obs.tracing() as sink:
            with obs.span("work") as span:
                span.add("items", 3)
                span.add("items", 2)
                span.counter("items").inc()
                span.set_gauge("peak", 7)
                span.gauge("peak").set(9)
                span.annotate(verdict="done")
                assert span.counter("items").value == 6
                assert span.gauge("peak").value == 9
        record = sink.spans("work")[0]
        assert record["counters"] == {"items": 6}
        assert record["gauges"] == {"peak": 9}
        assert record["tags"]["verdict"] == "done"

    def test_module_level_add_attaches_to_innermost_span(self):
        with obs.tracing() as sink:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.add("hits", 2)
                obs.set_gauge("level", 5)
        assert sink.spans("inner")[0]["counters"] == {"hits": 2}
        assert sink.spans("outer")[0]["gauges"] == {"level": 5}

    def test_error_is_recorded_and_span_unwound(self):
        with obs.tracing() as sink:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
        assert sink.spans("boom")[0]["error"] == "ValueError"
        assert obs.current() is None


class TestDisabledNoOp:
    def test_span_is_the_shared_null_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_null_span_discards_everything(self):
        with obs.span("x") as span:
            span.add("n", 5)
            span.set_gauge("g", 1)
            span.annotate(k=2)
            assert span.counter("n").value == 0
            assert span.gauge("g").value is None
            assert span.elapsed() == 0.0
        assert obs.current() is None

    def test_no_records_reach_sinks(self):
        sink = obs.add_sink(MemorySink())
        with obs.span("x") as span:
            span.add("n")
        obs.add("m")
        obs.set_gauge("g", 1)
        assert len(sink) == 0


class TestEngineCounters:
    def test_states_counter_matches_explicit_graph(self):
        from repro.ts.builder import build_reachability_graph

        stg = vme_read()
        with obs.tracing() as sink:
            graph = build_reachability_graph(stg)
        assert sink.counter_total("states", span="engine.build") == len(graph)
        assert sink.counter_total("arcs", span="engine.build") \
            == graph.arc_count()
        build = sink.spans("engine.build")[0]
        assert build["tags"]["engine"] in ("compiled", "naive", "bdd")

    def test_sat_counters_match_solver_stats(self):
        from repro.sat import CNF, Solver

        solver = Solver(CNF.from_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 0\n"))
        before = solver.stats()  # clause loading already propagates units
        with obs.tracing() as sink:
            assert solver.solve() is False
        stats = solver.stats()
        assert stats["vars"] == 2 and stats["clauses"] == 3
        record = sink.spans("sat.solve")[0]
        # the span records per-call deltas of the cumulative solver stats
        assert record["counters"]["conflicts"] \
            == stats["conflicts"] - before["conflicts"]
        assert record["counters"]["decisions"] \
            == stats["decisions"] - before["decisions"]
        assert record["counters"]["propagations"] \
            == stats["propagations"] - before["propagations"]
        assert record["tags"]["result"] == "unsat"

    def test_bdd_traversal_counters(self):
        from repro.bdd.queries import SymbolicCSC

        with obs.tracing() as sink:
            assert SymbolicCSC(vme_read()).has_conflict()
        fixpoint = sink.spans("bdd.fixpoint")[0]
        lookups = fixpoint["counters"]["ite_lookups"]
        hits = fixpoint["counters"]["ite_hits"]
        assert lookups > 0 and 0 <= hits <= lookups
        assert fixpoint["counters"]["image_iterations"] > 0
        assert fixpoint["gauges"]["peak_nodes"] > 0
        assert fixpoint["gauges"]["cache_hit_rate"] == hits / lookups
        assert sink.spans("bdd.csc")[0]["counters"]["excitation_checks"] > 0

    def test_implementability_counters_match_report(self):
        from repro.analysis import check_implementability

        with obs.tracing() as sink:
            result = check_implementability(vme_read())
        record = sink.spans("analysis.implementability")[0]
        assert record["counters"]["states"] == result.states
        assert record["counters"]["csc_conflicts"] \
            == len(result.csc_conflicts)
        assert record["tags"]["verdict"] == "not-implementable"

    def test_reduction_counters(self):
        from repro.petri import linear_reduce
        from repro.stg import vme_read_write

        net = vme_read_write().net
        with obs.tracing() as sink:
            reduced = linear_reduce(net)
        record = sink.spans("petri.reduce")[0]
        assert record["counters"]["rules_fired"] > 0
        assert record["counters"]["places_removed"] \
            == len(net.places) - len(reduced.places)


class TestSinks:
    def test_memory_sink_aggregation(self):
        with obs.tracing() as sink:
            for _ in range(3):
                with obs.span("step") as span:
                    span.add("n", 2)
                    span.set_gauge("g", 1)
        stats = sink.stats()
        assert stats["step"]["calls"] == 3
        assert stats["step"]["counters"] == {"n": 6}
        assert stats["step"]["time_s"] >= 0.0
        assert sink.counter_total("n") == 6
        assert sink.last_gauge("g", span="step") == 1

    def test_jsonl_sink_streams_valid_schema(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.enable()
        sink = obs.add_sink(JsonlSink(path))
        with obs.span("a", engine="bdd"):
            with obs.span("b"):
                obs.add("work", 3)
        obs.remove_sink(sink)
        sink.close()
        assert obs.validate_trace_file(path) == []
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "b" and first["counters"] == {"work": 3}
        assert first["schema"] == obs.TRACE_SCHEMA

    def test_jsonl_sink_accepts_streams(self):
        buffer = io.StringIO()
        with obs.tracing(JsonlSink(buffer)):
            with obs.span("x"):
                pass
        assert obs.validate_trace_text(buffer.getvalue()) == []

    def test_report_table(self):
        with obs.tracing() as sink:
            with obs.span("engine.build") as span:
                span.add("states", 14)
        table = report(sink)
        assert "engine.build" in table and "states=14" in table
        assert report(MemorySink()) == "(no spans recorded)"


class TestSchemas:
    def test_record_validator_catches_field_damage(self):
        with obs.tracing() as sink:
            with obs.span("x"):
                pass
        record = sink.records[0]
        assert obs.validate_trace_record(record) == []
        for damage in ({"schema": "bogus/9"}, {"name": ""}, {"seq": -1},
                       {"duration_s": -0.5}, {"tags": "nope"},
                       {"counters": {"k": "not-a-number"}}):
            assert obs.validate_trace_record(dict(record, **damage))

    def test_trace_text_rejects_blank_and_non_json_lines(self):
        assert obs.validate_trace_text("") == []
        assert obs.validate_trace_text("not json\n")
        assert obs.validate_trace_text("\n")

    def test_run_report_validator(self):
        good = {"schema": obs.REPORT_SCHEMA, "command": "bdd-check",
                "spec": "vme_read", "verdict": "counted", "exit_code": 0,
                "details": {}, "stats": {}}
        assert obs.validate_run_report(good) == []
        assert obs.validate_run_report(dict(good, schema="x"))
        assert obs.validate_run_report(dict(good, verdict=""))
        assert obs.validate_run_report(dict(good, exit_code="0"))
        bad_stats = dict(good, stats={"s": {"calls": 0, "time_s": -1,
                                            "counters": {}, "gauges": {}}})
        assert obs.validate_run_report(bad_stats)

    def test_lint_entry_point(self, tmp_path, capsys):
        from repro.obs.__main__ import main as lint

        good = tmp_path / "good.jsonl"
        with obs.tracing(JsonlSink(str(good))):
            with obs.span("x"):
                pass
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "bogus"}\n')
        assert lint([str(good)]) == 0
        assert lint([str(good), str(bad)]) == 1
        assert lint([]) == 2


class TestSolverStats:
    def test_public_stats_dict(self):
        from repro.sat import CNF, Solver

        solver = Solver(CNF.from_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 0\n"))
        assert solver.solve() is False
        stats = solver.stats()
        assert set(stats) == {"vars", "clauses", "learnts", "conflicts",
                              "decisions", "propagations", "restarts"}
        assert stats["vars"] == 2
        assert stats["clauses"] == 3
        assert all(isinstance(v, int) for v in stats.values())

    def test_stats_track_incremental_use(self):
        from repro.sat import CNF, Solver

        solver = Solver(CNF.from_dimacs("p cnf 2 1\n1 2 0\n"))
        assert solver.solve() is True
        before = solver.stats()
        assert solver.solve([-1]) is True
        after = solver.stats()
        assert after["propagations"] >= before["propagations"]
