"""Graphviz DOT export."""

from repro.petri import explore, net_to_dot, reachability_to_dot
from repro.stg import vme_read
from repro.ts import build_state_graph


class TestNetDot:
    def test_contains_all_nodes(self):
        stg = vme_read()
        text = net_to_dot(stg.net)
        for p in stg.net.places:
            assert '"%s"' % p in text
        for t in stg.net.transitions:
            assert '"%s"' % t in text

    def test_marked_places_show_tokens(self):
        text = net_to_dot(vme_read().net)
        assert "•" in text

    def test_shapes(self):
        text = net_to_dot(vme_read().net)
        assert "shape=circle" in text
        assert "shape=box" in text

    def test_is_valid_digraph(self):
        text = net_to_dot(vme_read().net)
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")
        assert text.count("{") == text.count("}")


class TestReachabilityDot:
    def test_reachability_graph_export(self):
        net = vme_read().net
        graph = explore(net)
        text = reachability_to_dot(graph, initial=net.initial_marking)
        assert text.startswith("digraph")
        assert "doublecircle" in text  # initial state highlighted
        assert text.count("->") == sum(len(v) for v in graph.values())

    def test_codes_annotation(self):
        stg = vme_read()
        sg = build_state_graph(stg)
        graph = explore(stg.net)
        codes = {s: sg.code_str(s) for s in sg.states}
        text = reachability_to_dot(graph, codes=codes)
        assert "0*0" in text or "00" in text
