"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.stg import save_g, vme_read


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.g"
    save_g(vme_read(), str(path))
    return str(path)


class TestAnalyze:
    def test_analyze_file(self, spec_file, capsys):
        code = main(["analyze", spec_file])
        out = capsys.readouterr().out
        assert "CSC" in out
        assert code == 1  # not implementable as-is

    def test_analyze_bundled_example(self, capsys):
        code = main(["analyze", "latch_controller"])
        assert code == 0
        assert "implementable as SI circuit: True" in capsys.readouterr().out

    def test_verbose_lists_conflicts(self, spec_file, capsys):
        main(["analyze", spec_file, "-v"])
        assert "CSC conflict" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/x.g"]) == 2


class TestViews:
    def test_states(self, spec_file, capsys):
        assert main(["states", spec_file]) == 0
        out = capsys.readouterr().out
        assert "# 14 states" in out

    def test_waveform(self, spec_file, capsys):
        assert main(["waveform", spec_file]) == 0
        out = capsys.readouterr().out
        assert "/" in out and "\\" in out

    def test_dot(self, spec_file, capsys):
        assert main(["dot", spec_file]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_reduce(self, capsys):
        assert main(["reduce", "vme_read_write"]) == 0
        out = capsys.readouterr().out
        assert "invariant:" in out and "SM component" in out

    def test_examples_listing(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "vme_read" in out and "mutex_controller" in out


class TestFlow:
    def test_resolve_to_file(self, spec_file, tmp_path, capsys):
        out_path = str(tmp_path / "resolved.g")
        assert main(["resolve", spec_file, "-o", out_path]) == 0
        text = open(out_path).read()
        assert ".internal csc0" in text

    def test_resolve_to_stdout(self, spec_file, capsys):
        assert main(["resolve", spec_file]) == 0
        assert "csc0" in capsys.readouterr().out

    def test_synthesize_and_verify(self, spec_file, capsys):
        assert main(["synthesize", spec_file, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "DTACK = D" in out
        assert "speed-independent implementation: True" in out

    @pytest.mark.parametrize("arch", ["cg", "gc", "sr"])
    def test_architectures(self, spec_file, arch, capsys):
        assert main(["synthesize", spec_file, "--arch", arch,
                     "--verify"]) == 0

    def test_synthesize_decomposed(self, spec_file, capsys):
        assert main(["synthesize", spec_file, "--decompose",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "map0" in out

    def test_verilog_output(self, spec_file, capsys):
        assert main(["synthesize", spec_file, "--verilog"]) == 0
        assert "module" in capsys.readouterr().out


class TestNewCommands:
    def test_testbench(self, spec_file, capsys):
        assert main(["testbench", spec_file]) == 0
        out = capsys.readouterr().out
        assert "module vme_read_tb;" in out
        assert "expect_edge" in out

    def test_coverability_bounded(self, spec_file, capsys):
        assert main(["coverability", spec_file]) == 0
        assert "bounded: True" in capsys.readouterr().out

    def test_simulate(self, spec_file, tmp_path, capsys):
        delays = {t: [1, 2] for t in vme_read().net.transitions}
        delay_file = tmp_path / "delays.json"
        delay_file.write_text(json.dumps(delays))
        assert main(["simulate", spec_file, "--delays", str(delay_file),
                     "--cycles", "8"]) == 0
        out = capsys.readouterr().out
        assert "estimated cycle time" in out


class TestBddCheck:
    def test_count(self, spec_file, capsys):
        assert main(["bdd-check", spec_file]) == 0
        assert "reachable markings: 14" in capsys.readouterr().out

    def test_count_dense_reduced(self, capsys):
        assert main(["bdd-check", "vme_read_write", "--query", "count",
                     "--encoding", "dense", "--reduce"]) == 0
        assert "reachable codes:" in capsys.readouterr().out

    def test_deadlock_free_proof(self, spec_file, capsys):
        assert main(["bdd-check", spec_file, "--query", "deadlock"]) == 0
        assert "proved by symbolic fixpoint" in capsys.readouterr().out

    def test_csc_conflict_found(self, spec_file, capsys):
        assert main(["bdd-check", spec_file, "--query", "csc"]) == 1
        out = capsys.readouterr().out
        assert "CSC conflict" in out
        assert "code (xor initial):" in out

    def test_csc_clean_example(self, capsys):
        assert main(["bdd-check", "vme_read_csc", "--query", "csc"]) == 0
        assert "CSC holds" in capsys.readouterr().out

    def test_sorted_order_variant(self, spec_file, capsys):
        assert main(["bdd-check", spec_file, "--order", "sorted"]) == 0
        assert "reachable markings: 14" in capsys.readouterr().out

    def test_dense_restricted_to_count(self, spec_file, capsys):
        assert main(["bdd-check", spec_file, "--query", "csc",
                     "--encoding", "dense"]) == 2

    def test_reduce_restricted_to_net_queries(self, spec_file, capsys):
        assert main(["bdd-check", spec_file, "--query", "csc",
                     "--reduce"]) == 2


class TestSatCheck:
    def test_deadlock_bounded(self, spec_file, capsys):
        assert main(["sat-check", spec_file, "--bound", "8"]) == 0
        assert "no deadlock within 8 steps" in capsys.readouterr().out

    def test_deadlock_induction(self, spec_file, capsys):
        assert main(["sat-check", spec_file, "--induction"]) == 0
        assert "proved by 0-induction" in capsys.readouterr().out

    def test_csc_conflict_found(self, spec_file, capsys):
        assert main(["sat-check", spec_file, "--property", "csc",
                     "--bound", "12"]) == 1
        out = capsys.readouterr().out
        assert "CSC conflict" in out
        assert "trace a:" in out and "trace b:" in out

    def test_csc_clean_example(self, capsys):
        assert main(["sat-check", "latch_controller", "--property", "csc",
                     "--bound", "8"]) == 0
        assert "no CSC conflict" in capsys.readouterr().out

    def test_reach_with_target(self, spec_file, capsys):
        assert main(["sat-check", spec_file, "--property", "reach",
                     "--target", "p4", "--cover", "--bound", "8"]) == 1
        assert "reached" in capsys.readouterr().out

    def test_reach_requires_target(self, spec_file, capsys):
        assert main(["sat-check", spec_file, "--property", "reach"]) == 2

    def test_induction_only_for_deadlock(self, spec_file, capsys):
        # a bounded-only CSC run must not masquerade as an inductive proof
        assert main(["sat-check", spec_file, "--property", "csc",
                     "--induction"]) == 2

    def test_consistency(self, spec_file, capsys):
        assert main(["sat-check", spec_file, "--property", "consistency",
                     "--bound", "6"]) == 0
        assert "no consistency violation" in capsys.readouterr().out

    def test_dimacs_dump_round_trips(self, spec_file, tmp_path, capsys):
        from repro.sat import CNF

        path = str(tmp_path / "unrolling.cnf")
        assert main(["sat-check", spec_file, "--bound", "4",
                     "--dimacs", path]) == 0
        text = open(path).read()
        assert "p cnf" in text
        parsed = CNF.from_dimacs(text)
        assert parsed.num_vars > 0 and parsed.clauses
        assert "# wrote" in capsys.readouterr().out

    @pytest.mark.parametrize("prop,expect_sat", [
        ("deadlock", False), ("csc", True), ("consistency", False)])
    def test_dimacs_dump_reproduces_verdict(self, spec_file, tmp_path,
                                            prop, expect_sat, capsys):
        # the dumped formula must be satisfiable iff the CLI reported a
        # counterexample, for every property (not just deadlock)
        from repro.sat import CNF, Solver

        path = str(tmp_path / "query.cnf")
        code = main(["sat-check", spec_file, "--property", prop,
                     "--bound", "10", "--dimacs", path])
        assert code == (1 if expect_sat else 0)
        solver = Solver(CNF.from_dimacs(open(path).read()))
        assert solver.solve() == expect_sat


class TestTelemetry:
    def test_sat_check_json_round_trips(self, spec_file, capsys):
        from repro import obs

        code = main(["sat-check", spec_file, "--property", "csc",
                     "--bound", "12", "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert obs.validate_run_report(report) == []
        assert report["schema"] == "repro-run-report/1"
        assert report["command"] == "sat-check"
        assert report["verdict"] == "conflict"
        assert report["exit_code"] == 1
        assert report["details"]["property"] == "csc"
        assert report["details"]["bound"] == 12
        assert report["details"]["trace_a"] and report["details"]["trace_b"]
        solve = report["stats"]["sat.solve"]
        assert solve["counters"]["decisions"] > 0
        assert solve["counters"]["propagations"] > 0

    def test_bdd_check_json_round_trips(self, spec_file, capsys):
        from repro import obs

        code = main(["bdd-check", spec_file, "--query", "csc", "--json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert obs.validate_run_report(report) == []
        assert report["command"] == "bdd-check"
        assert report["verdict"] == "conflict"
        assert report["details"]["conflicting_codes"] == 1
        fixpoint = report["stats"]["bdd.fixpoint"]
        assert fixpoint["counters"]["image_iterations"] > 0
        assert fixpoint["gauges"]["peak_nodes"] > 0

    def test_bdd_check_json_count_verdict(self, spec_file, capsys):
        code = main(["bdd-check", spec_file, "--query", "count", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verdict"] == "counted"
        assert report["details"]["reachable"] == 14

    def test_stats_table_goes_to_stderr(self, spec_file, capsys):
        code = main(["sat-check", spec_file, "--bound", "8", "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        # stdout is byte-identical to a run without --stats
        assert captured.out == "no deadlock within 8 steps\n"
        assert "sat.solve" in captured.err
        assert "span" in captured.err

    def test_human_output_unchanged_by_flags(self, spec_file, capsys):
        main(["bdd-check", spec_file, "--query", "csc"])
        plain = capsys.readouterr().out
        main(["bdd-check", spec_file, "--query", "csc", "--stats"])
        assert capsys.readouterr().out == plain

    def test_trace_file_lints_clean(self, spec_file, tmp_path, capsys):
        from repro import obs

        path = str(tmp_path / "run.jsonl")
        assert main(["bdd-check", spec_file, "--query", "count",
                     "--trace", path]) == 0
        assert obs.validate_trace_file(path) == []
        names = [json.loads(line)["name"]
                 for line in open(path).read().splitlines()]
        assert "bdd.safety" in names

    def test_analyze_stats(self, spec_file, capsys):
        assert main(["analyze", spec_file, "--stats"]) == 1
        captured = capsys.readouterr()
        assert "implementable as SI circuit: False" in captured.out
        assert "analysis.implementability" in captured.err

    def test_flags_do_not_leave_the_layer_armed(self, spec_file, capsys):
        from repro import obs

        main(["bdd-check", spec_file, "--query", "count", "--stats"])
        capsys.readouterr()
        assert not obs.enabled()
        assert obs.active_sinks() == []


class TestSeparation:
    def test_separation_command(self, spec_file, tmp_path, capsys):
        delays = {t: [1, 2] for t in vme_read().net.transitions}
        delays["DSr+"] = [18, 25]
        delay_file = tmp_path / "delays.json"
        delay_file.write_text(json.dumps(delays))
        code = main(["separation", spec_file, "LDTACK-", "DSr+",
                     "--delays", str(delay_file), "--offset", "-1"])
        out = capsys.readouterr().out
        assert "max sep(LDTACK-, DSr+)" in out
        assert code == 0  # negative separation with the slow bus
