"""Trace and benchmark analysis (``repro.obs.analyze`` + ``repro obs``).

Covers span-tree reconstruction (interval containment with the depth
tie-break racing traces need), the report/diff renderers, the
noise-aware benchmark regression judgement and its CLI exit codes, and
the committed ``benchmarks/baselines.json`` artifact itself.
"""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs import analyze

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "baselines.json")


def span(name, start, dur, depth=0, parent=None, tags=None,
         counters=None, gauges=None, seq=0, event="span"):
    return {
        "schema": obs.TRACE_SCHEMA, "event": event, "name": name,
        "seq": seq, "depth": depth, "parent": parent,
        "start_s": start, "duration_s": dur,
        "tags": dict(tags or {}), "counters": dict(counters or {}),
        "gauges": dict(gauges or {}),
    }


def bench_doc(suite, rows, schema="repro-bench/2", meta=True):
    doc = {"schema": schema, "suite": suite,
           "benchmarks": [dict({"group": None, "rounds": 5,
                                "stddev_s": 0.001}, **r) for r in rows]}
    if meta and schema == "repro-bench/2":
        doc["meta"] = {"git_commit": "deadbeef",
                       "timestamp_utc": "2026-08-08T00:00:00Z",
                       "python": "3.11.7", "platform": "test"}
    return doc


# ---------------------------------------------------------------------- #
# tree reconstruction
# ---------------------------------------------------------------------- #

class TestBuildTree:
    def test_nests_by_interval_containment(self):
        records = [
            span("root", 0.0, 10.0, depth=0),
            span("child", 1.0, 4.0, depth=1, seq=1),
            span("grandchild", 2.0, 1.0, depth=2, seq=2),
            span("sibling", 6.0, 3.0, depth=1, seq=3),
        ]
        roots = analyze.build_tree(records)
        assert len(roots) == 1
        root = roots[0]
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert root.self_s() == pytest.approx(3.0)

    def test_depth_breaks_ties_between_overlapping_racers(self):
        # a cancelled loser's interval covers the winner's entirely;
        # equal depth must keep them siblings
        records = [
            span("portfolio.race", 0.0, 10.0, depth=0),
            span("worker.task", 0.1, 9.0, depth=1, seq=1,
                 tags={"slot": "loser"}),
            span("worker.task", 0.5, 2.0, depth=1, seq=2,
                 tags={"slot": "winner"}),
        ]
        roots = analyze.build_tree(records)
        assert len(roots[0].children) == 2

    def test_events_attach_but_never_own_children(self):
        records = [
            span("task", 0.0, 10.0, depth=0),
            span("beat", 1.0, 0.0, depth=1, seq=1, event="heartbeat"),
            span("inner", 1.0, 2.0, depth=1, seq=2),
        ]
        roots = analyze.build_tree(records)
        names = [c.name for c in roots[0].children]
        assert "beat" in names and "inner" in names
        beat = next(c for c in roots[0].children if c.name == "beat")
        assert beat.is_event and beat.children == []

    def test_coverage_measures_the_union_of_children(self):
        records = [
            span("portfolio.race", 0.0, 10.0, depth=0),
            span("a", 0.0, 4.0, depth=1, seq=1),
            span("b", 2.0, 4.0, depth=1, seq=2),   # overlaps a
            span("c", 8.0, 2.0, depth=1, seq=3),   # leaves [6, 8) bare
        ]
        assert analyze.coverage(records) == pytest.approx(0.8)
        assert analyze.coverage(records, "missing") == 0.0


class TestRenderers:
    def test_report_renders_tree_tags_and_heartbeats(self):
        records = [
            span("portfolio.race", 0.0, 10.0, depth=0,
                 tags={"verdict": "deadlock-free"}),
            span("worker.task", 1.0, 5.0, depth=1, seq=1,
                 tags={"slot": "sat", "outcome": "ok"}),
            span("worker.heartbeat", 2.0, 0.0, depth=2, seq=2,
                 event="heartbeat", gauges={"conflicts": 12}),
        ]
        out = analyze.render_report(records)
        assert "portfolio.race" in out
        assert "[slot=sat outcome=ok]" in out
        assert "1 heartbeat" in out and "conflicts=12" in out

    def test_report_on_empty_trace(self):
        assert "no spans" in analyze.render_report([])

    def test_diff_marks_new_gone_and_movers(self):
        a = [span("stable", 0.0, 1.0), span("gone", 2.0, 1.0, seq=1)]
        b = [span("stable", 0.0, 2.0), span("fresh", 2.0, 1.0, seq=1)]
        out = analyze.render_diff(a, b, "before", "after")
        assert "new" in out and "gone" in out
        assert "+100.0%" in out

    def test_read_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            analyze.read_trace(str(bad))


# ---------------------------------------------------------------------- #
# benchmark regression judgement
# ---------------------------------------------------------------------- #

class TestBenchRegression:
    def test_statuses_cover_ok_regression_improvement_new(self):
        baseline = analyze.make_baseline([bench_doc("s", [
            {"name": "steady", "mean_s": 1.0},
            {"name": "slower", "mean_s": 1.0},
            {"name": "faster", "mean_s": 1.0},
        ])])
        now = bench_doc("s", [
            {"name": "steady", "mean_s": 1.01},
            {"name": "slower", "mean_s": 2.0},
            {"name": "faster", "mean_s": 0.5},
            {"name": "brand_new", "mean_s": 1.0},
        ])
        by_name = {e["name"]: e["status"]
                   for e in analyze.compare_bench([now], baseline)}
        assert by_name == {"steady": "ok", "slower": "regression",
                           "faster": "improvement", "brand_new": "new"}

    def test_noise_widens_the_margin(self):
        noisy = bench_doc("s", [{"name": "x", "mean_s": 1.0,
                                 "stddev_s": 0.5}])
        baseline = analyze.make_baseline([noisy])
        # +40% would regress against the rel_tol floor, but 3 sigma of
        # recorded noise (~2.1s combined) absorbs it
        now = bench_doc("s", [{"name": "x", "mean_s": 1.4,
                               "stddev_s": 0.5}])
        entries = analyze.compare_bench([now], baseline)
        assert entries[0]["status"] == "ok"
        assert entries[0]["margin_s"] > 0.4

    def test_render_regress_verdict_lines(self):
        baseline = analyze.make_baseline([bench_doc("s", [
            {"name": "x", "mean_s": 1.0}])])
        ok = analyze.compare_bench(
            [bench_doc("s", [{"name": "x", "mean_s": 1.0}])], baseline)
        assert "ok: 1 benchmarks within thresholds" \
            in analyze.render_regress(ok)
        bad = analyze.compare_bench(
            [bench_doc("s", [{"name": "x", "mean_s": 9.0}])], baseline)
        assert "REGRESSION: 1 of 1" in analyze.render_regress(bad)

    def test_bench_schema_v1_and_v2_both_load(self, tmp_path):
        for schema in ("repro-bench/1", "repro-bench/2"):
            path = tmp_path / "b.json"
            path.write_text(json.dumps(bench_doc(
                "s", [{"name": "x", "mean_s": 1.0}], schema=schema)))
            assert analyze.load_bench_file(str(path))["schema"] == schema

    def test_bench_v2_requires_the_meta_block(self):
        doc = bench_doc("s", [{"name": "x", "mean_s": 1.0}])
        del doc["meta"]
        problems = obs.validate_bench_report(doc)
        assert any("meta" in p for p in problems)
        doc = bench_doc("s", [{"name": "x", "mean_s": 1.0}])
        del doc["meta"]["git_commit"]
        assert any("git_commit" in p
                   for p in obs.validate_bench_report(doc))

    def test_committed_baseline_is_schema_valid(self):
        with open(BASELINE_PATH) as fp:
            doc = json.load(fp)
        assert obs.validate_baseline(doc) == []
        assert doc["suites"]  # non-empty: regress has something to judge


# ---------------------------------------------------------------------- #
# the repro obs CLI family
# ---------------------------------------------------------------------- #

class TestObsCli:
    @pytest.fixture()
    def trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [span("portfolio.race", 0.0, 10.0, depth=0),
                   span("worker.task", 1.0, 8.0, depth=1, seq=1)]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_report_and_coverage(self, trace, capsys):
        assert main(["obs", "report", trace,
                     "--coverage", "portfolio.race"]) == 0
        out = capsys.readouterr().out
        assert "worker.task" in out
        assert "coverage(portfolio.race): 80.0%" in out

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert main(["obs", "report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff(self, trace, capsys):
        assert main(["obs", "diff", trace, trace]) == 0
        assert "worker.task" in capsys.readouterr().out

    def test_lint_matches_module_alias(self, trace, tmp_path, capsys):
        from repro.obs.__main__ import main as module_main
        assert main(["obs", "lint", trace]) == 0
        assert capsys.readouterr().out.strip().endswith("ok")
        assert module_main([trace]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "span"}\n')
        assert main(["obs", "lint", str(bad)]) == 1
        assert module_main([str(bad)]) == 1

    def test_baseline_then_regress_roundtrip(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_s.json"
        bench.write_text(json.dumps(bench_doc(
            "s", [{"name": "x", "mean_s": 1.0}])))
        base = tmp_path / "baselines.json"
        assert main(["obs", "baseline", str(bench), "-o", str(base)]) == 0
        assert obs.validate_baseline(json.loads(base.read_text())) == []
        capsys.readouterr()
        assert main(["obs", "regress", str(bench),
                     "--baseline", str(base)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_regress_exits_nonzero_on_synthetic_slowdown(self, tmp_path,
                                                         capsys):
        bench = tmp_path / "BENCH_s.json"
        bench.write_text(json.dumps(bench_doc(
            "s", [{"name": "x", "mean_s": 1.0}])))
        base = tmp_path / "baselines.json"
        assert main(["obs", "baseline", str(bench), "-o", str(base)]) == 0
        slowed = json.loads(bench.read_text())
        for row in slowed["benchmarks"]:
            row["mean_s"] *= 3
        bench.write_text(json.dumps(slowed))
        capsys.readouterr()
        assert main(["obs", "regress", str(bench),
                     "--baseline", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_regress_missing_baseline_is_a_usage_error(self, tmp_path,
                                                       capsys):
        bench = tmp_path / "BENCH_s.json"
        bench.write_text(json.dumps(bench_doc(
            "s", [{"name": "x", "mean_s": 1.0}])))
        assert main(["obs", "regress", str(bench), "--baseline",
                     str(tmp_path / "absent.json")]) == 2

    def test_regress_thresholds_are_tunable(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_s.json"
        bench.write_text(json.dumps(bench_doc(
            "s", [{"name": "x", "mean_s": 1.2, "stddev_s": 0.0}])))
        base = tmp_path / "baselines.json"
        base.write_text(json.dumps(analyze.make_baseline([bench_doc(
            "s", [{"name": "x", "mean_s": 1.0, "stddev_s": 0.0}])])))
        assert main(["obs", "regress", str(bench), "--baseline", str(base),
                     "--rel-tol", "0.5"]) == 0
        assert main(["obs", "regress", str(bench), "--baseline", str(base),
                     "--rel-tol", "0.05"]) == 1
