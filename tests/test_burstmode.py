"""Burst-mode machines and fundamental-mode synthesis (paper §3.3, §6)."""

import pytest

from repro.errors import ModelError, SynthesisError
from repro.boolmin import equivalent, parse_expr
from repro.burstmode import (
    BurstModeMachine,
    burst,
    concur_mixer_bm,
    format_burst,
    selector_bm,
    simple_handshake_bm,
    simulate_fundamental_mode,
    synthesize_burst_mode,
)
from repro.stg import vme_read
from repro.synth import Gate, Netlist
from repro.verify import verify_circuit


class TestModel:
    def test_burst_parsing(self):
        b = burst("a+", "b-")
        assert ("a", "+") in b and ("b", "-") in b
        assert format_burst(b) == "a+ b-"

    def test_bad_edge(self):
        with pytest.raises(ModelError):
            burst("a")

    def test_empty_input_burst_rejected(self):
        m = BurstModeMachine("m", ["a"], ["y"], "s0")
        with pytest.raises(ModelError):
            m.add_transition("s0", [], ["y+"], "s1")

    def test_undeclared_signal_rejected(self):
        m = BurstModeMachine("m", ["a"], ["y"], "s0")
        with pytest.raises(ModelError):
            m.add_transition("s0", ["zz+"], [], "s1")

    def test_state_values_propagation(self):
        m = simple_handshake_bm()
        values = m.state_values()
        assert values["s0"] == {"req": 0, "ack": 0}
        assert values["s1"] == {"req": 1, "ack": 1}

    def test_polarity_error_detected(self):
        m = BurstModeMachine("m", ["a"], ["y"], "s0")
        m.add_transition("s0", ["a+"], [], "s1")
        m.add_transition("s1", ["a+"], [], "s2")  # a already high
        with pytest.raises(ModelError):
            m.state_values()

    def test_maximal_set_property(self):
        m = BurstModeMachine("m", ["a", "b"], ["y"], "s0")
        m.add_transition("s0", ["a+"], [], "s1")
        m.add_transition("s0", ["a+", "b+"], ["y+"], "s2")
        with pytest.raises(ModelError):
            m.validate()

    def test_nondeterminism_detected(self):
        m = BurstModeMachine("m", ["a"], ["y"], "s0")
        m.add_transition("s0", ["a+"], [], "s1")
        m.add_transition("s0", ["a+"], ["y+"], "s2")
        with pytest.raises(ModelError):
            m.validate()


class TestSynthesis:
    @pytest.mark.parametrize("maker", [simple_handshake_bm, concur_mixer_bm,
                                       selector_bm])
    def test_examples_synthesize_and_simulate(self, maker):
        machine = maker()
        netlist = synthesize_burst_mode(machine)
        assert simulate_fundamental_mode(machine, netlist) == []

    def test_selector_equations(self):
        netlist = synthesize_burst_mode(selector_bm())
        assert equivalent(netlist.gates["g1"].expr, parse_expr("~m & r"))
        assert equivalent(netlist.gates["g2"].expr, parse_expr("m & r"))

    def test_non_output_coded_machine_rejected(self):
        m = BurstModeMachine("noncoded", ["a"], ["y"], "s0")
        m.add_transition("s0", ["a+"], [], "s1")
        m.add_transition("s1", ["a-"], [], "s2")  # s2 code == s0 code
        m.add_transition("s2", ["a+"], ["y+"], "s3")
        m.add_transition("s3", ["a-"], ["y-"], "s0")
        with pytest.raises(SynthesisError):
            synthesize_burst_mode(m)

    def test_fundamental_mode_weaker_than_si(self):
        """Section 3.3's caveat, demonstrated: the burst-mode C-element
        implementation is correct in fundamental mode but is NOT a
        speed-independent implementation of the same behaviour."""
        machine = concur_mixer_bm()
        netlist = synthesize_burst_mode(machine)
        assert simulate_fundamental_mode(machine, netlist) == []
        # as an SI circuit against the STG with the same protocol, the
        # cover fails (y may rise after b+ alone)
        from repro.stg import parse_g

        stg = parse_g("""
.model celem
.inputs a b
.outputs y
.graph
a+ y+
b+ y+
y+ a- b-
a- y-
b- y-
y- a+ b+
.marking { <y-,a+> <y-,b+> }
.end
""")
        si_netlist = Netlist("bm_as_si", inputs=["a", "b"])
        si_netlist.add(Gate("y", netlist.gates["y"].kind,
                            expr=netlist.gates["y"].expr))
        report = verify_circuit(si_netlist, stg)
        assert not report.ok  # early firing is a conformance failure

    def test_simulator_catches_wrong_netlist(self):
        machine = simple_handshake_bm()
        wrong = Netlist("wrong", inputs=["req"])
        wrong.add(Gate.comb("ack", "~req"))
        problems = simulate_fundamental_mode(machine, wrong)
        assert problems
