"""Behavioural property checks (boundedness, liveness, deadlocks, ...)."""

import pytest

from repro.errors import StateExplosionError, UnboundedError
from repro.petri import (
    Marking,
    PetriNet,
    bound,
    explore,
    find_deadlocks,
    home_markings,
    is_bounded,
    is_deadlock_free,
    is_live,
    is_reversible,
    is_safe,
    reachable_markings,
    unsafe_witness,
)
from repro.stg import vme_read, vme_read_write


def unbounded_net():
    net = PetriNet("unbounded")
    net.add_place("p", tokens=1)
    net.add_place("sink")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "p")
    net.add_arc("t", "sink")  # grows sink forever
    return net


def two_bounded_net():
    net = PetriNet("2bounded")
    net.add_place("p", tokens=2)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    return net


def deadlocking_net():
    net = PetriNet("dead")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    return net


class TestBoundedness:
    def test_vme_read_is_safe(self):
        assert is_safe(vme_read().net)
        assert bound(vme_read().net) == 1

    def test_unbounded_detected(self):
        assert not is_bounded(unbounded_net())
        assert not is_safe(unbounded_net())

    def test_unbounded_raises_from_explore(self):
        with pytest.raises(UnboundedError):
            explore(unbounded_net())

    def test_two_bounded(self):
        net = two_bounded_net()
        assert is_bounded(net)
        assert bound(net) == 2
        assert not is_safe(net)
        assert unsafe_witness(net) is not None

    def test_state_bound_enforced(self):
        with pytest.raises(StateExplosionError):
            explore(vme_read().net, max_states=3, detect_unbounded=False)

    def test_reachable_markings_count(self):
        assert len(reachable_markings(vme_read().net)) == 14
        assert len(reachable_markings(vme_read_write().net)) == 24


class TestDeadlockLiveness:
    def test_vme_nets_deadlock_free_and_live(self):
        for stg in (vme_read(), vme_read_write()):
            assert is_deadlock_free(stg.net)
            assert is_live(stg.net)

    def test_deadlock_found(self):
        net = deadlocking_net()
        deadlocks = find_deadlocks(net)
        assert deadlocks == [Marking({"q": 1})]
        assert not is_deadlock_free(net)
        assert not is_live(net)

    def test_home_markings_of_cyclic_net(self):
        net = vme_read().net
        homes = home_markings(net)
        # the READ cycle is strongly connected: all 14 states are home
        assert len(homes) == 14
        assert is_reversible(net)

    def test_home_markings_empty_when_two_bottoms(self):
        net = PetriNet("choice-dead")
        net.add_place("p", tokens=1)
        net.add_place("a")
        net.add_place("b")
        net.add_transition("ta")
        net.add_transition("tb")
        net.add_arc("p", "ta")
        net.add_arc("ta", "a")
        net.add_arc("p", "tb")
        net.add_arc("tb", "b")
        assert home_markings(net) == set()
        assert not is_reversible(net)
