"""The fault-tolerant portfolio layer (``repro.portfolio``).

The load-bearing property is **verdict stability**: on the library
corpus the portfolio must return verdicts bit-identical to fault-free
single-engine runs — with no faults, and under every injected-fault
scenario (worker kill, deadline overrun, mid-run raise), in both the
process-racing and the inline execution modes — while provably
cancelling losers (no orphan worker processes) and never resolving an
engine disagreement silently.
"""

import json
import multiprocessing
import time

import pytest

from repro.cli import main
from repro.errors import (EngineTimeoutError, ReproError,
                          StateExplosionError, WorkerCrashError)
from repro.petri.library import dining_philosophers
from repro.portfolio import (TaskSpec, check_consistency, check_csc,
                             check_deadlock, check_reach, race, run_ladder,
                             run_task)
from repro.portfolio import faults, tasks
from repro.portfolio.faults import FaultRule, FaultSyntaxError, parse
from repro.stg.library import ALL_EXAMPLES
from repro.ts import choose_engine


@pytest.fixture(autouse=True)
def no_leftover_faults():
    """Every test starts and ends with a clean fault plan."""
    faults.clear()
    yield
    faults.clear()


def assert_no_orphans():
    """No worker process survives a finished portfolio call."""
    deadline = time.time() + 5.0
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.05)  # terminated children may need a beat to reap
    assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------- #
# fault rules
# ---------------------------------------------------------------------- #

class TestFaultRules:
    def test_parse_roundtrip(self):
        text = "kill:engine=sat,attempt=0;delay:method=bdd,seconds=9"
        rules = parse(text)
        assert [r.action for r in rules] == ["kill", "delay"]
        assert rules[0].engine == "sat" and rules[0].attempt == 0
        assert rules[1].seconds == 9.0
        assert parse(";".join(r.spec() for r in rules)) == rules

    def test_parse_empty(self):
        assert parse("") == [] and parse(" ; ") == []

    @pytest.mark.parametrize("bad", [
        "explode:engine=sat", "kill:color=red", "kill:attempt=x",
        "delay:seconds"])
    def test_parse_rejects_typos_loudly(self, bad):
        with pytest.raises(FaultSyntaxError):
            parse(bad)

    def test_matching(self):
        rule = FaultRule("raise", slot="sat", max_attempt=1)
        assert rule.matches("sat", "sat", "bmc", 0)
        assert rule.matches("sat", "sat", "bmc", 1)
        assert not rule.matches("sat", "sat", "bmc", 2)
        assert not rule.matches("bdd", "bdd", "bdd", 0)

    def test_probabilistic_matching_is_deterministic(self):
        rule = FaultRule("raise", p=0.5, seed=7)
        draws = [rule.matches("s", "e", "m", i) for i in range(64)]
        assert any(draws) and not all(draws)
        assert draws == [rule.matches("s", "e", "m", i) for i in range(64)]
        other = FaultRule("raise", p=0.5, seed=8)
        assert draws != [other.matches("s", "e", "m", i) for i in range(64)]

    def test_env_var_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "raise:engine=sat")
        assert [r.action for r in faults.active_rules()] == ["raise"]
        monkeypatch.setenv(faults.ENV_VAR, "")
        assert faults.active_rules() == []

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "raise:engine=sat")
        faults.install("kill:engine=bdd")
        assert [r.action for r in faults.active_rules()] == ["kill"]
        faults.clear()
        assert [r.action for r in faults.active_rules()] == ["raise"]

    def test_inline_fire_translates_kill_and_delay(self):
        faults.install("kill:slot=a;delay:slot=b")
        with pytest.raises(WorkerCrashError):
            faults.fire("a", "e", "m", 0, inline=True)
        with pytest.raises(EngineTimeoutError):
            faults.fire("b", "e", "m", 0, inline=True)


# ---------------------------------------------------------------------- #
# the worker pool
# ---------------------------------------------------------------------- #

def _deadlock_spec(model, **overrides):
    spec = dict(slot="sat", engine="sat", method="kinduction",
                fn=tasks.deadlock_kinduction,
                kwargs={"model": model, "max_k": 10})
    spec.update(overrides)
    return TaskSpec(**spec)


class TestWorkers:
    def test_run_task_returns_payload(self):
        stg = ALL_EXAMPLES["vme_read"]()
        payload = run_task(_deadlock_spec(stg))
        assert payload["verdict"] == "deadlock-free"
        assert payload["definitive"] is True
        assert_no_orphans()

    def test_deadline_overrun_is_classified(self):
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("delay:seconds=30")
        with pytest.raises(EngineTimeoutError) as err:
            run_task(_deadlock_spec(stg, deadline_s=0.5))
        assert err.value.deadline_s == 0.5
        assert_no_orphans()

    def test_persistent_crash_is_classified_after_retries(self):
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("kill:max_attempt=99")
        with pytest.raises(WorkerCrashError) as err:
            run_task(_deadlock_spec(stg))
        assert err.value.exitcode == faults.KILL_EXIT_CODE
        assert_no_orphans()

    def test_transient_crash_is_retried_transparently(self):
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("kill:attempt=0")  # first attempt only
        payload = run_task(_deadlock_spec(stg))
        assert payload["verdict"] == "deadlock-free"

    def test_engine_errors_cross_the_process_boundary(self):
        # pin an empty plan: an ambient REPRO_FAULTS (the CI stress
        # matrix) would reclassify the engine error as a crash
        faults.install([])
        stg = ALL_EXAMPLES["vme_read"]()
        spec = TaskSpec(slot="explicit", engine="naive", method="explicit",
                        fn=tasks.deadlock_explicit,
                        kwargs={"model": stg, "max_states": 3},
                        max_attempts=1)
        with pytest.raises(StateExplosionError) as err:
            run_task(spec)
        assert err.value.bound == 3

    def test_ladder_degrades_from_timeout_to_cheaper_engine(self):
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("delay:method=kinduction,seconds=30")
        outcome = run_ladder([
            _deadlock_spec(stg, deadline_s=0.5),
            TaskSpec(slot="sat", engine="sat", method="bmc",
                     fn=tasks.deadlock_bmc,
                     kwargs={"model": stg, "bound": 8}),
        ])
        assert outcome.spec.method == "bmc"
        assert outcome.payload["verdict"] == "unknown"
        assert_no_orphans()

    def test_race_cancels_losers_on_first_definitive_verdict(self):
        stg = ALL_EXAMPLES["vme_read"]()
        slow = TaskSpec(slot="slow", engine="sat", method="kinduction",
                        fn=tasks.deadlock_kinduction,
                        kwargs={"model": stg, "max_k": 10},
                        deadline_s=60.0)
        fast = TaskSpec(slot="fast", engine="sat", method="kinduction",
                        fn=tasks.deadlock_kinduction,
                        kwargs={"model": stg, "max_k": 10})
        faults.install("delay:slot=slow,seconds=60")
        result = race({"slow": [slow], "fast": [fast]})
        assert result.winner is not None
        assert result.winner.spec.slot == "fast"
        assert result.stats["cancellations"] == 1
        assert result.elapsed_s < 30.0  # did not wait out the delay
        assert_no_orphans()


# ---------------------------------------------------------------------- #
# verdict agreement: portfolio vs fault-free single engines
# ---------------------------------------------------------------------- #

CORPUS = sorted(ALL_EXAMPLES)

#: Fault-free single-engine reference verdicts, computed once per session.
_reference_cache = {}


def reference_verdict(name, query):
    """The explicit engine's fault-free answer (definitive everywhere on
    the corpus, and independent of the racing machinery under test)."""
    key = (name, query)
    if key not in _reference_cache:
        stg = ALL_EXAMPLES[name]()
        runner = {"deadlock": tasks.deadlock_explicit,
                  "csc": tasks.csc_explicit,
                  "consistency": tasks.consistency_explicit}[query]
        kwargs = {"max_states": 100_000}
        if query == "deadlock":
            _reference_cache[key] = runner(stg, **kwargs)["verdict"]
        else:
            _reference_cache[key] = runner(stg, **kwargs)["verdict"]
    return _reference_cache[key]


class TestVerdictAgreement:
    @pytest.mark.parametrize("name", CORPUS)
    @pytest.mark.parametrize("query", ["deadlock", "csc", "consistency"])
    def test_inline_portfolio_matches_single_engine(self, name, query):
        stg = ALL_EXAMPLES[name]()
        check = {"deadlock": check_deadlock, "csc": check_csc,
                 "consistency": check_consistency}[query]
        # inline rungs run with no deadline, so keep the bounded SAT
        # rungs small (conflicts on this corpus need at most 12 steps)
        verdict = check(stg, inline=True, bound=12)
        assert verdict.definitive
        assert verdict.verdict == reference_verdict(name, query)
        assert not verdict.flagged

    @pytest.mark.parametrize("query", ["deadlock", "csc", "consistency"])
    def test_process_portfolio_matches_single_engine(self, query):
        name = "vme_read"
        stg = ALL_EXAMPLES[name]()
        check = {"deadlock": check_deadlock, "csc": check_csc,
                 "consistency": check_consistency}[query]
        verdict = check(stg)
        assert verdict.verdict == reference_verdict(name, query)
        assert_no_orphans()

    @pytest.mark.parametrize("fault", [
        "kill:attempt=0",                      # every first attempt dies
        "kill:max_attempt=99,engine=sat",      # the sat slot always dies
        "raise:attempt=0",                     # every first attempt raises
        "raise:max_attempt=99,method=kinduction",
        "delay:slot=explicit,seconds=30",      # explicit overruns deadline
        "kill:p=0.5,seed=3,max_attempt=99",    # seeded probabilistic kills
    ])
    @pytest.mark.parametrize("query", ["deadlock", "csc"])
    def test_faulted_verdicts_are_bit_identical(self, fault, query):
        name = "vme_read"
        stg = ALL_EXAMPLES[name]()
        check = {"deadlock": check_deadlock, "csc": check_csc}[query]
        faults.install(fault)
        verdict = check(stg, deadline_s=5.0)
        faults.clear()
        assert verdict.verdict == reference_verdict(name, query), fault
        assert_no_orphans()

    @pytest.mark.parametrize("fault", [
        "kill:attempt=0", "raise:attempt=0", "delay:slot=explicit"])
    def test_faulted_inline_verdicts_are_bit_identical(self, fault):
        name = "vme_read_csc"
        stg = ALL_EXAMPLES[name]()
        faults.install(fault)
        verdict = check_csc(stg, inline=True, bound=10)
        assert verdict.verdict == reference_verdict(name, "csc")

    def test_deadlock_is_found_and_witnessed(self):
        net = dining_philosophers(2)
        verdict = check_deadlock(net, inline=True)
        assert verdict.verdict == "deadlock"
        assert not verdict.flagged
        assert "dead_marking" in verdict.details

    def test_reach_agreement(self):
        net = dining_philosophers(2)
        dead = tasks.deadlock_explicit(net, max_states=10_000)
        target = dead["dead_marking"]
        verdict = check_reach(net, target, inline=True)
        assert verdict.verdict == "reached"
        assert verdict.validator in ("token-game", None)
        missing = {p: 2 for p in list(target)[:1]}  # unreachable: 2 tokens
        verdict = check_reach(net, missing, inline=True)
        assert verdict.verdict == "unreachable"

    def test_every_slot_dead_concedes_unknown_with_evidence(self):
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("kill:max_attempt=99,method=kinduction;"
                       "kill:max_attempt=99,method=explicit;"
                       "kill:max_attempt=99,method=bdd")
        verdict = check_deadlock(stg, inline=True, bound=8)
        assert verdict.verdict == "unknown"
        assert not verdict.definitive
        assert verdict.stats["crashes"] > 0
        assert verdict.details["partial"]  # bmc evidence survived
        assert verdict.evidence

    def test_cross_validation_flags_disagreement(self, monkeypatch):
        stg = ALL_EXAMPLES["vme_read"]()

        def lying_kinduction(model, max_k):
            return {"verdict": "deadlock", "definitive": True,
                    "method": "kinduction", "evidence": "fabricated",
                    "witness": ["DSr+", "DSr+"]}  # not fireable

        monkeypatch.setattr(tasks, "deadlock_kinduction", lying_kinduction)
        verdict = check_deadlock(stg, engines=["sat"], inline=True)
        assert verdict.verdict == "inconsistent"
        assert verdict.flagged
        assert "disagreement" in verdict.details

    def test_witness_free_lie_is_caught_by_independent_probe(self,
                                                             monkeypatch):
        net = dining_philosophers(2)  # has a reachable deadlock

        def lying_kinduction(model, max_k):
            return {"verdict": "deadlock-free", "definitive": True,
                    "method": "kinduction", "evidence": "fabricated"}

        monkeypatch.setattr(tasks, "deadlock_kinduction", lying_kinduction)
        verdict = check_deadlock(net, engines=["sat"], inline=True)
        assert verdict.verdict == "inconsistent"
        assert verdict.validator == "independent:bmc"
        assert "counter_evidence" in verdict.details


# ---------------------------------------------------------------------- #
# merged cross-process traces under fault injection
# ---------------------------------------------------------------------- #

#: The fault plans the verdict-stability matrix runs; merged traces must
#: stay schema-valid and fully attributed under every one of them.
FAULT_PLANS = [
    "kill:attempt=0",
    "kill:max_attempt=99,engine=sat",
    "raise:attempt=0",
    "raise:max_attempt=99,method=kinduction",
    "delay:slot=explicit,seconds=30",
    "kill:p=0.5,seed=3,max_attempt=99",
]


class TestMergedTraces:
    @pytest.mark.parametrize("fault", FAULT_PLANS)
    def test_merged_trace_stays_valid_under_faults(self, fault):
        from repro import obs
        from repro.obs.analyze import lint_records

        stg = ALL_EXAMPLES["vme_read"]()
        faults.install(fault)
        obs.reset()
        obs.enable()
        sink = obs.add_sink(obs.MemorySink())
        try:
            verdict = check_deadlock(stg, deadline_s=5.0)
        finally:
            obs.remove_sink(sink)
            obs.reset()
        assert verdict.verdict == reference_verdict("vme_read", "deadlock")
        records = sink.records
        # every record of the merged parent+worker trace is repro-trace/1
        assert lint_records(records) == []
        assert [r for r in records if r["name"] == "portfolio.race"]
        # every worker the race ran is attributed, faulted or not
        tasks_seen = [r for r in records if r["name"] == "worker.task"]
        assert tasks_seen
        for record in tasks_seen:
            assert "slot" in record["tags"], record
            assert "attempt" in record["tags"], record
        assert_no_orphans()


# ---------------------------------------------------------------------- #
# engine selection and CLI
# ---------------------------------------------------------------------- #

class TestIntegration:
    def test_choose_engine_portfolio_schedule(self):
        stg = ALL_EXAMPLES["vme_read"]()
        schedule = choose_engine(stg, purpose="portfolio")
        assert isinstance(schedule, tuple)
        assert schedule[0] == "sat"
        assert schedule[-1] in ("compiled", "naive")

    def test_build_graph_rejects_portfolio_engine(self):
        from repro.ts import build_reachability_graph
        stg = ALL_EXAMPLES["vme_read"]()
        with pytest.raises(ReproError, match="portfolio"):
            build_reachability_graph(stg, engine="portfolio")

    def test_cli_check_single_slot(self, capsys):
        assert main(["check", "vme_read", "--query", "deadlock"]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free" in out and "robustness:" in out

    def test_cli_check_portfolio_json(self, capsys):
        code = main(["check", "vme_read", "--query", "csc", "--portfolio",
                     "--json"])
        assert code == 1  # vme_read has the paper's CSC conflict
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-run-report/1"
        assert doc["verdict"] == "conflict"
        assert doc["details"]["robustness"]["cancellations"] >= 0
        assert_no_orphans()

    def test_cli_check_with_faults_flag(self, capsys, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        code = main(["check", "vme_read_csc", "--query", "csc",
                     "--portfolio", "--faults", "kill:attempt=0",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdict"] == "no-conflict"
        assert doc["details"]["robustness"]["crashes"] >= 1
        assert faults.active_rules() == []  # plan removed after the run
        assert_no_orphans()

    def test_cli_check_reach_requires_target(self, capsys):
        assert main(["check", "vme_read", "--query", "reach"]) == 2

    def test_cli_sat_check_portfolio_engine(self, capsys):
        code = main(["sat-check", "vme_read", "--property", "deadlock",
                     "--engine", "portfolio", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdict"] == "deadlock-free"
        assert doc["command"] == "sat-check"

    def test_cli_sat_check_portfolio_rejects_dimacs(self, tmp_path):
        code = main(["sat-check", "vme_read", "--engine", "portfolio",
                     "--dimacs", str(tmp_path / "x.cnf")])
        assert code == 2

    def test_cli_bdd_check_portfolio_engine(self, capsys):
        code = main(["bdd-check", "vme_read_csc", "--query", "csc",
                     "--engine", "portfolio"])
        assert code == 0
        assert "no-conflict" in capsys.readouterr().out

    def test_cli_bdd_check_portfolio_rejects_count(self):
        assert main(["bdd-check", "vme_read", "--query", "count",
                     "--engine", "portfolio"]) == 2

    def test_sat_check_json_reports_unknown_reason(self, capsys):
        # an unfinished induction must explain itself in the run report
        code = main(["sat-check", "handshake_arbiter_free_choice",
                     "--property", "deadlock", "--induction",
                     "--bound", "0", "--json"])
        doc = json.loads(capsys.readouterr().out)
        if doc["verdict"] == "unknown":
            assert doc["details"]["reason"] in ("step-satisfiable",
                                                "bound-reached")
            assert code == 1
        else:  # k=0 already decides this net: still a valid outcome
            assert doc["verdict"] in ("proved", "refuted")

    def test_portfolio_race_span_counts_robustness(self):
        from repro import obs
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("kill:attempt=0")
        obs.enable()
        sink = obs.add_sink(obs.MemorySink())
        try:
            check_deadlock(stg, inline=True)
        finally:
            obs.remove_sink(sink)
            obs.enable(False)
        spans = sink.spans("portfolio.race")
        assert spans and spans[0]["tags"]["verdict"] == "deadlock-free"
        assert spans[0]["counters"]["crashes"] >= 1
        assert spans[0]["counters"]["retries"] >= 1


# ---------------------------------------------------------------------- #
# budgets (satellite: one canonical constant, documented override)
# ---------------------------------------------------------------------- #

class TestBudgets:
    def test_derived_budgets_scale_from_the_default(self):
        from repro import budgets
        assert budgets.REDUCTION_STATE_BOUND == max(
            1, budgets.DEFAULT_STATE_BOUND // 10)
        assert budgets.DECOMPOSE_STATE_BOUND == max(
            1, budgets.DEFAULT_STATE_BOUND // 5)
        assert budgets.COMPOSE_STATE_BOUND == max(
            1, budgets.DEFAULT_STATE_BOUND // 2)

    def test_entry_points_share_the_canonical_default(self):
        import inspect
        from repro import budgets
        from repro.analysis.implementability import check_implementability
        from repro.tech.decompose import decompose
        from repro.ts.builder import build_reachability_graph

        def default_of(fn, name="max_states"):
            return inspect.signature(fn).parameters[name].default

        assert default_of(build_reachability_graph) == \
            budgets.DEFAULT_STATE_BOUND
        assert default_of(check_implementability) == \
            budgets.DEFAULT_STATE_BOUND
        assert default_of(decompose) == budgets.DECOMPOSE_STATE_BOUND

    def test_env_override_rejects_garbage(self, monkeypatch):
        from repro.budgets import _default_bound
        monkeypatch.setenv("REPRO_STATE_BOUND", "a lot")
        with pytest.raises(ValueError):
            _default_bound()
        monkeypatch.setenv("REPRO_STATE_BOUND", "-5")
        with pytest.raises(ValueError):
            _default_bound()
        monkeypatch.setenv("REPRO_STATE_BOUND", "123")
        assert _default_bound() == 123

    def test_state_explosion_carries_structured_attrs(self):
        from repro.ts import build_reachability_graph
        stg = ALL_EXAMPLES["vme_read"]()
        with pytest.raises(StateExplosionError) as err:
            build_reachability_graph(stg, max_states=3)
        assert err.value.bound == 3
        assert err.value.states is not None
