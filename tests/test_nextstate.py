"""Next-state function derivation (paper Section 3.2)."""

import pytest

from repro.errors import CSCError
from repro.boolmin import minterm_to_int
from repro.stg import vme_read, vme_read_csc
from repro.synth import (
    derive_all_next_state_functions,
    derive_next_state_function,
    next_state_table,
)
from repro.ts import build_state_graph

PAPER_ORDER_CSC = ["DSr", "DTACK", "LDTACK", "LDS", "D", "csc0"]


@pytest.fixture
def csc_sg():
    return build_state_graph(vme_read_csc(), signal_order=PAPER_ORDER_CSC)


class TestDerivation:
    def test_csc_conflict_raises(self):
        sg = build_state_graph(vme_read())
        with pytest.raises(CSCError):
            derive_next_state_function(sg, "LDS")

    def test_all_functions_derivable_after_insertion(self, csc_sg):
        fns = derive_all_next_state_functions(csc_sg)
        assert set(fns) == {"LDS", "D", "DTACK", "csc0"}

    def test_onset_offset_partition_reachable(self, csc_sg):
        fn = derive_next_state_function(csc_sg, "LDS")
        reachable = {minterm_to_int(csc_sg.code(s)) for s in csc_sg.states}
        assert fn.onset | fn.offset == reachable
        assert not (fn.onset & fn.offset)
        assert fn.dcset == set(range(64)) - reachable

    def test_value_lookup(self, csc_sg):
        fn = derive_next_state_function(csc_sg, "LDS")
        # paper's Section 3.2 table rows for f_LDS:
        # 101101 -> ER(LDS-)... and the don't-care row
        assert fn.value((1, 0, 0, 0, 0, 1)) == 1   # QR: LDS rising soon?
        assert fn.value((0, 1, 1, 1, 0, 0)) == 0   # reset phase
        assert fn.value((1, 1, 1, 1, 1, 1)) == 1   # all high: stable 1
        assert fn.value((0, 0, 0, 1, 1, 0)) is None  # unreachable code


class TestPaperTable:
    def test_section32_table_rows(self, csc_sg):
        """Reproduce the Section 3.2 next-state table for LDS: codes with
        their region classification and implied value."""
        rows = {code: (region, value)
                for code, region, value in next_state_table(csc_sg, "LDS")}
        # ER(LDS+): csc0 set, LDS still 0 -> f = 1
        er_plus = [c for c, (r, v) in rows.items() if r == "ER(LDS+)"]
        assert er_plus and all(rows[c][1] == "1" for c in er_plus)
        for c in er_plus:
            assert c[3] == "0" and c[5] == "1"  # LDS=0, csc0=1
        # ER(LDS-) rows imply 0
        er_minus = [c for c, (r, v) in rows.items() if r == "ER(LDS-)"]
        assert er_minus and all(rows[c][1] == "0" for c in er_minus)

    def test_regions_cover_every_state_once(self, csc_sg):
        rows = next_state_table(csc_sg, "D")
        assert len(rows) == len(csc_sg)
        for code, region, value in rows:
            assert region.startswith(("ER(D", "QR(D"))
            assert value in "01"


class TestMinimization:
    def test_minimized_cubes_cover_onset_only(self, csc_sg):
        for signal, fn in derive_all_next_state_functions(csc_sg).items():
            cubes = fn.minimized_cubes()
            from repro.boolmin import cube_contains, int_to_minterm

            for m in fn.onset:
                assert any(cube_contains(c, int_to_minterm(m, fn.width))
                           for c in cubes)
            for m in fn.offset:
                assert not any(cube_contains(c, int_to_minterm(m, fn.width))
                               for c in cubes)

    def test_minimized_expr_uses_signal_names(self, csc_sg):
        fn = derive_next_state_function(csc_sg, "D")
        expr = fn.minimized_expr()
        assert expr.support() <= set(PAPER_ORDER_CSC)
