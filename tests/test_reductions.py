"""Linear reductions (paper Section 2.2, Figure 6)."""

import pytest

from repro.petri import (
    PetriNet,
    full_reduce,
    implicit_places,
    is_live,
    is_safe,
    linear_reduce,
    reachable_markings,
    remove_implicit_places,
)
from repro.stg import vme_read, vme_read_write


class TestSeriesFusion:
    def test_chain_collapses_via_fst(self):
        net = PetriNet("chain")
        net.add_place("p0", tokens=1)
        net.add_place("p1")
        net.add_place("p2")
        for t in ("t0", "t1"):
            net.add_transition(t)
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        net.add_arc("p1", "t1")
        net.add_arc("t1", "p2")
        red = linear_reduce(net, rules=["fst"])
        assert len(red.transitions) == 1
        assert "t0.t1" in red.transitions

    def test_fst_respects_marked_place(self):
        net = PetriNet("marked-mid")
        net.add_place("p0", tokens=1)
        net.add_place("p1", tokens=1)  # marked middle place: not fusible
        net.add_place("p2")
        net.add_transition("t0")
        net.add_transition("t1")
        net.add_arc("p0", "t0")
        net.add_arc("t0", "p1")
        net.add_arc("p1", "t1")
        net.add_arc("t1", "p2")
        red = linear_reduce(net, rules=["fst"])
        assert len(red.transitions) == 2

    def test_fsp_merges_places(self):
        net = PetriNet("fsp")
        net.add_place("p0", tokens=1)
        net.add_place("p1")
        net.add_transition("t")
        net.add_arc("p0", "t")
        net.add_arc("t", "p1")
        red = linear_reduce(net, rules=["fsp"])
        assert len(red.places) == 1
        assert len(red.transitions) == 0
        merged = next(iter(red.places.values()))
        assert merged.tokens == 1


class TestParallelAndSelfLoop:
    def test_parallel_places_fused(self):
        net = PetriNet("pp")
        net.add_place("a", tokens=1)
        net.add_place("b", tokens=1)
        net.add_transition("t")
        net.add_transition("u")
        for p in ("a", "b"):
            net.add_arc("u", p)
            net.add_arc(p, "t")
        red = linear_reduce(net, rules=["fpp"])
        assert len(red.places) == 1

    def test_parallel_transitions_fused(self):
        net = PetriNet("pt")
        net.add_place("p", tokens=1)
        net.add_place("q")
        for t in ("t", "u"):
            net.add_transition(t)
            net.add_arc("p", t)
            net.add_arc(t, "q")
        red = linear_reduce(net, rules=["fpt"])
        assert len(red.transitions) == 1

    def test_self_loop_place_removed(self):
        net = PetriNet("loop")
        net.add_place("p", tokens=1)
        net.add_place("busy", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        net.add_arc("busy", "t")
        net.add_arc("t", "busy")
        red = linear_reduce(net, rules=["esp"])
        assert len(red.places) < 2


class TestPaperReductions:
    def test_read_write_reduces_to_six_six(self):
        """Figure 6: the READ/WRITE STG reduces to 6 places and 6 abstract
        transitions."""
        red = linear_reduce(vme_read_write().net)
        assert len(red.transitions) == 6
        assert len(red.places) == 6

    def test_reduction_preserves_safeness_liveness(self):
        red = linear_reduce(vme_read_write().net)
        assert is_safe(red)
        assert is_live(red)

    def test_read_cycle_collapses_to_single_transition(self):
        """Section 2.2: "it is possible to reduce the whole PN from
        Figure 3 to a single self-loop transition"."""
        red = full_reduce(vme_read().net)
        assert len(red.transitions) == 1

    def test_reduction_is_copy_by_default(self):
        net = vme_read_write().net
        before = net.stats()
        linear_reduce(net)
        assert net.stats() == before


class TestImplicitPlaces:
    def test_duplicate_place_is_implicit(self):
        net = PetriNet("dup")
        net.add_place("p", tokens=1)
        net.add_place("shadow", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("shadow", "t")
        net.add_arc("t", "q")
        imps = implicit_places(net)
        assert "p" in imps and "shadow" in imps  # each shadows the other
        red = remove_implicit_places(net)
        # one of them must remain to constrain t
        assert len(red.places) < len(net.places)
        assert len(reachable_markings(red)) == len(reachable_markings(net))

    def test_constraining_place_not_implicit(self):
        net = vme_read().net
        # p2 (DSr+ -> LDS+) genuinely constrains LDS+
        assert "p2" not in implicit_places(net)
