"""Cycle time / throughput analysis of timed marked graphs."""

import pytest

from repro.stg import pipeline_ring, vme_read
from repro.timing import TimedMarkedGraph, critical_cycle, cycle_time, throughput


def ring_tmg(n, tokens, delay=(1, 1)):
    net = pipeline_ring(n, tokens).net
    return TimedMarkedGraph(net, {t: delay for t in net.transitions})


class TestCycleTime:
    def test_single_token_ring(self):
        """n unit-delay stages, one token: cycle time = n."""
        assert cycle_time(ring_tmg(5, 1)) == pytest.approx(5.0, abs=1e-6)

    def test_two_tokens_halve_cycle_time(self):
        assert cycle_time(ring_tmg(6, 2)) == pytest.approx(3.0, abs=1e-6)

    def test_min_vs_max_delays(self):
        net = pipeline_ring(4, 1).net
        tmg = TimedMarkedGraph(net, {t: (1, 3) for t in net.transitions})
        assert cycle_time(tmg, use_max=False) == pytest.approx(4.0, abs=1e-6)
        assert cycle_time(tmg, use_max=True) == pytest.approx(12.0, abs=1e-6)

    def test_throughput_inverse(self):
        tmg = ring_tmg(4, 1)
        assert throughput(tmg) == pytest.approx(0.25, abs=1e-6)

    def test_vme_read_cycle_time(self):
        """Hand-computable: the longest cycle is the main request loop."""
        delays = {
            "DSr+": (18, 25), "DSr-": (4, 6), "DTACK+": (1, 2),
            "DTACK-": (1, 2), "LDS+": (1, 2), "LDS-": (1, 2),
            "LDTACK+": (3, 5), "LDTACK-": (3, 5), "D+": (1, 2), "D-": (1, 2),
        }
        tmg = TimedMarkedGraph(vme_read().net, delays)
        # main loop: DSr+ LDS+ LDTACK+ D+ DTACK+ DSr- D- DTACK- = 45
        # via-LDS-reset loop: DSr+ LDS+ LDTACK+ D+ DTACK+ DSr- D- LDS-
        #                     LDTACK- = 25+2+5+2+2+6+2+2+5 = wait, compare:
        # the binary search finds the max ratio over all cycles.
        ct = cycle_time(tmg)
        assert ct == pytest.approx(46.0, abs=1e-6)

    def test_critical_cycle_is_consistent(self):
        tmg = ring_tmg(5, 1)
        ratio, cycle = critical_cycle(tmg)
        assert ratio == pytest.approx(5.0, abs=1e-6)
        if cycle:  # the extraction may return [] at exact optimum
            assert set(cycle) <= set(tmg.net.transitions)


class TestComparisons:
    def test_more_tokens_never_slower(self):
        base = cycle_time(ring_tmg(6, 1))
        for k in (2, 3):
            assert cycle_time(ring_tmg(6, k)) <= base + 1e-9

    def test_scaling_in_ring_length(self):
        previous = 0.0
        for n in (3, 5, 7):
            ct = cycle_time(ring_tmg(n, 1))
            assert ct > previous
            previous = ct
