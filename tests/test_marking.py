"""Unit and property tests for markings."""

import pytest
from hypothesis import given, strategies as st

from repro.petri import Marking

place_names = st.text(alphabet="abcde", min_size=1, max_size=3)
token_maps = st.dictionaries(place_names, st.integers(0, 3), max_size=5)


class TestBasics:
    def test_zero_counts_dropped(self):
        assert Marking({"p": 0, "q": 1}) == Marking({"q": 1})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Marking({"p": -1})

    def test_get_and_contains(self):
        m = Marking({"p": 2})
        assert m["p"] == 2 and m.get("q") == 0
        assert "p" in m and "q" not in m

    def test_from_places_accumulates(self):
        assert Marking.from_places(["p", "p", "q"]) == Marking({"p": 2, "q": 1})

    def test_places_sorted(self):
        assert Marking({"b": 1, "a": 1}).places() == ("a", "b")

    def test_total_and_len(self):
        m = Marking({"p": 2, "q": 1})
        assert m.total() == 3
        assert len(m) == 2

    def test_is_safe(self):
        assert Marking({"p": 1, "q": 1}).is_safe()
        assert not Marking({"p": 2}).is_safe()

    def test_repr_compact(self):
        assert repr(Marking({"p": 1})) == "{p}"
        assert repr(Marking({"p": 2})) == "{p:2}"


class TestAlgebra:
    def test_add_positive_and_negative(self):
        m = Marking({"p": 1}).add({"p": -1, "q": 2})
        assert m == Marking({"q": 2})

    def test_add_underflow_raises(self):
        with pytest.raises(ValueError):
            Marking({"p": 1}).add({"p": -2})

    def test_covers(self):
        big = Marking({"p": 2, "q": 1})
        small = Marking({"p": 1})
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)


@given(token_maps)
def test_hash_consistency(tokens):
    a = Marking(tokens)
    b = Marking(dict(tokens))
    assert a == b and hash(a) == hash(b)


@given(token_maps, token_maps)
def test_add_then_subtract_roundtrip(base, delta):
    m = Marking(base)
    plus = m.add(delta)
    back = plus.add({p: -n for p, n in delta.items()})
    assert back == m


@given(token_maps)
def test_covers_is_reflexive_and_total_monotone(tokens):
    m = Marking(tokens)
    assert m.covers(m)
    bumped = m.add({"zz": 1})
    assert bumped.covers(m)
    assert bumped.total() == m.total() + 1
