"""State graphs: binary codes, regions, next-state values — checked
against the paper's Figure 4."""

import pytest

from repro.errors import ConsistencyError, UnboundedError
from repro.petri import Marking, PetriNet
from repro.stg import STG, parse_g, vme_read
from repro.ts import build_state_graph
from tests.conftest import PAPER_GROUPS, PAPER_SIGNAL_ORDER


@pytest.fixture
def paper_sg(read_stg):
    return build_state_graph(read_stg, signal_order=PAPER_SIGNAL_ORDER)


class TestFigure4:
    def test_fourteen_states(self, paper_sg):
        assert len(paper_sg) == 14

    def test_initial_code(self, paper_sg):
        """Initial state of Figure 4: 0*0.00.0 (DSr excited)."""
        code = paper_sg.code_str(paper_sg.initial, groups=PAPER_GROUPS)
        assert code == "0*0.00.0"

    def test_all_figure4_codes_present(self, paper_sg):
        expected = {
            "0*0.00.0", "10.00*.0", "10.0*1.0", "10.11.0*", "10*.11.1",
            "1*1.11.1", "01.11.1*", "01*.11*.0", "0*0.11*.0", "10.11*.0",
            "01*.1*0.0", "0*0.1*0.0", "01*.00.0", "10.1*0.0",
        }
        actual = {paper_sg.code_str(s, groups=PAPER_GROUPS)
                  for s in paper_sg.states}
        assert actual == expected

    def test_conflict_states_share_code_10110(self, paper_sg):
        """The two underlined states of Figure 4."""
        by_code = paper_sg.states_by_code()
        dup = [states for states in by_code.values() if len(states) > 1]
        assert len(dup) == 1
        states = dup[0]
        codes = {paper_sg.code(s) for s in states}
        assert codes == {(1, 0, 1, 1, 0)}  # <DSr,DTACK,LDTACK,LDS,D>
        markings = {s for s in states}
        assert Marking({"p4": 1}) in markings
        assert Marking({"p2": 1, "p9": 1}) in markings

    def test_initial_values_all_zero(self, paper_sg):
        assert all(v == 0 for v in paper_sg.initial_values.values())


class TestRegions:
    def test_excitation_region_of_d_plus(self, paper_sg):
        er = paper_sg.excitation_region("D", "+")
        assert er == {Marking({"p4": 1})}

    def test_quiescent_region_of_d_plus(self, paper_sg):
        qr = paper_sg.quiescent_region("D", "+")
        assert qr == {Marking({"p5": 1}), Marking({"p6": 1})}

    def test_next_value_classification(self, paper_sg):
        er_plus = paper_sg.excitation_region("LDS", "+")
        for s in er_plus:
            assert paper_sg.value(s, "LDS") == 0
            assert paper_sg.next_value(s, "LDS") == 1
            assert paper_sg.excited(s, "LDS")

    def test_regions_partition_states(self, paper_sg):
        for signal in PAPER_SIGNAL_ORDER:
            regions = [
                paper_sg.excitation_region(signal, "+"),
                paper_sg.quiescent_region(signal, "+"),
                paper_sg.excitation_region(signal, "-"),
                paper_sg.quiescent_region(signal, "-"),
            ]
            union = set().union(*regions)
            assert union == set(paper_sg.states)
            total = sum(len(r) for r in regions)
            assert total == len(paper_sg)  # pairwise disjoint


class TestConsistency:
    def test_inconsistent_stg_detected(self):
        text = """
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a+/1
a+/1 b-
b- a+
.marking { <b-,a+> }
.end
"""
        with pytest.raises(ConsistencyError):
            build_state_graph(parse_g(text))

    def test_nonsafe_stg_detected(self):
        stg = STG("unsafe", outputs=["x"])
        plus = stg.add_event("x+")
        minus = stg.add_event("x-")
        p = stg.add_place("p", tokens=1)
        stg.net.add_arc(p, plus)
        stg.net.add_arc(plus, p)
        q = stg.add_place("q", tokens=0)
        stg.net.add_arc(plus, q)
        stg.net.add_arc(q, minus)
        with pytest.raises(UnboundedError):
            build_state_graph(stg)

    def test_signal_order_must_be_permutation(self, read_stg):
        with pytest.raises(ConsistencyError):
            build_state_graph(read_stg, signal_order=["DSr"])

    def test_unswitched_signal_defaults_to_zero(self):
        text = """
.model quiet
.inputs a unused
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""
        sg = build_state_graph(parse_g(text))
        assert sg.initial_values["unused"] == 0
