"""Implementability analysis (paper Section 2.1)."""

import pytest

from repro.analysis import (
    check_implementability,
    csc_conflicts,
    persistency_violations,
    usc_conflicts,
)
from repro.stg import STG, parse_g, vme_read, vme_read_csc, vme_read_write
from repro.ts import build_state_graph


class TestVMEReports:
    def test_read_cycle_report(self):
        report = check_implementability(vme_read())
        assert report.bounded and report.consistent
        assert report.states == 14
        assert len(report.usc_conflicts) == 1
        assert len(report.csc_conflicts) == 1
        assert report.persistent
        assert not report.implementable

    def test_conflict_details(self):
        report = check_implementability(vme_read())
        conflict = report.csc_conflicts[0]
        assert conflict.enabled_a != conflict.enabled_b
        # one side must rise D, the other must fall LDS
        both = conflict.enabled_a | conflict.enabled_b
        assert ("D", "+") in both and ("LDS", "-") in both

    def test_read_csc_clean(self):
        report = check_implementability(vme_read_csc())
        assert report.implementable
        assert report.has_usc  # the insertion also fixes USC here

    def test_read_write_report(self):
        report = check_implementability(vme_read_write())
        assert report.consistent
        assert not report.has_csc  # both branches conflict

    def test_summary_text(self):
        text = check_implementability(vme_read()).summary()
        assert "CSC" in text and "persistent" in text


class TestPersistency:
    def test_input_choice_is_allowed(self):
        """DSr+/DSw+ disable each other — environment choice, no violation."""
        report = check_implementability(vme_read_write())
        assert report.persistent

    def test_output_choice_is_violation(self):
        """The paper's Section 2.1 example: if DSr/DSw were outputs, their
        mutual disabling would be non-persistent (needs an arbiter)."""
        stg = vme_read_write()
        stg.declare_signal("DSr", type(stg.type_of("LDS")).OUTPUT)
        stg.declare_signal("DSw", type(stg.type_of("LDS")).OUTPUT)
        sg = build_state_graph(stg)
        violations = persistency_violations(sg)
        disabled = {(v.disabled, v.by) for v in violations}
        assert ("DSr+", "DSw+") in disabled
        assert ("DSw+", "DSr+") in disabled
        assert all(v.kind == "output" for v in violations)

    def test_input_disabled_by_output_is_violation(self):
        text = """
.model choke
.inputs a
.outputs b
.graph
p0 a+ b+
a+ c+
b+ c+
c+ a- b-
a- p1
b- p1
p1 c-
c- p0
.marking { p0 }
.end
"""
        stg = parse_g(text)
        stg.declare_signal("c", type(stg.type_of("b")).OUTPUT)
        sg = build_state_graph(stg)
        violations = persistency_violations(sg)
        kinds = {v.kind for v in violations}
        assert "input" in kinds


class TestUSCvsCSC:
    def test_usc_implies_csc_conflicts_subset(self, read_sg):
        usc = usc_conflicts(read_sg)
        csc = csc_conflicts(read_sg)
        usc_pairs = {(c.state_a, c.state_b) for c in usc}
        csc_pairs = {(c.state_a, c.state_b) for c in csc}
        assert csc_pairs <= usc_pairs

    def test_usc_without_csc_conflict(self):
        """Two same-code states with identical output enabling violate USC
        but not CSC."""
        text = """
.model uscnocsc
.inputs a b
.outputs c
.graph
p0 a+
a+ c+
c+ a-
a- c-
c- b+
b+ c+/1
c+/1 b-
b- c-/1
c-/1 p0
.marking { p0 }
.end
"""
        sg = build_state_graph(parse_g(text))
        assert len(usc_conflicts(sg)) > len(csc_conflicts(sg))
