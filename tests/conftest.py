"""Shared fixtures: the paper's example specifications and derived objects."""

import pytest

from repro.stg import (
    concurrent_latch_controller,
    handshake_arbiter_free_choice,
    latch_controller,
    vme_read,
    vme_read_csc,
    vme_read_write,
)
from repro.ts import build_state_graph


@pytest.fixture
def read_stg():
    """Figure 3: the READ-cycle STG."""
    return vme_read()


@pytest.fixture
def read_write_stg():
    """Figure 5: the READ/WRITE STG with choice."""
    return vme_read_write()


@pytest.fixture
def read_csc_stg():
    """Figure 7's STG: READ cycle with csc0 inserted."""
    return vme_read_csc()


@pytest.fixture
def read_sg(read_stg):
    """Figure 4: the 14-state state graph of the READ cycle."""
    return build_state_graph(read_stg)


@pytest.fixture
def read_csc_sg(read_csc_stg):
    return build_state_graph(read_csc_stg)


@pytest.fixture
def latch_stg():
    return latch_controller()


@pytest.fixture
def concurrent_latch_stg():
    return concurrent_latch_controller()


@pytest.fixture
def choice_stg():
    return handshake_arbiter_free_choice()


PAPER_SIGNAL_ORDER = ["DSr", "DTACK", "LDTACK", "LDS", "D"]
PAPER_GROUPS = [["DSr", "DTACK"], ["LDTACK", "LDS"], ["D"]]
