"""Specification composition and signal renaming (paper ref [10])."""

import pytest

from repro.errors import ModelError
from repro.stg import STG, latch_controller, vme_read
from repro.ts import build_reachability_graph, build_state_graph
from repro.verify import (
    check_connection,
    compose_specifications,
    compose_to_stg,
    composed_signal_types,
)


class TestRenaming:
    def test_rename_signals(self):
        stg = latch_controller()
        renamed = stg.rename_signals({"Rin": "r", "Ain": "a"})
        assert "r" in renamed.inputs
        assert "a" in renamed.outputs
        assert "r+" in renamed.net.transitions
        assert "Rin+" not in renamed.net.transitions

    def test_rename_preserves_behaviour(self):
        stg = latch_controller()
        renamed = stg.rename_signals({"Rin": "r"})
        ts1 = build_reachability_graph(stg)
        ts2 = build_reachability_graph(renamed)
        assert len(ts1) == len(ts2)

    def test_rename_rewrites_implicit_places(self):
        stg = latch_controller()
        renamed = stg.rename_signals({"Ain": "a", "Rin": "r"})
        assert renamed.initial_marking.get("<a-,r+>") == 1

    def test_unknown_signal_rejected(self):
        with pytest.raises(ModelError):
            latch_controller().rename_signals({"nope": "x"})

    def test_collision_rejected(self):
        with pytest.raises(ModelError):
            latch_controller().rename_signals({"Rin": "Aout"})


class TestConnectionChecks:
    def test_mirror_connection_legal(self):
        spec = latch_controller()
        shared = check_connection(spec, spec.mirror())
        assert shared == sorted(spec.signals)

    def test_double_driver_rejected(self):
        spec = latch_controller()
        with pytest.raises(ModelError):
            check_connection(spec, spec.copy())
            # both drive Ain/Rout

    def test_composed_types(self):
        spec = latch_controller()
        types = composed_signal_types(spec, spec.mirror())
        assert all(k.value == "internal" for k in types.values())


class TestComposition:
    def test_spec_with_mirror_is_closed(self):
        """Spec ⊗ mirror: every move synchronized, same state count."""
        spec = latch_controller()
        ts = compose_specifications(spec, spec.mirror())
        assert len(ts) == len(build_state_graph(spec))
        # no deadlocks: the handshake keeps cycling
        assert all(ts.successors(s) for s in ts.states)

    def test_vme_with_mirror(self):
        spec = vme_read()
        ts = compose_specifications(spec, spec.mirror())
        assert len(ts) == 14

    def test_two_stage_pipeline(self):
        """Connect stage1's output handshake to stage2's input handshake:
        the composition is live and strictly larger than one stage."""
        stage1 = latch_controller().rename_signals(
            {"Rout": "mid_r", "Aout": "mid_a"}, name="stage1")
        stage2 = latch_controller().rename_signals(
            {"Rin": "mid_r", "Ain": "mid_a",
             "Rout": "Rout2", "Aout": "Aout2"}, name="stage2")
        shared = check_connection(stage1, stage2)
        assert shared == ["mid_a", "mid_r"]
        ts = compose_specifications(stage1, stage2)
        assert len(ts) > 8
        assert all(ts.successors(s) for s in ts.states)
        # interface events of both stages appear
        assert "Rin+" in ts.events and "Rout2+" in ts.events

    def test_compose_to_stg_roundtrip(self):
        stage1 = latch_controller().rename_signals(
            {"Rout": "mid_r", "Aout": "mid_a"}, name="stage1")
        stage2 = latch_controller().rename_signals(
            {"Rin": "mid_r", "Ain": "mid_a",
             "Rout": "Rout2", "Aout": "Aout2"}, name="stage2")
        composed = compose_to_stg(stage1, stage2, name="two_stage")
        ts = compose_specifications(stage1, stage2)
        assert build_reachability_graph(composed).bisimilar(ts)
        # the connected channel became internal
        assert "mid_r" in composed.internal
        assert "mid_a" in composed.internal
