"""Cross-engine agreement tests for the SAT subsystem.

Every verdict the SAT engine produces is checked against the explicit
state-graph machinery on the full STG library, and property-based tests
on random nets (reusing the :mod:`test_random_models` generator) assert
the two acceptance invariants: **every BMC witness replays in the token
game** and **a k-induction "Proved" never contradicts explicit
exploration**.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from test_random_models import random_stg

from repro.analysis import check_implementability, find_csc_conflict_sat
from repro.errors import ModelError, UnboundedError
from repro.petri import (
    Marking,
    PetriNet,
    fire_sequence,
    find_deadlocks,
    is_deadlock_free,
    reachable_markings,
)
from repro.sat import (
    BMC,
    Proved,
    Refuted,
    SafeNetEncoding,
    STGEncoding,
    Unknown,
    consistency_violation,
    csc_conflict,
    deadlock_target,
    find_deadlock,
    prove_deadlock_free,
    prove_unreachable,
    reach_marking,
    state_equation_refutes,
)
from repro.stg import (
    ALL_EXAMPLES,
    STG,
    SignalType,
    muller_pipeline,
    parallel_handshakes,
    parse_g,
    sequencer,
    vme_read,
)
from repro.ts import build_reachability_graph, build_state_graph

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.filter_too_much])


def library_models():
    models = {name: ctor() for name, ctor in ALL_EXAMPLES.items()}
    models["muller_pipeline_3"] = muller_pipeline(3)
    models["sequencer_3"] = sequencer(3)
    models["parallel_handshakes_3"] = parallel_handshakes(3)
    return models


LIBRARY = library_models()


def bfs_depth(stg):
    """Longest BFS level of the reachability graph (a complete bound)."""
    ts = build_reachability_graph(stg)
    depth = {ts.initial: 0}
    frontier = [ts.initial]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for state in frontier:
            for _, succ in ts.successors(state):
                if succ not in depth:
                    depth[succ] = level
                    nxt.append(succ)
        frontier = nxt
    return max(depth.values())


def deadlocked_chain():
    net = PetriNet("chain")
    for i in range(4):
        net.add_place("p%d" % i, 1 if i == 0 else 0)
    for i in range(3):
        net.add_transition("t%d" % i)
        net.add_arc("p%d" % i, "t%d" % i)
        net.add_arc("t%d" % i, "p%d" % (i + 1))
    return net


# ---------------------------------------------------------------------- #
# library-wide agreement (the acceptance criterion)
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_deadlock_verdicts_agree_with_explicit(name):
    stg = LIBRARY[name]
    explicit_free = is_deadlock_free(stg.net)
    bound = bfs_depth(stg)
    witness = find_deadlock(stg, bound=bound)
    assert (witness is None) == explicit_free
    verdict = prove_deadlock_free(stg, max_k=max(bound, 4))
    if explicit_free:
        assert not isinstance(verdict, Refuted)
        assert isinstance(verdict, Proved)  # invariants make these provable
    else:
        assert isinstance(verdict, Refuted)
        final = verdict.witness.final_marking
        assert find_deadlocks(stg.net, markings=[final]) == [final]
        assert final in find_deadlocks(stg.net)


@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_csc_verdicts_agree_with_explicit(name):
    stg = LIBRARY[name]
    explicit = check_implementability(stg)
    bound = bfs_depth(stg)
    conflict = csc_conflict(stg, bound=bound)
    assert (conflict is None) == (not explicit.csc_conflicts)
    if conflict is None:
        return
    # both traces replay (csc_conflict replays internally; re-check via
    # the public token game) and reach states with the claimed property
    sg = build_state_graph(stg)
    for trace in (conflict.trace_a, conflict.trace_b):
        assert fire_sequence(stg.net, stg.initial_marking,
                             trace.transitions) == trace.final_marking
    assert sg.code(conflict.marking_a) == sg.code(conflict.marking_b)
    assert conflict.enabled_a != conflict.enabled_b
    assert conflict.enabled_a == sg.enabled_signals(conflict.marking_a,
                                                    noninput_only=True)
    assert conflict.enabled_b == sg.enabled_signals(conflict.marking_b,
                                                    noninput_only=True)


@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_library_stgs_are_sat_consistent(name):
    stg = LIBRARY[name]
    assert consistency_violation(stg, bound=min(bfs_depth(stg), 12)) is None


@pytest.mark.parametrize("semantics", ["interleaving", "parallel"])
def test_reachability_queries_cover_the_state_space(semantics):
    stg = vme_read()
    states = sorted(reachable_markings(stg.net), key=repr)
    bound = bfs_depth(stg)
    for target in states:
        witness = reach_marking(stg, target, bound=bound,
                                semantics=semantics)
        assert witness is not None
        assert witness.final_marking == target
        assert fire_sequence(stg.net, stg.initial_marking,
                             witness.transitions) == target


def test_unreachable_marking_is_refuted_and_proved():
    stg = vme_read()
    # p0 and p3 are never marked together (they belong to one invariant)
    target = Marking({"p0": 1, "p3": 1})
    assert state_equation_refutes(stg.net, target)
    assert reach_marking(stg, target, bound=10) is None
    verdict = prove_unreachable(stg, target, max_k=6)
    assert isinstance(verdict, Proved)


def test_reach_rejects_unknown_target_place():
    """Regression: a typo'd place must raise, not masquerade as an
    'unreachable' verdict via the state-equation screen."""
    stg = vme_read()
    with pytest.raises(ModelError, match="no_such_place"):
        reach_marking(stg, Marking({"no_such_place": 1}), bound=4)
    with pytest.raises(ModelError, match="no_such_place"):
        prove_unreachable(stg, Marking({"no_such_place": 1}), max_k=2)


def test_reach_partial_cover_query():
    stg = vme_read()
    witness = reach_marking(stg, Marking({"p4": 1}), bound=10, partial=True)
    assert witness is not None
    assert witness.final_marking.get("p4") == 1


# ---------------------------------------------------------------------- #
# deadlock witnesses and the shared reporting format
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("semantics", ["interleaving", "parallel"])
def test_deadlocked_net_witness_replays(semantics):
    net = deadlocked_chain()
    witness = find_deadlock(net, bound=5, semantics=semantics)
    assert witness is not None
    final = fire_sequence(net, net.initial_marking, witness.transitions)
    assert final == witness.final_marking
    # SAT and explicit paths report through one interface
    assert find_deadlocks(net, markings=witness.markings) == [final]
    assert find_deadlocks(net) == [final]


def test_find_deadlocks_markings_filter():
    stg = vme_read()
    some = sorted(reachable_markings(stg.net), key=repr)[:5]
    assert find_deadlocks(stg.net, markings=some) == []
    assert find_deadlocks(stg.net, markings=[]) == []


def test_kinduction_refutes_deadlocked_chain():
    verdict = prove_deadlock_free(deadlocked_chain(), max_k=6)
    assert isinstance(verdict, Refuted)
    assert verdict.witness.transitions == ["t0", "t1", "t2"]


def test_kinduction_never_proves_a_reachable_target():
    """Regression: the step case must negate the bad *cube* as one
    clause; negating literal-by-literal over-constrained it and could
    prove reachable markings unreachable."""
    stg = vme_read()
    ts = build_reachability_graph(stg)
    depth = {ts.initial: 0}
    frontier, level = [ts.initial], 0
    while frontier:
        level += 1
        nxt = []
        for state in frontier:
            for _, succ in ts.successors(state):
                if succ not in depth:
                    depth[succ] = level
                    nxt.append(succ)
        frontier = nxt
    deepest = max(depth, key=depth.get)
    # max_k below the target's depth: base can't refute, step must not
    # "prove" — the only sound verdict is Unknown
    verdict = prove_unreachable(stg, deepest, max_k=2)
    assert isinstance(verdict, Unknown)
    verdict = prove_unreachable(stg, deepest, max_k=depth[deepest])
    assert isinstance(verdict, Refuted)
    assert verdict.witness.final_marking == deepest


def test_kinduction_unknown_when_bound_too_small():
    # the chain deadlocks at depth 3; induction capped below that and
    # with invariants disabled cannot decide either way at k=0..0
    from repro.sat import k_induction

    verdict = k_induction(deadlocked_chain(), deadlock_target, max_k=0,
                          invariants=False)
    assert isinstance(verdict, Unknown)


# ---------------------------------------------------------------------- #
# consistency
# ---------------------------------------------------------------------- #

def inconsistent_stg():
    """a+ fires twice per cycle — no initial value can be consistent."""
    text = """
.model double_rise
.inputs a
.outputs b
.graph
a+/1 b+
b+ a+/2
a+/2 b-
b- a+/1
.marking { <b-,a+/1> }
.end
"""
    return parse_g(text)


def test_consistency_violation_found_and_replays():
    stg = inconsistent_stg()
    witness = consistency_violation(stg, bound=8)
    assert witness is not None
    assert fire_sequence(stg.net, stg.initial_marking, witness.transitions)
    # the trace must actually contain a same-direction repeat
    directions = [t for t in witness.transitions if t.startswith("a+")]
    assert len(directions) >= 2


# ---------------------------------------------------------------------- #
# encoding edges and layer integration
# ---------------------------------------------------------------------- #

def test_build_reachability_graph_rejects_sat_engine():
    with pytest.raises(ModelError, match="repro.sat.queries"):
        build_reachability_graph(vme_read(), engine="sat")


def test_find_csc_conflict_sat_wrapper():
    conflict = find_csc_conflict_sat(vme_read(), bound=12)
    assert conflict is not None
    assert "CSC conflict" in str(conflict)
    assert find_csc_conflict_sat(LIBRARY["latch_controller"], bound=10) is None


def test_encoding_rejects_weighted_and_unsafe_nets():
    net = PetriNet("weighted")
    net.add_place("p", 1)
    net.add_transition("t")
    net.add_arc("p", "t", weight=2)
    with pytest.raises(ModelError):
        SafeNetEncoding(net)
    unsafe = PetriNet("unsafe")
    unsafe.add_place("p", 2)
    unsafe.add_transition("t")
    unsafe.add_arc("p", "t")
    with pytest.raises(UnboundedError):
        SafeNetEncoding(unsafe)


def test_encoding_rejects_unsafe_target_marking():
    stg = vme_read()
    bmc = BMC(stg)
    with pytest.raises(UnboundedError):
        bmc.encoding.marking_lits(0, Marking({"p0": 2}))


def test_dimacs_export_of_unrolling_round_trips():
    from repro.sat import CNF

    encoding = STGEncoding(vme_read())
    encoding.ensure_steps(3)
    text = encoding.cnf.to_dimacs()
    back = CNF.from_dimacs(text)
    assert back.num_vars == encoding.cnf.num_vars
    assert back.clauses == encoding.cnf.clauses


def test_parallel_steps_fire_independent_transitions_together():
    stg = parallel_handshakes(4)
    # all four r+ events are mutually independent: with the parallel
    # semantics one step suffices to mark every <r+,a+> place
    target = Marking({"<r%d+,a%d+>" % (i, i): 1 for i in range(4)})
    witness = reach_marking(stg, target, bound=1, semantics="parallel")
    assert witness is not None
    assert len(witness.steps) == 1
    assert sorted(witness.steps[0]) == ["r0+", "r1+", "r2+", "r3+"]
    # the interleaving semantics needs four steps for the same state
    assert reach_marking(stg, target, bound=3) is None
    assert reach_marking(stg, target, bound=4) is not None


# ---------------------------------------------------------------------- #
# property-based cross-engine agreement
# ---------------------------------------------------------------------- #

@given(random_stg(), st.integers(0, 10_000))
@SETTINGS
def test_random_reachable_markings_have_replayable_witnesses(stg, pick):
    states = sorted(reachable_markings(stg.net), key=repr)
    target = states[pick % len(states)]
    bound = bfs_depth(stg)
    witness = reach_marking(stg, target, bound=bound)
    assert witness is not None, (target, bound)
    assert fire_sequence(stg.net, stg.initial_marking,
                         witness.transitions) == target


@given(random_stg())
@SETTINGS
def test_random_proved_never_contradicts_explicit(stg):
    verdict = prove_deadlock_free(stg, max_k=6)
    explicit_free = is_deadlock_free(stg.net)
    if isinstance(verdict, Proved):
        assert explicit_free
    if isinstance(verdict, Refuted):
        assert not explicit_free
        final = verdict.witness.final_marking
        assert final in find_deadlocks(stg.net)


@given(random_stg())
@SETTINGS
def test_random_csc_verdicts_agree(stg):
    explicit = check_implementability(stg)
    assume(explicit.consistent)
    bound = bfs_depth(stg)
    conflict = csc_conflict(stg, bound=bound)
    assert (conflict is None) == (not explicit.csc_conflicts)
