"""Tests for enabling/firing semantics (paper Section 1.2)."""

import pytest

from repro.errors import ModelError, UnboundedError
from repro.petri import (
    Marking,
    PetriNet,
    can_fire_sequence,
    enabled_transitions,
    fire,
    fire_safe,
    fire_sequence,
    is_enabled,
    language_prefixes,
    random_walk,
)


def fork_join():
    """t0 forks into two branches joined by t3."""
    net = PetriNet("forkjoin")
    for p in ["p0", "a1", "a2", "b1", "b2", "p1"]:
        net.add_place(p)
    net.places["p0"].tokens = 1
    for t in ["t0", "ta", "tb", "t3"]:
        net.add_transition(t)
    net.add_arc("p0", "t0")
    net.add_arc("t0", "a1")
    net.add_arc("t0", "b1")
    net.add_arc("a1", "ta")
    net.add_arc("ta", "a2")
    net.add_arc("b1", "tb")
    net.add_arc("tb", "b2")
    net.add_arc("a2", "t3")
    net.add_arc("b2", "t3")
    net.add_arc("t3", "p1")
    return net


class TestEnabling:
    def test_initially_only_fork_enabled(self):
        net = fork_join()
        assert enabled_transitions(net, net.initial_marking) == ["t0"]

    def test_concurrent_branches(self):
        net = fork_join()
        m = fire(net, net.initial_marking, "t0")
        assert enabled_transitions(net, m) == ["ta", "tb"]

    def test_join_requires_both(self):
        net = fork_join()
        m = fire_sequence(net, net.initial_marking, ["t0", "ta"])
        assert not is_enabled(net, m, "t3")
        m = fire(net, m, "tb")
        assert is_enabled(net, m, "t3")

    def test_unknown_transition(self):
        net = fork_join()
        with pytest.raises(ModelError):
            is_enabled(net, net.initial_marking, "zzz")


class TestFiring:
    def test_fire_moves_tokens(self):
        net = fork_join()
        m = fire(net, net.initial_marking, "t0")
        assert m == Marking({"a1": 1, "b1": 1})

    def test_fire_disabled_raises(self):
        net = fork_join()
        with pytest.raises(ModelError):
            fire(net, net.initial_marking, "t3")

    def test_fire_sequence_to_completion(self):
        net = fork_join()
        final = fire_sequence(net, net.initial_marking,
                              ["t0", "tb", "ta", "t3"])
        assert final == Marking({"p1": 1})

    def test_can_fire_sequence(self):
        net = fork_join()
        m = net.initial_marking
        assert can_fire_sequence(net, m, ["t0", "ta", "tb", "t3"])
        assert not can_fire_sequence(net, m, ["t0", "t3"])

    def test_fire_safe_detects_overflow(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("t", "p")  # pure producer
        net.add_place("src", tokens=1)
        net.add_arc("src", "t")
        with pytest.raises(UnboundedError):
            fire_safe(net, net.initial_marking, "t")


class TestWalksAndLanguage:
    def test_random_walk_is_reproducible(self):
        net = fork_join()
        w1 = random_walk(net, 10, seed=7)
        w2 = random_walk(net, 10, seed=7)
        assert w1 == w2

    def test_random_walk_stops_at_deadlock(self):
        net = fork_join()
        walk = random_walk(net, 100, seed=0)
        assert len(walk) == 4  # t0, ta/tb, t3 then dead
        assert walk[-1][1] == Marking({"p1": 1})

    def test_language_prefixes_counts(self):
        net = fork_join()
        seqs = set(language_prefixes(net, 4))
        # (), t0, t0 ta, t0 tb, t0 ta tb, t0 tb ta, + two length-4 joins
        assert () in seqs
        assert ("t0", "ta", "tb", "t3") in seqs
        assert ("t0", "tb", "ta", "t3") in seqs
        assert len(seqs) == 8
