"""Cube algebra."""

from hypothesis import given, strategies as st

from repro.boolmin import (
    cube_contains,
    cube_covers,
    cube_from_str,
    cube_intersection,
    cube_minterms,
    cube_size,
    cube_to_str,
    cubes_intersect,
    int_to_minterm,
    literal_count,
    minterm_to_int,
)

cubes3 = st.tuples(*([st.sampled_from([0, 1, None])] * 3))
minterms3 = st.tuples(*([st.sampled_from([0, 1])] * 3))


class TestBasics:
    def test_str_roundtrip(self):
        assert cube_from_str("10-") == (1, 0, None)
        assert cube_to_str((1, 0, None)) == "10-"

    def test_contains(self):
        c = cube_from_str("1-0")
        assert cube_contains(c, (1, 0, 0))
        assert cube_contains(c, (1, 1, 0))
        assert not cube_contains(c, (0, 1, 0))

    def test_covers(self):
        assert cube_covers(cube_from_str("1--"), cube_from_str("10-"))
        assert not cube_covers(cube_from_str("10-"), cube_from_str("1--"))

    def test_intersection(self):
        a, b = cube_from_str("1--"), cube_from_str("-0-")
        assert cube_intersection(a, b) == (1, 0, None)
        assert cube_intersection(cube_from_str("1--"),
                                 cube_from_str("0--")) is None

    def test_size_and_literals(self):
        c = cube_from_str("1--")
        assert cube_size(c) == 4
        assert literal_count(c) == 1

    def test_minterm_int_conversion(self):
        assert minterm_to_int((1, 0, 1)) == 5
        assert int_to_minterm(5, 3) == (1, 0, 1)


@given(cubes3, minterms3)
def test_contains_consistent_with_minterm_enumeration(cube, minterm):
    enumerated = set(cube_minterms(cube))
    assert cube_contains(cube, minterm) == (minterm in enumerated)


@given(cubes3)
def test_size_matches_enumeration(cube):
    assert cube_size(cube) == len(list(cube_minterms(cube)))


@given(cubes3, cubes3)
def test_intersection_semantics(a, b):
    inter = cube_intersection(a, b)
    points = set(cube_minterms(a)) & set(cube_minterms(b))
    if inter is None:
        assert not points
        assert not cubes_intersect(a, b)
    else:
        assert set(cube_minterms(inter)) == points
        assert cubes_intersect(a, b)


@given(cubes3, cubes3)
def test_covers_semantics(a, b):
    assert cube_covers(a, b) == (set(cube_minterms(b)) <= set(cube_minterms(a)))


@given(st.integers(0, 7))
def test_int_minterm_roundtrip(value):
    assert minterm_to_int(int_to_minterm(value, 3)) == value
