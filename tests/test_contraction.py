"""Dummy-transition contraction."""

import pytest

from repro.errors import ModelError
from repro.petri import reachable_markings
from repro.stg import STG, SignalType, contract_dummy_transitions
from repro.stg.signals import SignalEvent


def stg_with_fork():
    """eps forks into two concurrent output events, joined by eps2."""
    stg = STG("forked", outputs=["x", "y"])
    stg.declare_signal("e", SignalType.DUMMY)
    stg.declare_signal("f", SignalType.DUMMY)
    fork = SignalEvent("e", "~")
    join = SignalEvent("f", "~")
    stg.net.add_transition(str(fork), fork)
    stg.net.add_transition(str(join), join)
    xp = stg.add_event("x+")
    yp = stg.add_event("y+")
    xm = stg.add_event("x-")
    ym = stg.add_event("y-")
    entry = stg.add_place("entry", tokens=1)
    stg.net.add_arc(entry, str(fork))
    for plus, minus in ((xp, xm), (yp, ym)):
        a = stg.add_place()
        b = stg.add_place()
        c = stg.add_place()
        stg.net.add_arc(str(fork), a)
        stg.net.add_arc(a, plus)
        stg.net.add_arc(plus, b)
        stg.net.add_arc(b, minus)
        stg.net.add_arc(minus, c)
        stg.net.add_arc(c, str(join))
    stg.net.add_arc(str(join), entry)
    return stg


class TestContraction:
    def test_removes_dummies(self):
        contracted = contract_dummy_transitions(stg_with_fork())
        labels = [contracted.event_of(t) for t in contracted.net.transitions]
        assert not any(e.is_dummy for e in labels)
        assert not contracted.signals_of_type(SignalType.DUMMY)

    def test_preserves_concurrency(self):
        stg = stg_with_fork()
        contracted = contract_dummy_transitions(stg)
        from repro.ts import build_state_graph

        # the product construction can leave a 2-bounded (but behaviour-
        # preserving) net; the SG is built in k-bounded mode
        sg = build_state_graph(contracted, require_safe=False)
        # x+ and y+ concurrent in the initial state
        enabled = {str(e) for e in sg.enabled_events(sg.initial)}
        assert enabled == {"x+", "y+"}

    def test_preserves_visible_language(self):
        """Secure contraction preserves the projected firing language."""
        from repro.petri import language_prefixes

        stg = stg_with_fork()
        contracted = contract_dummy_transitions(stg)

        def visible(s, explore_len, keep):
            out = set()
            for seq in language_prefixes(s.net, explore_len):
                vis = tuple(t for t in seq if not t.endswith("~"))
                if len(vis) <= keep:
                    out.add(vis)
            return out

        keep = 6
        original = visible(stg, keep + 5, keep)   # slack for dummy moves
        reduced = visible(contracted, keep, keep)
        assert original == reduced

    def test_original_untouched(self):
        stg = stg_with_fork()
        before = stg.net.stats()
        contract_dummy_transitions(stg)
        assert stg.net.stats() == before

    def test_noop_without_dummies(self):
        from repro.stg import vme_read

        stg = vme_read()
        contracted = contract_dummy_transitions(stg)
        assert contracted.net.stats() == stg.net.stats()
        assert (len(reachable_markings(contracted.net))
                == len(reachable_markings(stg.net)))

    def test_insecure_dummy_raises(self):
        """A dummy whose input places have other consumers AND whose
        output places have other producers is not secure."""
        stg = STG("bad", outputs=["x"])
        stg.declare_signal("e", SignalType.DUMMY)
        dummy = SignalEvent("e", "~")
        stg.net.add_transition(str(dummy), dummy)
        xp = stg.add_event("x+")
        xm = stg.add_event("x-")
        p1 = stg.add_place("p1", tokens=1)
        q1 = stg.add_place("q1")
        # p1 also feeds x+ (other consumer); q1 also fed by x+ (other
        # producer): neither security condition holds
        stg.net.add_arc(p1, str(dummy))
        stg.net.add_arc(p1, xp)
        stg.net.add_arc(str(dummy), q1)
        stg.net.add_arc(xp, q1)
        stg.net.add_arc(q1, xm)
        stg.net.add_arc(xm, p1)
        with pytest.raises(ModelError):
            contract_dummy_transitions(stg)

    def test_self_loop_dummy_raises(self):
        stg = STG("loopy", outputs=["x"])
        stg.declare_signal("e", SignalType.DUMMY)
        dummy = SignalEvent("e", "~")
        stg.net.add_transition(str(dummy), dummy)
        p = stg.add_place("p", tokens=1)
        stg.net.add_arc(p, str(dummy))
        stg.net.add_arc(str(dummy), p)
        with pytest.raises(ModelError):
            contract_dummy_transitions(stg)
