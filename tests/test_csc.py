"""CSC resolution: signal insertion and concurrency reduction
(paper Sections 2.1, 3.1)."""

import pytest

from repro.errors import CSCError
from repro.analysis import check_implementability
from repro.petri import is_live, reachable_markings
from repro.stg import concurrent_latch_controller, vme_read, vme_read_csc
from repro.synth import (
    enumerate_insertions,
    resolve_by_concurrency_reduction,
    resolve_csc,
)


class TestInsertion:
    def test_paper_insertion_is_among_candidates(self):
        """The paper inserts csc0+ before LDS+ and csc0- before D-."""
        candidates = enumerate_insertions(vme_read())
        pairs = {(c.rise_before, c.fall_before) for c in candidates}
        assert ("LDS+", "D-") in pairs

    def test_candidates_all_noninput_targets(self):
        for c in enumerate_insertions(vme_read()):
            # inputs must not be delayed (compositional reasons, §2.1)
            for target in c.rise_before.split(",") + c.fall_before.split(","):
                assert not c.stg.is_input_event(target)

    def test_resolve_vme_read(self):
        resolved = resolve_csc(vme_read())
        report = check_implementability(resolved)
        assert report.implementable
        assert resolved.internal == ["csc0"]
        assert len(reachable_markings(resolved.net)) == 16

    def test_resolution_is_idempotent_on_clean_spec(self):
        stg = vme_read_csc()
        resolved = resolve_csc(stg)
        assert resolved is stg  # nothing inserted

    def test_resolve_concurrent_latch_controller(self):
        resolved = resolve_csc(concurrent_latch_controller())
        assert check_implementability(resolved).implementable
        assert resolved.internal  # at least one csc signal

    def test_budget_exhaustion_raises(self):
        with pytest.raises(CSCError):
            resolve_csc(vme_read(), max_signals=0)


class TestConcurrencyReduction:
    def test_vme_read_resolvable_by_reduction(self):
        """The paper's alternative: delay an event to remove the
        conflicting state (e.g. delay DTACK- until LDS- fires)."""
        reduced, (first, second) = \
            resolve_by_concurrency_reduction(vme_read())
        report = check_implementability(reduced)
        assert report.implementable
        assert not reduced.internal  # no new signal inserted
        assert len(reachable_markings(reduced.net)) < 14
        assert is_live(reduced.net)
        # the delayed event must be non-input
        assert not reduced.is_input_event(second)

    def test_clean_spec_returns_unchanged(self):
        stg = vme_read_csc()
        same, pair = resolve_by_concurrency_reduction(stg)
        assert same is stg and pair == ("", "")

    def test_reduced_spec_synthesizes(self):
        from repro.synth import synthesize_complex_gates
        from repro.verify import verify_circuit

        reduced, _ = resolve_by_concurrency_reduction(vme_read())
        netlist = synthesize_complex_gates(reduced)
        # verify against the reduced spec (the contract the env now obeys)
        assert verify_circuit(netlist, reduced).ok
