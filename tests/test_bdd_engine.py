"""The ``engine="bdd"`` backend of the unified engine framework.

Covers the three contracts of the symbolic engine:

* **graph building** — ``build_reachability_graph(engine="bdd")`` and
  ``build_state_graph(engine="bdd")`` are bit-identical to the naive and
  compiled engines (same states, same arcs, same insertion order);
* **domain errors** — unsafe nets, weighted arcs, ``require_safe=False``
  and blown state budgets fail with the same exception types as the
  explicit engines;
* **queries** — ``reachable_count`` / ``find_deadlock`` /
  :class:`~repro.bdd.queries.SymbolicCSC` agree with the explicit
  answers while never materialising the state space.
"""

import pytest

from repro.analysis import check_implementability, find_csc_conflict_bdd
from repro.bdd import (
    SymbolicCSC,
    SymbolicReachability,
    find_deadlock,
    has_csc_conflict,
    has_deadlock,
    reachable_count,
)
from repro.errors import ModelError, StateExplosionError, UnboundedError
from repro.petri import PetriNet, find_deadlocks, reachable_markings
from repro.stg import (
    latch_controller,
    muller_pipeline,
    parallel_handshakes,
    sequencer,
    vme_read,
    vme_read_csc,
    vme_read_write,
)
from repro.ts import (
    ENGINES,
    build_reachability_graph,
    build_state_graph,
    choose_engine,
)

LIBRARY = {
    "vme_read": vme_read,
    "vme_read_csc": vme_read_csc,
    "vme_read_write": vme_read_write,
    "latch": latch_controller,
    "ph2": lambda: parallel_handshakes(2),
    "ph3": lambda: parallel_handshakes(3),
    "seq": lambda: sequencer(3),
    "muller4": lambda: muller_pipeline(4),
}


def unsafe_net() -> PetriNet:
    """p and q marked; firing t (p -> q) puts a second token on q."""
    net = PetriNet("unsafe")
    net.add_place("p", tokens=1)
    net.add_place("q", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    return net


class TestGraphEngine:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_bit_identical_to_naive(self, name):
        stg = LIBRARY[name]()
        reference = build_reachability_graph(stg, engine="naive")
        ts = build_reachability_graph(stg, engine="bdd")
        assert ts.initial == reference.initial
        assert ts.states == reference.states
        assert list(ts.arcs()) == list(reference.arcs())

    @pytest.mark.parametrize("name", ["vme_read", "muller4"])
    def test_state_graph_identical(self, name):
        stg = LIBRARY[name]()
        reference = build_state_graph(stg, engine="compiled")
        sg = build_state_graph(stg, engine="bdd")
        assert sg.codes == reference.codes
        assert sg.initial_values == reference.initial_values

    def test_custom_initial_marking(self):
        stg = vme_read()
        reference = build_reachability_graph(stg, engine="naive")
        # restart the exploration from the third discovered marking
        other = reference.states[2]
        for engine in ("naive", "bdd"):
            ts = build_reachability_graph(stg, engine=engine, initial=other)
            assert ts.initial == other
        naive = build_reachability_graph(stg, engine="naive", initial=other)
        bdd = build_reachability_graph(stg, engine="bdd", initial=other)
        assert naive.states == bdd.states
        assert list(naive.arcs()) == list(bdd.arcs())

    def test_state_budget_checked_before_enumeration(self):
        with pytest.raises(StateExplosionError) as err:
            build_reachability_graph(muller_pipeline(6), engine="bdd",
                                     max_states=50)
        assert "symbolic count" in str(err.value)

    def test_unsafe_net_raises_unbounded(self):
        net = unsafe_net()
        with pytest.raises(UnboundedError):
            build_reachability_graph(net, engine="naive")
        with pytest.raises(UnboundedError) as err:
            build_reachability_graph(net, engine="bdd")
        assert "1-safeness" in str(err.value)

    def test_require_safe_false_rejected(self):
        with pytest.raises(ModelError):
            build_reachability_graph(vme_read(), engine="bdd",
                                     require_safe=False)

    def test_weighted_net_outside_domain(self):
        net = PetriNet("weighted")
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        with pytest.raises(ModelError):
            build_reachability_graph(net, engine="bdd")
        # auto falls back to an engine that covers the model
        assert len(build_reachability_graph(net, require_safe=False)) == 1

    def test_unknown_engine_lists_all(self):
        with pytest.raises(ModelError) as err:
            build_reachability_graph(vme_read(), engine="magic")
        for engine in ENGINES:
            assert engine in str(err.value)


class TestChooseEngine:
    def test_graph_purpose(self):
        stg = vme_read()
        assert choose_engine(stg) == "compiled"
        assert choose_engine(stg, require_safe=False) == "naive"

    def test_query_purpose(self):
        assert choose_engine(vme_read(), purpose="query") == "bdd"

    def test_query_falls_back_to_sat_outside_bdd_domain(self):
        net = PetriNet("weighted")
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        assert choose_engine(net, purpose="query") == "sat"

    def test_unknown_purpose(self):
        with pytest.raises(ModelError):
            choose_engine(vme_read(), purpose="magic")


class TestQueries:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_reachable_count_matches_explicit(self, name):
        stg = LIBRARY[name]()
        assert reachable_count(stg) == len(reachable_markings(stg.net))

    def test_find_deadlock_on_live_net(self):
        assert find_deadlock(vme_read()) is None
        assert not has_deadlock(vme_read())

    def test_find_deadlock_returns_reachable_dead_marking(self):
        net = PetriNet("dead")
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        dead = find_deadlock(net)
        assert dead is not None
        assert dead in reachable_markings(net)
        assert dead in find_deadlocks(net)

    def test_find_deadlocks_bdd_engine_agrees_with_explicit(self):
        net = PetriNet("forks")
        net.add_place("p", tokens=1)
        for branch in ("a", "b"):
            net.add_place(branch)
            net.add_transition("t_" + branch)
            net.add_arc("p", "t_" + branch)
            net.add_arc("t_" + branch, branch)
        assert find_deadlocks(net, engine="bdd") == find_deadlocks(net)
        assert find_deadlocks(vme_read().net, engine="bdd") == []

    def test_find_deadlocks_bdd_rejects_markings_filter(self):
        net = vme_read().net
        with pytest.raises(ModelError):
            find_deadlocks(net, markings=[net.initial_marking], engine="bdd")

    def test_reachable_count_unknown_encoding(self):
        with pytest.raises(ModelError):
            reachable_count(vme_read(), encoding="magic")

    def test_queries_reject_unsafe_nets(self):
        """The capped symbolic semantics would silently misreport a
        non-1-safe net; the query layer must refuse instead."""
        net = unsafe_net()
        with pytest.raises(UnboundedError):
            reachable_count(net)
        with pytest.raises(UnboundedError):
            find_deadlock(net)
        with pytest.raises(UnboundedError):
            find_deadlocks(net, engine="bdd")


class TestSymbolicCSC:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_agrees_with_explicit_check(self, name):
        stg = LIBRARY[name]()
        explicit = bool(check_implementability(stg).csc_conflicts)
        assert has_csc_conflict(stg) == explicit

    def test_conflict_parities_match_explicit_codes(self):
        stg = vme_read()
        sg = build_state_graph(stg)
        initial_code = tuple(sg.initial_values[s] for s in stg.signals)
        explicit_codes = {
            conflict.code
            for conflict in check_implementability(stg).csc_conflicts
        }
        analysis = SymbolicCSC(stg)
        symbolic_codes = {
            tuple(p ^ i for p, i in zip(parity, initial_code))
            for parity in analysis.conflict_parities()
        }
        assert symbolic_codes == explicit_codes
        assert analysis.conflict_count() == len(symbolic_codes)

    def test_wrapper_in_analysis_package(self):
        analysis = find_csc_conflict_bdd(vme_read())
        assert analysis.has_conflict()
        assert not find_csc_conflict_bdd(vme_read_csc()).has_conflict()

    def test_no_conflict_means_empty_characteristic_function(self):
        from repro.bdd import FALSE

        analysis = SymbolicCSC(latch_controller())
        assert analysis.conflict_chf() == FALSE
        assert analysis.conflict_parities() == []
        assert analysis.conflict_count() == 0
