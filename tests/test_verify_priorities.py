"""Relative-timing priorities in the verifier (lazy semantics, §5)."""

import pytest

from repro.stg import parse_g, vme_read
from repro.synth import Gate, Netlist, synthesize_complex_gates
from repro.timing import apply_timing_assumption
from repro.verify import verify_circuit


def race_spec():
    """Two outputs x, y raised concurrently after the request; the reset
    needs both."""
    return parse_g("""
.model race
.inputs r
.outputs x y
.graph
r+ x+ y+
x+ r-
y+ r-
r- x- y-
x- r+
y- r+
.marking { <x-,r+> <y-,r+> }
.end
""")


class TestPriorities:
    def test_priority_prunes_interleaving(self):
        """With priority (x+, y+), y never fires first: the composition
        shrinks."""
        spec = race_spec()
        netlist = synthesize_complex_gates(spec)
        free = verify_circuit(netlist, spec, keep_ts=True)
        constrained = verify_circuit(netlist, spec,
                                     priorities=[("x+", "y+")],
                                     keep_ts=True)
        assert free.ok and constrained.ok
        assert constrained.states < free.states
        # in no state of the constrained TS has y+ fired while x is 0
        events = {e for _, e, _ in constrained.ts.arcs()}
        assert "y+" in events  # still fires, just later

    def test_priority_on_environment_events(self):
        """(LDTACK-, DSr+): same-state pruning only — DSr+ never fires in
        a state where LDTACK- is also firable."""
        spec = vme_read()
        timed = apply_timing_assumption(spec, "LDTACK-", "DSr+")
        netlist = synthesize_complex_gates(timed, name="fig11a")
        report = verify_circuit(netlist, timed, keep_ts=True)
        assert report.ok
        for state in report.ts.states:
            enabled = {e for e, _ in report.ts.successors(state)}
            assert not ({"LDTACK-", "DSr+"} <= enabled)

    def test_priority_does_not_mask_real_hazards(self):
        """A genuinely hazardous circuit stays hazardous under an
        unrelated priority."""
        spec = vme_read()
        bad = Netlist("fig9b", inputs=["DSr", "LDTACK"])
        bad.add(Gate.comb("map0", "csc0 | ~LDTACK"))
        bad.add(Gate.comb("csc0", "DSr & map0"))
        bad.add(Gate.comb("D", "LDTACK & csc0"))
        bad.add(Gate.comb("LDS", "csc0 | D"))
        bad.add(Gate.buffer("DTACK", "D"))
        report = verify_circuit(bad, spec,
                                priorities=[("DTACK-", "LDS-")])
        assert not report.hazard_free
