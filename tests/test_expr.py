"""Boolean expression AST, parser and printers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.boolmin import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    all_assignments,
    equivalent,
    expr_to_cubes,
    from_cubes,
    parse_expr,
)


class TestParser:
    def test_python_style(self):
        e = parse_expr("a & b | ~c")
        assert e.eval({"a": 1, "b": 1, "c": 1}) == 1
        assert e.eval({"a": 0, "b": 1, "c": 1}) == 0
        assert e.eval({"a": 0, "b": 0, "c": 0}) == 1

    def test_eqn_style_implicit_and(self):
        e = parse_expr("DSr (csc0 + LDTACK')")
        assert e.support() == frozenset({"DSr", "csc0", "LDTACK"})
        assert e.eval({"DSr": 1, "csc0": 0, "LDTACK": 0}) == 1
        assert e.eval({"DSr": 1, "csc0": 0, "LDTACK": 1}) == 0

    def test_postfix_not(self):
        assert parse_expr("a'").eval({"a": 0}) == 1

    def test_constants(self):
        assert parse_expr("1").eval({}) == 1
        assert parse_expr("a & 0").eval({"a": 1}) == 0

    def test_precedence_and_binds_tighter(self):
        e = parse_expr("a + b c")
        assert e.eval({"a": 0, "b": 1, "c": 0}) == 0
        assert e.eval({"a": 0, "b": 1, "c": 1}) == 1

    def test_parse_errors(self):
        for bad in ("", "a &", "(a", "a b)", "a @ b"):
            with pytest.raises(ParseError):
                parse_expr(bad)

    def test_roundtrip_both_styles(self):
        e = parse_expr("a & (b | ~c)")
        again_py = parse_expr(e.to_str("python"))
        again_eqn = parse_expr(e.to_str("eqn"))
        assert equivalent(e, again_py)
        assert equivalent(e, again_eqn)


class TestAlgebra:
    def test_smart_constructors_simplify(self):
        a = Var("a")
        assert And.of(a, TRUE) == a
        assert And.of(a, FALSE) == FALSE
        assert Or.of(a, FALSE) == a
        assert Or.of(a, TRUE) == TRUE
        assert And.of() == TRUE
        assert Or.of() == FALSE

    def test_operators(self):
        a, b = Var("a"), Var("b")
        e = (a & b) | ~a
        assert e.eval({"a": 0, "b": 0}) == 1
        assert e.eval({"a": 1, "b": 0}) == 0

    def test_equality_and_hash(self):
        assert parse_expr("a & b") == parse_expr("a & b")
        assert parse_expr("a & b") != parse_expr("b & a")  # syntactic
        assert hash(parse_expr("a")) == hash(Var("a"))


class TestSemantics:
    def test_equivalent_full(self):
        assert equivalent(parse_expr("a & b | a & ~b"), parse_expr("a"))
        assert not equivalent(parse_expr("a | b"), parse_expr("a"))

    def test_equivalent_on_care_set(self):
        # a|b == a when b=1 never occurs with a=0 in the care set
        care = [{"a": 0, "b": 0}, {"a": 1, "b": 0}, {"a": 1, "b": 1}]
        assert equivalent(parse_expr("a | b"), parse_expr("a"), care=care)

    def test_from_cubes(self):
        e = from_cubes([(1, None), (None, 0)], ["x", "y"])
        assert equivalent(e, parse_expr("x | ~y"))

    def test_from_cubes_empty_is_false(self):
        assert from_cubes([], ["x"]) == FALSE

    def test_expr_to_cubes_roundtrip(self):
        e = parse_expr("a & ~b | c")
        cubes = expr_to_cubes(e, ["a", "b", "c"])
        back = from_cubes(cubes, ["a", "b", "c"])
        assert equivalent(e, back)


_names = ["a", "b", "c"]


@st.composite
def random_expr(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return Var(draw(st.sampled_from(_names)))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(random_expr(depth=depth - 1)))
    left = draw(random_expr(depth=depth - 1))
    right = draw(random_expr(depth=depth - 1))
    return And.of(left, right) if kind == "and" else Or.of(left, right)


@given(random_expr())
@settings(max_examples=80, deadline=None)
def test_printer_parser_roundtrip(expr):
    for style in ("python", "eqn"):
        again = parse_expr(expr.to_str(style))
        assert equivalent(expr, again)


@given(random_expr())
@settings(max_examples=50, deadline=None)
def test_sop_extraction_preserves_semantics(expr):
    cubes = expr_to_cubes(expr, _names)
    back = from_cubes(cubes, _names)
    assert equivalent(expr, back)
