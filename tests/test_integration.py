"""End-to-end integration: the complete paper flow on several controllers,
plus cross-module consistency properties."""

import pytest

from repro.analysis import check_implementability
from repro.bdd import SymbolicReachability
from repro.petri import reachable_markings
from repro.regions import synthesize_net
from repro.stg import (
    ALL_EXAMPLES,
    concurrent_latch_controller,
    latch_controller,
    sequencer,
    vme_read,
    vme_read_write,
)
from repro.synth import (
    resolve_csc,
    synthesize_complex_gates,
    synthesize_gc,
)
from repro.tech import decompose, is_fully_mapped
from repro.ts import build_reachability_graph, build_state_graph
from repro.unfold import unfold
from repro.verify import verify_circuit


FLOW_SPECS = [vme_read, latch_controller, concurrent_latch_controller,
              lambda: sequencer(3)]


@pytest.mark.parametrize("maker", FLOW_SPECS)
def test_full_flow_complex_gates(maker):
    """specify -> analyse -> resolve CSC -> synthesize -> verify."""
    spec = maker()
    resolved = resolve_csc(spec)
    assert check_implementability(resolved).implementable
    netlist = synthesize_complex_gates(resolved)
    report = verify_circuit(netlist, spec)
    assert report.ok, (spec.name, report.summary())


@pytest.mark.parametrize("maker", FLOW_SPECS)
def test_full_flow_gc_architecture(maker):
    spec = maker()
    resolved = resolve_csc(spec)
    netlist = synthesize_gc(resolved)
    report = verify_circuit(netlist, spec)
    assert report.ok, (spec.name, report.summary())


def test_full_flow_with_decomposition():
    spec = vme_read()
    resolved = resolve_csc(spec)
    netlist = decompose(resolved)
    assert is_fully_mapped(netlist)
    assert verify_circuit(netlist, spec).ok


@pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
def test_three_state_space_representations_agree(name):
    """Explicit RG, symbolic BDD traversal and the unfolding prefix must
    describe the same reachability set (Section 2.2's three techniques)."""
    net = ALL_EXAMPLES[name]().net
    explicit = reachable_markings(net)
    assert SymbolicReachability(net).count() == len(explicit)
    assert unfold(net).represented_markings() == explicit


@pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
def test_region_synthesis_roundtrip_all_examples(name):
    """Back-annotation (Section 4) regenerates a bisimilar net for every
    bundled specification."""
    ts = build_reachability_graph(ALL_EXAMPLES[name]())
    net, _ = synthesize_net(ts)
    assert ts.bisimilar(build_reachability_graph(net))


def test_verified_composition_matches_spec_state_count():
    """For a complex-gate circuit synthesized from the csc-resolved spec,
    the closed circuit+environment system has exactly the resolved spec's
    state count (binary codes in bijection with states)."""
    resolved = resolve_csc(vme_read())
    netlist = synthesize_complex_gates(resolved)
    report = verify_circuit(netlist, vme_read(), keep_ts=True)
    assert report.states == len(build_state_graph(resolved))


def test_read_write_not_directly_synthesizable_but_resolvable():
    spec = vme_read_write()
    report = check_implementability(spec)
    assert not report.implementable
    resolved = resolve_csc(spec, max_signals=4)
    assert check_implementability(resolved).implementable
