"""Process-algebra translation (paper Section 6) and dummy contraction."""

import pytest

from repro.analysis import check_implementability
from repro.errors import ModelError
from repro.petri import is_free_choice, is_live, is_safe
from repro.procalg import (
    choice,
    compile_process,
    fall,
    first_edges,
    handshake,
    loop,
    par,
    rise,
    seq,
)
from repro.stg import contract_dummy_transitions
from repro.synth import resolve_csc, synthesize_complex_gates
from repro.verify import verify_circuit


class TestTerms:
    def test_sizes(self):
        assert rise("a").size() == 1
        assert seq(rise("a"), fall("a")).size() == 3
        assert handshake("c").size() == 5

    def test_operators(self):
        term = rise("a") >> rise("b")
        assert term.size() == 3
        both = rise("a") | rise("b")
        assert both.size() == 3

    def test_first_edges(self):
        term = choice(handshake("x"), seq(rise("y"), fall("y")))
        firsts = {(e.signal, e.direction) for e in first_edges(term)}
        assert firsts == {("x_r", "+"), ("y", "+")}


class TestCompilation:
    def test_top_level_must_be_loop(self):
        with pytest.raises(ModelError):
            compile_process(handshake("a"))

    def test_choice_requires_input_start(self):
        term = loop(choice(handshake("a", active=True),
                           handshake("b", active=True)))
        # a_r / b_r default to outputs -> rejected
        with pytest.raises(ModelError):
            compile_process(term)

    def test_sequential_handshakes(self):
        term = loop(seq(handshake("a", active=False), handshake("b")))
        stg = compile_process(term, inputs=["a_r", "b_a"])
        assert is_safe(stg.net) and is_live(stg.net)
        report = check_implementability(stg)
        assert report.consistent and report.persistent

    def test_parallel_compiles_with_dummies(self):
        term = loop(seq(handshake("a", active=False),
                        par(handshake("b"), handshake("c"))))
        stg = compile_process(term, inputs=["a_r", "b_a", "c_a"])
        dummies = [t for t in stg.net.transitions if t.startswith("eps")]
        assert len(dummies) == 2  # one fork, one join

    def test_linear_size(self):
        """The Section 6 claim: circuit (here: STG) size is linear in the
        description size."""
        points = []
        for k in (2, 4, 8, 16):
            term = loop(seq(*[handshake("c%d" % i) for i in range(k)]))
            stg = compile_process(term,
                                  inputs=["c%d_a" % i for i in range(k)])
            stats = stg.net.stats()
            points.append((term.size(), stats["places"]
                           + stats["transitions"]))
        ratios = [size / term_size for term_size, size in points]
        assert max(ratios) / min(ratios) < 1.2  # constant factor

    def test_choice_compiles_to_free_choice_net(self):
        term = loop(choice(handshake("x", active=False),
                           handshake("y", active=False)))
        stg = compile_process(term, inputs=["x_r", "y_r"])
        assert is_free_choice(stg.net)
        assert check_implementability(stg).implementable


class TestContraction:
    def test_contraction_removes_all_dummies(self):
        term = loop(seq(handshake("a", active=False),
                        par(handshake("b"), handshake("c"))))
        stg = compile_process(term, inputs=["a_r", "b_a", "c_a"])
        contracted = contract_dummy_transitions(stg)
        assert not [t for t in contracted.net.transitions
                    if t.startswith("eps")]
        assert is_safe(contracted.net) and is_live(contracted.net)

    def test_contraction_preserves_signal_traces(self):
        """The contracted STG is weakly bisimilar to the original: compare
        state graphs modulo dummy moves via reachable signal codes."""
        from repro.ts import build_state_graph

        term = loop(seq(handshake("a", active=False),
                        par(handshake("b"), handshake("c"))))
        stg = compile_process(term, inputs=["a_r", "b_a", "c_a"])
        contracted = contract_dummy_transitions(stg)
        sg1 = build_state_graph(stg)
        sg2 = build_state_graph(contracted)
        shared = sorted(contracted.signals)
        codes1 = {tuple(sg1.value(s, x) for x in shared) for s in sg1.states}
        codes2 = {tuple(sg2.value(s, x) for x in shared) for s in sg2.states}
        assert codes1 == codes2

    def test_full_flow_on_compiled_process(self):
        """process term -> STG -> contraction -> CSC -> circuit -> verify."""
        term = loop(seq(handshake("a", active=False),
                        par(handshake("b"), handshake("c"))))
        stg = compile_process(term, inputs=["a_r", "b_a", "c_a"])
        spec = contract_dummy_transitions(stg)
        resolved = resolve_csc(spec, max_signals=3)
        netlist = synthesize_complex_gates(resolved)
        report = verify_circuit(netlist, spec)
        assert report.ok, report.summary()
