"""McMillan complete prefixes and ordering relations (paper Section 2.2)."""

import pytest

from repro.errors import StateExplosionError
from repro.petri import PetriNet, reachable_markings
from repro.stg import parallel_handshakes, vme_read, vme_read_write
from repro.unfold import unfold


class TestCompleteness:
    @pytest.mark.parametrize("maker", [
        lambda: vme_read().net,
        lambda: vme_read_write().net,
        lambda: parallel_handshakes(2).net,
    ])
    def test_prefix_represents_all_markings(self, maker):
        net = maker()
        prefix = unfold(net)
        assert prefix.represented_markings() == reachable_markings(net)

    def test_prefix_has_cutoffs_for_cyclic_nets(self):
        prefix = unfold(vme_read().net)
        assert prefix.stats()["cutoffs"] >= 1

    def test_event_limit_enforced(self):
        with pytest.raises(StateExplosionError):
            unfold(vme_read().net, max_events=3)


class TestCompactness:
    def test_prefix_much_smaller_than_rg_on_concurrent_net(self):
        """Section 2.2: unfoldings are often more compact than the RG."""
        net = parallel_handshakes(4).net
        prefix = unfold(net)
        rg_size = len(reachable_markings(net))  # 256
        assert prefix.stats()["events"] < rg_size / 4

    def test_prefix_linear_in_channels(self):
        events = [unfold(parallel_handshakes(n).net).stats()["events"]
                  for n in (1, 2, 3)]
        # exactly 4 events per independent channel
        assert events == [4, 8, 12]


class TestOrderingRelations:
    def test_causal_precedence_in_read_cycle(self):
        prefix = unfold(vme_read().net)
        by_transition = {}
        for e in prefix.events:
            by_transition.setdefault(e.transition, []).append(e.eid)
        dsr = by_transition["DSr+"][0]
        lds = by_transition["LDS+"][0]
        d_plus = by_transition["D+"][0]
        assert prefix.precedes(dsr, lds)
        assert prefix.precedes(dsr, d_plus)
        assert not prefix.precedes(d_plus, dsr)

    def test_concurrency_of_reset_events(self):
        """DTACK- and LDS- are concurrent in the READ cycle (Section 1.3)."""
        prefix = unfold(vme_read().net)
        by_transition = {e.transition: e.eid for e in prefix.events}
        dtack_minus = by_transition["DTACK-"]
        lds_minus = by_transition["LDS-"]
        assert prefix.concurrent(dtack_minus, lds_minus)

    def test_conflict_between_read_and_write(self):
        prefix = unfold(vme_read_write().net)
        by_transition = {}
        for e in prefix.events:
            by_transition.setdefault(e.transition, []).append(e.eid)
        dsr = by_transition["DSr+"][0]
        dsw = by_transition["DSw+"][0]
        assert prefix.in_conflict(dsr, dsw)
        assert not prefix.concurrent(dsr, dsw)
        assert not prefix.precedes(dsr, dsw)

    def test_relations_are_mutually_exclusive(self):
        prefix = unfold(vme_read_write().net)
        for e1 in prefix.events[:10]:
            for e2 in prefix.events[:10]:
                if e1.eid == e2.eid:
                    continue
                relations = [
                    prefix.precedes(e1.eid, e2.eid),
                    prefix.precedes(e2.eid, e1.eid),
                    prefix.in_conflict(e1.eid, e2.eid),
                    prefix.concurrent(e1.eid, e2.eid),
                ]
                assert sum(relations) == 1
