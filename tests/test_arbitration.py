"""Arbitration: mutex elements and non-persistent specifications."""

import pytest

from repro.analysis import check_implementability
from repro.stg import mutex_controller
from repro.synth import Gate, GateKind, Netlist
from repro.verify import verify_circuit


@pytest.fixture
def spec():
    return mutex_controller()


@pytest.fixture
def mutex_netlist():
    n = Netlist("mutex_impl", inputs=["r1", "r2"])
    g1, g2 = Gate.mutex_pair("a1", "a2", "r1", "r2")
    n.add(g1)
    n.add(g2)
    return n


class TestMutexGate:
    def test_pair_semantics(self):
        g1, g2 = Gate.mutex_pair("a1", "a2", "r1", "r2")
        env = {"r1": 1, "r2": 1, "a1": 0, "a2": 0}
        # both excited when both request and no grant given
        assert g1.next_value(env) == 1
        assert g2.next_value(env) == 1
        # once a1 granted, a2 stays low
        env["a1"] = 1
        assert g2.next_value(env) == 0

    def test_pair_marked_as_arbiter(self):
        g1, g2 = Gate.mutex_pair("a1", "a2", "r1", "r2")
        assert g1.arbiter and g2.arbiter
        assert g1.kind == GateKind.COMB

    def test_ordinary_gates_not_arbiter(self):
        assert not Gate.comb("z", "a").arbiter


class TestMutexController:
    def test_spec_nonpersistent(self, spec):
        report = check_implementability(spec)
        assert not report.persistent
        assert {v.kind for v in report.persistency_violations} == {"output"}

    def test_grants_mutually_exclusive_in_spec(self, spec):
        from repro.ts import build_state_graph

        sg = build_state_graph(spec)
        for state in sg.states:
            assert not (sg.value(state, "a1") and sg.value(state, "a2"))

    def test_mutex_implementation_ok(self, spec, mutex_netlist):
        report = verify_circuit(mutex_netlist, spec)
        assert report.ok

    def test_grants_exclusive_in_implementation(self, spec, mutex_netlist):
        report = verify_circuit(mutex_netlist, spec, keep_ts=True)
        signals = sorted(set(mutex_netlist.signals()))
        idx = {s: i for i, s in enumerate(signals)}
        for (marking, values) in report.ts.states:
            assert not (values[idx["a1"]] and values[idx["a2"]])

    def test_plain_gates_hazardous(self, spec):
        plain = Netlist("plain", inputs=["r1", "r2"])
        plain.add(Gate.comb("a1", "r1 & ~a2"))
        plain.add(Gate.comb("a2", "r2 & ~a1"))
        report = verify_circuit(plain, spec)
        assert not report.hazard_free
