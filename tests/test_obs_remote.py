"""Cross-process telemetry (``repro.obs.remote``).

The contract under test: worker span trees and heartbeats cross the
process boundary losslessly (every record still ``repro-trace/1``
valid), merging preserves the tree shape and counter totals while
adding slot/attempt attribution, stalled workers are detected by
heartbeat silence well before their hard deadline, and a killed
process never costs more than the unflushed tail of its trace —
which per-line flushing makes empty.
"""

import json
import multiprocessing
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import main
from repro.errors import EngineTimeoutError
from repro.obs import remote
from repro.obs.analyze import build_tree, coverage, lint_records, read_trace
from repro.portfolio import TaskSpec, faults, race, tasks
from repro.stg import write_g
from repro.stg.library import ALL_EXAMPLES, muller_pipeline


@pytest.fixture(autouse=True)
def clean_slate():
    """Each test starts and ends with pristine obs state and no faults."""
    faults.clear()
    obs.reset()
    yield
    faults.clear()
    obs.reset()


def _pipe():
    return multiprocessing.Pipe(duplex=False)


# ---------------------------------------------------------------------- #
# the pipe sink and heartbeat channel
# ---------------------------------------------------------------------- #

class TestPipeSink:
    def test_forwards_records_as_span_messages(self):
        reader, writer = _pipe()
        sink = remote.PipeSink(writer)
        sink.handle({"name": "x", "event": "span"})
        kind, record = reader.recv()
        assert kind == "span"
        assert record["name"] == "x"

    def test_swallows_a_dead_pipe(self):
        reader, writer = _pipe()
        reader.close()
        writer.close()
        remote.PipeSink(writer).handle({"name": "x"})  # must not raise


class TestHeartbeats:
    def test_heartbeat_record_is_trace_schema_valid(self):
        record = remote.heartbeat_record({"slot": "sat", "attempt": 0})
        assert record["event"] == "heartbeat"
        assert record["name"] == remote.HEARTBEAT_NAME
        assert obs.validate_trace_record(record) == []

    def test_heartbeat_gauges_sample_the_progress_provider(self):
        obs.push_progress(lambda: {"conflicts": 41, "decisions": 7})
        try:
            record = remote.heartbeat_record({})
        finally:
            obs.pop_progress()
        assert record["gauges"] == {"conflicts": 41, "decisions": 7}

    def test_thread_beats_immediately_and_repeatedly(self):
        reader, writer = _pipe()
        thread = remote.HeartbeatThread(writer, {"slot": "s"},
                                        interval_s=0.01)
        thread.start()
        try:
            deadline = time.time() + 5.0
            beats = []
            while len(beats) < 3 and time.time() < deadline:
                if reader.poll(0.05):
                    beats.append(reader.recv())
        finally:
            thread.stop()
        assert len(beats) >= 3
        assert all(kind == "heartbeat" for kind, _ in beats)
        assert beats[0][1]["tags"]["pid"] == os.getpid()

    def test_suppression_silences_the_beat(self):
        reader, writer = _pipe()
        remote.suppress_heartbeats()
        thread = remote.HeartbeatThread(writer, {}, interval_s=0.01)
        thread.start()
        try:
            time.sleep(0.15)
            assert not reader.poll(0)  # suppressed: total silence
        finally:
            thread.stop()
            remote.resume_heartbeats()


# ---------------------------------------------------------------------- #
# merging worker records into the parent trace
# ---------------------------------------------------------------------- #

def _worker_record(name, depth, parent, start_s, duration_s, seq,
                   counters=None):
    """A record shaped like a worker-side span (worker coordinates)."""
    return {
        "schema": obs.TRACE_SCHEMA, "event": "span", "name": name,
        "seq": seq, "depth": depth, "parent": parent,
        "start_s": start_s, "duration_s": duration_s,
        "tags": {}, "counters": dict(counters or {}), "gauges": {},
    }


class TestMerge:
    def test_merge_attributes_slot_attempt_and_owner(self):
        obs.enable()
        sink = obs.add_sink(obs.MemorySink())
        with obs.span("portfolio.race"):
            record = _worker_record("worker.task", 0, None, 0.5, 0.1, 0)
            merged = remote.merge_worker_record(record, slot="sat",
                                                attempt=2)
        assert merged["tags"]["slot"] == "sat"
        assert merged["tags"]["attempt"] == 2
        assert merged["parent"] == "portfolio.race"
        assert merged["depth"] == 1
        assert sink.spans("worker.task")  # dispatched to the sinks
        assert lint_records(sink.records) == []

    def test_merge_preserves_existing_attribution(self):
        obs.enable()
        obs.add_sink(obs.MemorySink())
        record = _worker_record("sat.solve", 1, "worker.task", 0.5, 0.1, 3)
        record["tags"]["slot"] = "original"
        merged = remote.merge_worker_record(record, slot="other", attempt=9)
        assert merged["tags"]["slot"] == "original"  # setdefault semantics

    def test_synthesized_task_record_is_valid_and_tagged(self):
        obs.enable()
        sink = obs.add_sink(obs.MemorySink())
        now = time.perf_counter()
        with obs.span("portfolio.race"):
            remote.synthesize_task_record(
                started_at=now - 0.25, stopped_at=now, slot="bdd",
                engine="bdd", method="bdd", attempt=0,
                outcome="cancelled")
        records = sink.spans(remote.TASK_SPAN)
        assert len(records) == 1
        record = records[0]
        assert record["tags"]["outcome"] == "cancelled"
        assert record["tags"]["synthetic"] is True
        assert record["duration_s"] == pytest.approx(0.25, abs=0.01)
        assert obs.validate_trace_record(record) == []


# a worker-side span forest: nested intervals with consistent depths —
# the property-test input for merge invariants
@st.composite
def span_forests(draw):
    records = []
    seq = [0]

    def node(depth, parent, lo, hi):
        start = draw(st.floats(min_value=lo, max_value=hi - 0.01,
                               allow_nan=False, allow_infinity=False))
        end = draw(st.floats(min_value=start + 0.001, max_value=hi,
                             allow_nan=False, allow_infinity=False))
        counters = draw(st.dictionaries(
            st.sampled_from(["conflicts", "states", "nodes"]),
            st.integers(min_value=0, max_value=1000), max_size=2))
        name = "s%d" % seq[0]
        records.append(_worker_record(name, depth, parent, start,
                                      end - start, seq[0], counters))
        seq[0] += 1
        if depth < 3 and end - start > 0.05:
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                node(depth + 1, name, start, end)

    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        node(1, "worker.task", 10.0, 20.0)
    return records


class TestMergeProperties:
    @given(span_forests())
    @settings(max_examples=30, deadline=None)
    def test_merge_preserves_nesting_and_counter_totals(self, records):
        obs.reset()
        obs.enable()
        sink = obs.add_sink(obs.MemorySink())
        try:
            with obs.span("portfolio.race"):
                # the worker root arrives like a real worker's does
                root = _worker_record("worker.task", 0, None, 10.0, 10.0,
                                      999)
                for record in records + [root]:
                    remote.merge_worker_record(dict(record), slot="s",
                                               attempt=0)
        finally:
            obs.remove_sink(sink)
            obs.reset()
        merged = [r for r in sink.records if r["name"] != "portfolio.race"]
        # counter totals survive the merge
        for key in ("conflicts", "states", "nodes"):
            want = sum(r["counters"].get(key, 0) for r in records)
            got = sum(r["counters"].get(key, 0) for r in merged)
            assert got == want
        # depths shift uniformly: relative nesting is intact
        by_name = {r["name"]: r for r in merged}
        for record in records:
            shifted = by_name[record["name"]]
            assert shifted["depth"] == record["depth"] + 1
            assert shifted["parent"] == record["parent"]
        # and the tree over the worker's records reconstructs to one
        # forest rooted at its task span, losing no record
        roots = build_tree(merged)
        assert len(roots) == 1
        assert roots[0].name == "worker.task"
        assert sum(1 for _ in roots[0].walk()) == len(merged)
        assert lint_records(sink.records) == []


# ---------------------------------------------------------------------- #
# the stall detector
# ---------------------------------------------------------------------- #

class TestStallDetector:
    def test_stalled_worker_is_expired_before_its_deadline(self):
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("stall:seconds=60")
        spec = TaskSpec(slot="sat", engine="sat", method="kinduction",
                        fn=tasks.deadlock_kinduction,
                        kwargs={"model": stg, "max_k": 10},
                        deadline_s=60.0, heartbeat_s=0.05, max_attempts=1)
        started = time.perf_counter()
        result = race({"sat": [spec]})
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0  # did not wait out deadline or sleep
        assert result.winner is None
        assert result.stats["stalls"] == 1
        outcome = result.outcomes[-1]
        assert outcome.status == "stall"
        assert isinstance(outcome.error, EngineTimeoutError)
        assert "stalled" in str(outcome.error)

    def test_inline_stall_fault_is_a_timeout(self):
        faults.install("stall:seconds=7")
        with pytest.raises(EngineTimeoutError):
            faults.fire("s", "e", "m", 0, inline=True)

    def test_heartbeat_zero_disables_the_detector(self):
        stg = ALL_EXAMPLES["vme_read"]()
        spec = TaskSpec(slot="sat", engine="sat", method="kinduction",
                        fn=tasks.deadlock_kinduction,
                        kwargs={"model": stg, "max_k": 10},
                        heartbeat_s=0.0)
        result = race({"sat": [spec]})
        assert result.winner is not None
        assert result.stats["stalls"] == 0


# ---------------------------------------------------------------------- #
# trace survival under kills
# ---------------------------------------------------------------------- #

class TestTraceSurvival:
    def test_jsonl_sink_line_buffering_survives_hard_exit(self, tmp_path):
        """A process that dies without flushing loses nothing: every
        record was pushed to the OS as its line was written."""
        path = tmp_path / "killed.jsonl"
        pid = os.fork()
        if pid == 0:  # the doomed child
            sink = obs.JsonlSink(str(path))
            for i in range(50):
                sink.handle({"seq": i})
            os._exit(9)  # no close(), no flush, no atexit
        os.waitpid(pid, 0)
        lines = path.read_text().splitlines()
        assert len(lines) == 50
        assert [json.loads(line)["seq"] for line in lines] == list(range(50))

    def test_killed_workers_leave_a_valid_attributed_trace(self, tmp_path):
        """REPRO_FAULTS kill plan: the merged trace stays schema-valid
        and still attributes the killed workers' lifetimes."""
        from repro.portfolio import check_deadlock

        trace = tmp_path / "faulted.jsonl"
        stg = ALL_EXAMPLES["vme_read"]()
        faults.install("kill:max_attempt=99,engine=sat")
        obs.enable()
        sink = obs.add_sink(obs.JsonlSink(str(trace)))
        try:
            verdict = check_deadlock(stg, deadline_s=10.0)
        finally:
            obs.remove_sink(sink)
            sink.close()
        assert verdict.verdict == "deadlock-free"
        records = read_trace(str(trace))
        assert lint_records(records) == []
        killed = [r for r in records if r["name"] == remote.TASK_SPAN
                  and r["tags"].get("slot") == "sat"]
        assert killed  # the killed slot's time is attributed, not lost
        assert all(r["tags"].get("synthetic") for r in killed)


# ---------------------------------------------------------------------- #
# the acceptance pipeline: Muller trace end to end
# ---------------------------------------------------------------------- #

class TestMullerAcceptance:
    def test_traced_check_attributes_the_race_and_reports(self, tmp_path,
                                                          capsys):
        spec_path = tmp_path / "muller12.g"
        spec_path.write_text(write_g(muller_pipeline(12)))
        trace = tmp_path / "muller.jsonl"
        assert main(["check", str(spec_path), "--portfolio",
                     "--trace", str(trace)]) == 0
        records = read_trace(str(trace))
        assert lint_records(records) == []
        assert any(r["event"] == "heartbeat" for r in records)
        # >= 90% of the race's wall-clock lands in named child spans
        # (worker tasks, synthetic cancellation spans, the validation
        # probe) — the "no attribution black hole" acceptance bar
        assert coverage(records, "portfolio.race") >= 0.9
        capsys.readouterr()
        assert main(["obs", "report", str(trace),
                     "--coverage", "portfolio.race"]) == 0
        out = capsys.readouterr().out
        assert "portfolio.race" in out
        assert "worker.task" in out
        assert "heartbeat" in out
        assert "coverage(portfolio.race):" in out
