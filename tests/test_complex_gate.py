"""Complex-gate synthesis: the Section 3.2 equations."""

import pytest

from repro.errors import CSCError
from repro.boolmin import equivalent, parse_expr
from repro.stg import sequencer, vme_read, vme_read_csc
from repro.synth import equations, synthesize_complex_gates
from repro.ts import build_state_graph


@pytest.fixture
def csc_netlist():
    return synthesize_complex_gates(vme_read_csc())


class TestPaperEquations:
    """Section 3.2 reports:
        D     = LDTACK csc0
        LDS   = D + csc0
        DTACK = D
        csc0  = DSr (csc0 + LDTACK')
    """

    PAPER = {
        "D": "LDTACK & csc0",
        "LDS": "D | csc0",
        "DTACK": "D",
        "csc0": "DSr & (csc0 | ~LDTACK)",
    }

    def test_gate_set(self, csc_netlist):
        assert set(csc_netlist.gates) == set(self.PAPER)

    @pytest.mark.parametrize("signal", sorted(PAPER))
    def test_equation_matches_paper_exactly(self, csc_netlist, signal):
        ours = csc_netlist.gates[signal].expr
        theirs = parse_expr(self.PAPER[signal])
        assert equivalent(ours, theirs), "%s: %s != %s" % (
            signal, ours, theirs)

    def test_equations_helper(self):
        eqs = equations(vme_read_csc())
        assert eqs["DTACK"] == "D"
        assert "csc0" in eqs["LDS"]


class TestErrorsAndEdges:
    def test_unresolved_csc_raises(self):
        with pytest.raises(CSCError):
            synthesize_complex_gates(vme_read())

    def test_netlist_inputs_are_spec_inputs(self, csc_netlist):
        assert csc_netlist.inputs == ["DSr", "LDTACK"]

    def test_accepts_prebuilt_state_graph(self):
        sg = build_state_graph(vme_read_csc())
        netlist = synthesize_complex_gates(sg)
        assert set(netlist.gates) == {"D", "LDS", "DTACK", "csc0"}

    def test_sequencer_equations(self):
        """Each x_i of a pure sequencer depends on its neighbours."""
        netlist = synthesize_complex_gates(sequencer(3))
        assert len(netlist.gates) == 3
        for gate in netlist.gates.values():
            assert gate.expr.support()  # never constant

    def test_implied_values_match_sg(self, csc_netlist):
        """The synthesized function agrees with the next-state value in
        every reachable state — the defining property of Section 3.2."""
        sg = build_state_graph(vme_read_csc())
        for state in sg.states:
            env = {s: sg.value(state, s) for s in sg.signal_order}
            for signal, gate in csc_netlist.gates.items():
                assert gate.expr.eval(env) == sg.next_value(state, signal)
