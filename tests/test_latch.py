"""Latch-based synthesis: gC / RS architectures and monotonous covers
(paper Sections 3.2-3.4, Figure 8)."""

import pytest

from repro.boolmin import cube_contains, minterm_to_int
from repro.stg import RISE, FALL, latch_controller, vme_read_csc
from repro.synth import (
    check_monotonous_cover,
    excitation_covers,
    monotonicity_report,
    synthesize_gc,
    synthesize_sr,
)
from repro.synth.netlist import GateKind
from repro.ts import build_state_graph
from repro.verify import verify_circuit
from repro.stg import vme_read


@pytest.fixture
def csc_sg():
    return build_state_graph(vme_read_csc())


class TestCovers:
    def test_set_cover_covers_er_plus(self, csc_sg):
        for signal in csc_sg.stg.noninput_signals:
            set_cubes, reset_cubes = excitation_covers(csc_sg, signal)
            for state in csc_sg.excitation_region(signal, RISE):
                code = csc_sg.code(state)
                assert any(cube_contains(c, code) for c in set_cubes)
            for state in csc_sg.excitation_region(signal, FALL):
                code = csc_sg.code(state)
                assert any(cube_contains(c, code) for c in reset_cubes)

    def test_set_cover_avoids_off_states(self, csc_sg):
        for signal in csc_sg.stg.noninput_signals:
            set_cubes, reset_cubes = excitation_covers(csc_sg, signal)
            off = (csc_sg.excitation_region(signal, FALL)
                   | csc_sg.quiescent_region(signal, FALL))
            for state in off:
                code = csc_sg.code(state)
                assert not any(cube_contains(c, code) for c in set_cubes)

    def test_set_reset_mutually_exclusive_on_reachable(self, csc_sg):
        for signal in csc_sg.stg.noninput_signals:
            set_cubes, reset_cubes = excitation_covers(csc_sg, signal)
            for state in csc_sg.states:
                code = csc_sg.code(state)
                s = any(cube_contains(c, code) for c in set_cubes)
                r = any(cube_contains(c, code) for c in reset_cubes)
                assert not (s and r)


class TestMonotonicity:
    def test_vme_covers_are_monotonous(self, csc_sg):
        report = monotonicity_report(csc_sg)
        assert all(not v for v in report.values()), report

    def test_violation_detected_for_bad_cover(self, csc_sg):
        """A cover equal to the whole ON set of csc0 minus ER glitches."""
        bad_cover = [tuple([None] * 6)]  # constant 1 intersects OFF states
        violations = check_monotonous_cover(csc_sg, "csc0", bad_cover, RISE)
        assert violations


class TestArchitectures:
    def test_gc_netlist_shape(self, csc_sg):
        netlist = synthesize_gc(csc_sg)
        assert all(g.kind == GateKind.C_ELEMENT
                   for g in netlist.gates.values())
        assert set(netlist.gates) == {"D", "LDS", "DTACK", "csc0"}

    def test_sr_netlist_shape(self, csc_sg):
        netlist = synthesize_sr(csc_sg)
        assert all(g.kind == GateKind.SR_LATCH
                   for g in netlist.gates.values())

    def test_gc_circuit_is_speed_independent(self):
        netlist = synthesize_gc(vme_read_csc())
        report = verify_circuit(netlist, vme_read())
        assert report.ok, report.summary()

    def test_sr_circuit_is_speed_independent(self):
        for dominance in ("reset", "set"):
            netlist = synthesize_sr(vme_read_csc(), dominance=dominance)
            report = verify_circuit(netlist, vme_read())
            assert report.ok, (dominance, report.summary())

    def test_latch_controller_gc(self):
        stg = latch_controller()
        netlist = synthesize_gc(stg)
        report = verify_circuit(netlist, stg)
        assert report.ok, report.summary()
