"""Structural theory: incidence, invariants, net classes, SM components,
dense encoding (paper Section 2.2)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.petri import (
    DenseEncoding,
    Marking,
    PetriNet,
    choice_places,
    incidence_matrix,
    invariant_overapproximation,
    invariant_value,
    is_free_choice,
    is_marked_graph,
    is_state_machine,
    linear_reduce,
    merge_places,
    p_invariants,
    random_walk,
    reachable_markings,
    satisfies_invariants,
    sm_components,
    sm_cover,
    t_invariants,
)
from repro.stg import vme_read, vme_read_write


def ring(n=3, tokens=1):
    net = PetriNet("ring%d" % n)
    for i in range(n):
        net.add_place("p%d" % i, tokens=1 if i < tokens else 0)
        net.add_transition("t%d" % i)
    for i in range(n):
        net.add_arc("p%d" % i, "t%d" % i)
        net.add_arc("t%d" % i, "p%d" % ((i + 1) % n))
    return net


class TestIncidence:
    def test_ring_incidence(self):
        C, places, transitions = incidence_matrix(ring())
        assert C.shape == (3, 3)
        # every column sums to zero (token conservation)
        assert (C.sum(axis=0) == 0).all()

    def test_flow_conservation_on_vme(self):
        C, _, _ = incidence_matrix(vme_read().net)
        assert (np.abs(C) <= 1).all()


class TestInvariants:
    def test_ring_p_invariant(self):
        invs = p_invariants(ring())
        assert invs == [{"p0": 1, "p1": 1, "p2": 1}]

    def test_ring_t_invariant(self):
        invs = t_invariants(ring())
        assert invs == [{"t0": 1, "t1": 1, "t2": 1}]

    def test_vme_read_invariants_conserved_on_walks(self):
        net = vme_read().net
        invs = p_invariants(net)
        assert invs, "marked graph must have P-invariants"
        initial_values = [invariant_value(net, inv) for inv in invs]
        for _, m in random_walk(net, 60, seed=3):
            for inv, expected in zip(invs, initial_values):
                assert invariant_value(net, inv, m) == expected

    def test_invariants_hold_on_all_reachable(self):
        net = vme_read_write().net
        invs = p_invariants(net)
        for m in reachable_markings(net):
            assert satisfies_invariants(net, invs, m)

    def test_overapproximation_contains_reachable(self):
        net = ring()
        approx = invariant_overapproximation(net)
        reachable = reachable_markings(net)
        assert reachable <= approx
        # for a simple ring the approximation is exact
        assert reachable == approx


class TestNetClasses:
    def test_vme_read_is_marked_graph(self):
        assert is_marked_graph(vme_read().net)
        assert is_free_choice(vme_read().net)
        assert not is_state_machine(vme_read().net)

    def test_vme_read_write_has_choice(self):
        net = vme_read_write().net
        assert not is_marked_graph(net)
        cps = choice_places(net)
        assert "p0" in cps  # the read/write selector
        assert "p3" in cps  # shared trigger of LDS+/1 and LDS+/2
        assert set(merge_places(net)) >= {"p1", "p2"}

    def test_ring_is_both_sm_and_mg(self):
        net = ring()
        assert is_marked_graph(net)
        assert is_state_machine(net)


class TestSMComponents:
    def test_ring_is_one_component(self):
        comps = sm_components(ring())
        assert len(comps) == 1
        assert comps[0].places == frozenset({"p0", "p1", "p2"})
        assert comps[0].tokens == 1

    def test_reduced_read_write_two_components(self):
        red = linear_reduce(vme_read_write().net)
        comps = sm_components(red)
        assert len(comps) == 2
        cover = sm_cover(red)
        assert cover is not None
        covered = set().union(*(c.places for c in cover))
        assert covered == set(red.places)

    def test_dense_encoding_roundtrip(self):
        red = linear_reduce(vme_read_write().net)
        enc = DenseEncoding(red)
        for m in reachable_markings(red):
            cube = enc.encode(m)
            assert len(cube) == enc.width
            assert set(cube) <= set("01-")

    def test_dense_encoding_place_cubes_distinct_within_component(self):
        red = linear_reduce(vme_read_write().net)
        enc = DenseEncoding(red)
        for component, bits, codes in enc.groups:
            cubes = {enc.place_cube(p) for p in component.places}
            assert len(cubes) == len(component.places)

    def test_dense_encoding_requires_cover(self):
        net = PetriNet("nocover")
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        with pytest.raises(ModelError):
            DenseEncoding(net)
