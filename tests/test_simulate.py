"""Monte-Carlo timed simulation, cross-validated against the exact
analytical timing engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.stg import pipeline_ring, vme_read
from repro.timing import (
    TimedMarkedGraph,
    cycle_time,
    empirical_max_separation,
    max_separation,
    simulate,
)

VME_DELAYS = {
    "DSr+": (18, 25), "DSr-": (4, 6), "DTACK+": (1, 2), "DTACK-": (1, 2),
    "LDS+": (1, 2), "LDS-": (1, 2), "LDTACK+": (3, 5), "LDTACK-": (3, 5),
    "D+": (1, 2), "D-": (1, 2),
}


def vme_tmg():
    return TimedMarkedGraph(vme_read().net, VME_DELAYS)


def ring_tmg(n=5, tokens=1, delay=(2, 4)):
    net = pipeline_ring(n, tokens).net
    return TimedMarkedGraph(net, {t: delay for t in net.transitions})


class TestSimulation:
    def test_reproducible(self):
        a = simulate(vme_tmg(), cycles=10, seed=42)
        b = simulate(vme_tmg(), cycles=10, seed=42)
        assert a.times == b.times

    def test_all_transitions_fire_every_cycle(self):
        trace = simulate(vme_tmg(), cycles=12, seed=0)
        for t in vme_read().net.transitions:
            assert len(trace.occurrences(t)) == 12

    def test_firing_times_monotone(self):
        trace = simulate(vme_tmg(), cycles=12, seed=1)
        for times in trace.times.values():
            assert all(a < b for a, b in zip(times, times[1:]))

    def test_causality_respected(self):
        """Every consumer fires after its producer (per occurrence)."""
        tmg = vme_tmg()
        trace = simulate(tmg, cycles=10, seed=2)
        for producer, consumer, tokens in tmg.dependencies():
            for k in range(tokens, 10):
                assert (trace.occurrences(consumer)[k]
                        >= trace.occurrences(producer)[k - tokens])

    def test_deterministic_corners(self):
        tmg = vme_tmg()
        hi = simulate(tmg, cycles=15, deterministic="max")
        lo = simulate(tmg, cycles=15, deterministic="min")
        assert hi.cycle_time_estimate("DSr+") == pytest.approx(
            cycle_time(tmg), abs=1e-6)
        assert lo.cycle_time_estimate("DSr+") == pytest.approx(
            cycle_time(tmg, use_max=False), abs=1e-6)

    def test_bad_deterministic_flag(self):
        with pytest.raises(ModelError):
            simulate(vme_tmg(), cycles=3, deterministic="typical")


class TestCrossValidation:
    def test_stochastic_cycle_time_within_analytic_bounds(self):
        tmg = vme_tmg()
        trace = simulate(tmg, cycles=80, seed=7)
        estimate = trace.cycle_time_estimate("DSr+")
        assert cycle_time(tmg, use_max=False) - 1e-6 <= estimate \
            <= cycle_time(tmg, use_max=True) + 1e-6

    def test_empirical_separation_bounded_by_exact(self):
        tmg = vme_tmg()
        exact = max_separation(tmg, "LDTACK-", "DSr+", occurrence_offset=-1)
        empirical = empirical_max_separation(
            tmg, "LDTACK-", "DSr+", occurrence_offset=-1, samples=25,
            cycles=20)
        assert empirical <= exact + 1e-9

    def test_ring_cycle_time(self):
        tmg = ring_tmg(5, 1, delay=(3, 3))
        trace = simulate(tmg, cycles=30, seed=0)
        t = sorted(tmg.net.transitions)[0]
        assert trace.cycle_time_estimate(t) == pytest.approx(15.0, abs=1e-9)


@given(st.integers(3, 7), st.integers(1, 2), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_simulated_separations_never_exceed_exact(n, tokens, seed):
    tokens = min(tokens, n)
    net = pipeline_ring(n, tokens).net
    delays = {t: (1, 3) for t in net.transitions}
    tmg = TimedMarkedGraph(net, delays)
    transitions = sorted(net.transitions)
    a, b = transitions[0], transitions[-1]
    exact = max_separation(tmg, a, b)
    trace = simulate(tmg, cycles=15, seed=seed)
    for value in trace.separation(a, b)[3:]:
        assert value <= exact + 1e-9
