"""STG model construction and the synthesis-oriented transformations."""

import pytest

from repro.errors import ModelError
from repro.petri import reachable_markings
from repro.stg import STG, SignalType, vme_read
from repro.ts import build_state_graph


class TestConstruction:
    def test_declarations(self):
        stg = STG("t", inputs=["a"], outputs=["b"], internal=["c"])
        assert stg.inputs == ["a"]
        assert stg.outputs == ["b"]
        assert stg.internal == ["c"]
        assert stg.noninput_signals == ["b", "c"]

    def test_add_event_requires_declared_signal(self):
        stg = STG("t", inputs=["a"])
        with pytest.raises(ModelError):
            stg.add_event("zz+")

    def test_connect_transitions_creates_implicit_place(self):
        stg = STG("t", inputs=["a"], outputs=["b"])
        ta = stg.add_event("a+")
        tb = stg.add_event("b+")
        place = stg.connect(ta, tb)
        assert place in stg.net.places
        assert stg.net.preset(place) == {ta: 1}
        assert stg.net.postset(place) == {tb: 1}

    def test_transitions_of(self):
        stg = vme_read()
        assert stg.transitions_of("LDS") == ["LDS+", "LDS-"]
        assert stg.transitions_of("LDS", "+") == ["LDS+"]

    def test_is_input_event(self):
        stg = vme_read()
        assert stg.is_input_event("DSr+")
        assert not stg.is_input_event("LDS+")

    def test_copy_independent(self):
        stg = vme_read()
        other = stg.copy()
        other.declare_signal("extra", SignalType.INTERNAL)
        assert "extra" not in stg.signal_types


class TestInsertSignal:
    def test_insertion_grows_state_graph_by_two(self):
        stg = vme_read()
        inserted = stg.insert_signal("csc0", rise_before=["LDS+"],
                                     fall_before=["D-"])
        assert "csc0" in inserted.internal
        assert len(reachable_markings(inserted.net)) == 16
        # original untouched
        assert "csc0" not in stg.signal_types
        assert len(reachable_markings(stg.net)) == 14

    def test_inserted_events_precede_targets(self):
        inserted = vme_read().insert_signal("csc0", rise_before=["LDS+"],
                                            fall_before=["D-"])
        sg = build_state_graph(inserted)
        # csc0+ must be causally before LDS+: in no state are both enabled
        for s in sg.states:
            enabled = {str(e) for e in sg.enabled_events(s)}
            assert not ({"csc0+", "LDS+"} <= enabled)
            assert not ({"csc0-", "D-"} <= enabled)

    def test_insert_before_unknown_event(self):
        with pytest.raises(ModelError):
            vme_read().insert_signal("x", rise_before=["ZZ+"],
                                     fall_before=["D-"])


class TestOrderingArc:
    def test_ordering_removes_interleavings(self):
        stg = vme_read()
        ordered = stg.add_ordering_arc("LDS-", "DTACK-",
                                       initially_marked=False)
        before = len(reachable_markings(stg.net))
        after = len(reachable_markings(ordered.net))
        assert after < before

    def test_marked_ordering_place(self):
        stg = vme_read()
        ordered = stg.add_ordering_arc("LDTACK-", "DSr+",
                                       initially_marked=True)
        m = ordered.initial_marking
        assert m.get("<LDTACK-<DSr+>") == 1


class TestRetargetTrigger:
    def test_retarget_changes_causality(self):
        stg = vme_read()
        moved = stg.retarget_trigger("LDS-", "D-", "DSr-")
        sg = build_state_graph(moved)
        # now LDS- can be enabled while D is still high
        found = False
        for s in sg.states:
            enabled = {str(e) for e in sg.enabled_events(s)}
            if "LDS-" in enabled and sg.value(s, "D") == 1:
                found = True
        assert found

    def test_retarget_missing_trigger(self):
        with pytest.raises(ModelError):
            vme_read().retarget_trigger("LDS-", "DTACK+", "DSr-")
