"""Unit tests for the Petri-net kernel structure."""

import pytest

from repro.errors import ModelError
from repro.petri import Marking, PetriNet


def simple_net():
    net = PetriNet("simple")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    return net


class TestConstruction:
    def test_add_nodes(self):
        net = simple_net()
        assert set(net.places) == {"p", "q"}
        assert set(net.transitions) == {"t"}

    def test_duplicate_place_rejected(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.add_place("p")

    def test_duplicate_across_kinds_rejected(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.add_transition("p")

    def test_negative_tokens_rejected(self):
        net = PetriNet()
        with pytest.raises(ModelError):
            net.add_place("p", tokens=-1)

    def test_arc_must_be_bipartite(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.add_arc("p", "q")
        with pytest.raises(ModelError):
            net.add_arc("t", "t")

    def test_arc_weight_accumulates(self):
        net = simple_net()
        net.add_arc("p", "t")
        assert net.pre("t")["p"] == 2

    def test_zero_weight_rejected(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.add_arc("p", "t", weight=0)

    def test_transition_label_defaults_to_name(self):
        net = simple_net()
        assert net.label_of("t") == "t"

    def test_contains(self):
        net = simple_net()
        assert "p" in net and "t" in net and "x" not in net


class TestQueries:
    def test_preset_postset(self):
        net = simple_net()
        assert net.preset("t") == {"p": 1}
        assert net.postset("t") == {"q": 1}
        assert net.preset("q") == {"t": 1}
        assert net.postset("p") == {"t": 1}

    def test_preset_unknown_node(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.preset("nope")

    def test_arcs_iteration(self):
        net = simple_net()
        assert sorted(net.arcs()) == [("p", "t", 1), ("t", "q", 1)]

    def test_initial_marking(self):
        net = simple_net()
        assert net.initial_marking == Marking({"p": 1})

    def test_set_initial_marking_from_iterable(self):
        net = simple_net()
        net.set_initial_marking(["q"])
        assert net.initial_marking == Marking({"q": 1})
        assert net.places["p"].tokens == 0

    def test_set_initial_marking_unknown_place(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.set_initial_marking(["zzz"])

    def test_stats(self):
        assert simple_net().stats() == {
            "places": 2, "transitions": 1, "arcs": 2}


class TestEditing:
    def test_remove_place_cleans_arcs(self):
        net = simple_net()
        net.remove_place("p")
        assert net.pre("t") == {}
        assert "p" not in net.places

    def test_remove_transition_cleans_arcs(self):
        net = simple_net()
        net.remove_transition("t")
        assert net.postset("p") == {}
        assert net.preset("q") == {}

    def test_remove_unknown_raises(self):
        net = simple_net()
        with pytest.raises(ModelError):
            net.remove_place("zzz")
        with pytest.raises(ModelError):
            net.remove_transition("zzz")

    def test_copy_is_deep(self):
        net = simple_net()
        other = net.copy()
        other.add_place("r")
        other.remove_transition("t")
        assert "r" not in net.places
        assert "t" in net.transitions
        assert other.initial_marking == net.initial_marking

    def test_induced_subnet(self):
        net = simple_net()
        sub = net.induced_subnet(["p"], ["t"])
        assert set(sub.places) == {"p"}
        assert sub.pre("t") == {"p": 1}
        assert sub.post("t") == {}
