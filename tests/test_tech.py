"""Decomposition and technology mapping (paper Section 3.4, Figure 9)."""

import pytest

from repro.boolmin import equivalent, parse_expr
from repro.errors import SynthesisError
from repro.stg import latch_controller, vme_read, vme_read_csc
from repro.synth import Gate, Netlist, synthesize_complex_gates
from repro.tech import (
    TWO_INPUT_LIBRARY,
    algebraic_divisors,
    decompose,
    is_fully_mapped,
    map_netlist,
    match_combinational,
)
from repro.verify import verify_circuit


class TestLibraryMatching:
    def test_and_gate(self):
        cell, inputs = match_combinational(parse_expr("a & b"))
        assert cell.name == "and2"
        assert set(inputs) == {"a", "b"}

    def test_bubbled_and(self):
        cell, inputs = match_combinational(parse_expr("a & ~b"))
        assert cell.name == "and2b1"
        assert inputs == ("a", "b")

    def test_bubbled_or_either_orientation(self):
        cell, inputs = match_combinational(parse_expr("~a | b"))
        assert cell.name == "or2b1"
        assert inputs == ("b", "a")

    def test_inverter_and_buffer(self):
        assert match_combinational(parse_expr("~x"))[0].name == "inv"
        assert match_combinational(parse_expr("x"))[0].name == "buf"

    def test_three_input_unmatched(self):
        assert match_combinational(parse_expr("a & b & c")) is None

    def test_map_netlist_labels(self):
        n = Netlist("m", inputs=["a", "b"])
        n.add(Gate.comb("x", "a & b"))
        n.add(Gate.comb("y", "a & b | x"))  # 3 literals: complex
        mapping = map_netlist(n)
        assert mapping["x"] == "and2"
        assert mapping["y"] == "complex"
        assert not is_fully_mapped(n)

    def test_sequential_mapping(self):
        n = Netlist("s", inputs=["a", "b"])
        n.add(Gate.classic_c_element("c", "a", "b"))
        n.add(Gate.sr_latch("q", "a", "b"))
        mapping = map_netlist(n)
        assert mapping["c"] == "c2"
        assert mapping["q"] == "sr_latch"


class TestDivisors:
    def test_csc0_divisor_is_map0(self):
        """Factoring DSr csc0 + DSr LDTACK' must propose csc0 + LDTACK'."""
        from repro.boolmin import cube_from_str

        variables = ["DSr", "LDTACK", "csc0"]
        cubes = [cube_from_str("1-1"), cube_from_str("10-")]
        divisors = algebraic_divisors(cubes, variables)
        target = parse_expr("csc0 | ~LDTACK")
        assert any(equivalent(d, target) for d in divisors)

    def test_single_multi_literal_cube_proposes_itself(self):
        from repro.boolmin import cube_from_str

        divisors = algebraic_divisors([cube_from_str("11")], ["a", "b"])
        assert any(equivalent(d, parse_expr("a & b")) for d in divisors)

    def test_no_divisors_for_single_literal(self):
        from repro.boolmin import cube_from_str

        assert algebraic_divisors([cube_from_str("1-")], ["a", "b"]) == []


class TestDecomposition:
    def test_vme_decomposition_rediscovers_figure9a(self):
        net = decompose(vme_read_csc())
        assert is_fully_mapped(net)
        # the decomposition signal exists and is read by >= 2 gates
        # (the multiple-acknowledgment condition of Section 3.4)
        readers = [z for z, g in net.gates.items()
                   if "map0" in g.inputs() and z != "map0"]
        assert len(readers) >= 2
        assert equivalent(net.gates["map0"].expr,
                          parse_expr("csc0 | ~LDTACK"))

    def test_decomposed_circuit_is_si(self):
        net = decompose(vme_read_csc())
        report = verify_circuit(net, vme_read())
        assert report.ok, report.summary()

    def test_already_small_netlist_untouched(self):
        stg = latch_controller()
        net = decompose(stg)
        base = synthesize_complex_gates(stg)
        assert set(net.gates) == set(base.gates)

    def test_unsupported_fanin(self):
        with pytest.raises(SynthesisError):
            decompose(vme_read_csc(), max_fanin=3)
