"""Heuristic (ESPRESSO-style) minimization vs the exact engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolmin import cube_to_str, espresso, minimize, verify_cover
from repro.boolmin.espresso import expand_cube, irredundant, reduce_cover


class TestPhases:
    def test_expand_raises_literals(self):
        # f = a (over 2 vars): expanding minterm 11 against OFF {00, 01}
        expanded = expand_cube((1, 1), {0b00, 0b01}, 2)
        assert expanded == (1, None)

    def test_expand_blocked_by_offset(self):
        assert expand_cube((1, 1), {0b10, 0b01, 0b00}, 2) == (1, 1)

    def test_irredundant_drops_subsumed(self):
        cover = [(1, None), (1, 1)]
        onset = {0b10, 0b11}
        assert irredundant(cover, onset, 2) == [(1, None)]

    def test_reduce_is_sequential(self):
        """Two overlapping cubes must not both shrink away from their
        shared minterm."""
        cover = [(None, 1), (1, None)]
        onset = {0b01, 0b11, 0b10}
        reduced = reduce_cover(cover, onset, 2)
        covered = set()
        from repro.boolmin import cube_minterms, minterm_to_int

        for c in reduced:
            covered |= {minterm_to_int(m) for m in cube_minterms(c)}
        assert onset <= covered


class TestKnownFunctions:
    def test_or_function(self):
        cover = espresso([0b01, 0b10, 0b11], [], 2)
        assert sorted(cube_to_str(c) for c in cover) == ["-1", "1-"]

    def test_empty_onset(self):
        assert espresso([], [], 3) == []

    def test_tautology(self):
        cover = espresso(list(range(8)), [], 3)
        assert cover == [(None, None, None)]

    def test_uses_dont_cares(self):
        cover = espresso([3], [2], 2)
        assert cover == [(1, None)]


@st.composite
def random_function(draw):
    n = draw(st.integers(3, 6))
    universe = list(range(1 << n))
    onset = draw(st.sets(st.sampled_from(universe), min_size=1, max_size=14))
    dc = draw(st.sets(st.sampled_from(universe), max_size=5)) - onset
    return sorted(onset), sorted(dc), n


@given(random_function())
@settings(max_examples=150, deadline=None)
def test_espresso_covers_are_correct(data):
    onset, dc, n = data
    cover = espresso(onset, dc, n)
    offset = [m for m in range(1 << n)
              if m not in set(onset) and m not in set(dc)]
    assert verify_cover(cover, onset, offset, n)


@given(random_function())
@settings(max_examples=80, deadline=None)
def test_espresso_never_beats_exact(data):
    """The exact engine is a lower bound on cube count."""
    onset, dc, n = data
    heuristic = espresso(onset, dc, n)
    exact = minimize(onset, dc, n)
    assert len(heuristic) >= len(exact)


@given(random_function())
@settings(max_examples=60, deadline=None)
def test_espresso_usually_matches_exact(data):
    """On small functions the heuristic is within one cube of optimal
    (a loose sanity bound, not a theorem)."""
    onset, dc, n = data
    heuristic = espresso(onset, dc, n)
    exact = minimize(onset, dc, n)
    assert len(heuristic) <= len(exact) + 3
