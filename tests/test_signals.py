"""SignalEvent parsing and algebra."""

import pytest

from repro.errors import ParseError
from repro.stg import FALL, RISE, SignalEvent, SignalType


class TestParsing:
    def test_simple_rise(self):
        e = SignalEvent.parse("DSr+")
        assert e.signal == "DSr" and e.is_rising and e.instance == 0

    def test_simple_fall(self):
        e = SignalEvent.parse("LDTACK-")
        assert e.signal == "LDTACK" and e.is_falling

    def test_instance_suffix(self):
        e = SignalEvent.parse("LDS+/2")
        assert (e.signal, e.direction, e.instance) == ("LDS", "+", 2)

    def test_str_roundtrip(self):
        for text in ("a+", "a-", "a+/3", "sig_1-"):
            assert str(SignalEvent.parse(text)) == text

    def test_instance_zero_suppressed(self):
        assert str(SignalEvent("a", RISE, 0)) == "a+"

    def test_bad_tokens_rejected(self):
        for bad in ("a", "+a", "a++", "", "a+/x"):
            with pytest.raises(ParseError):
                SignalEvent.parse(bad)

    def test_bad_direction_rejected(self):
        with pytest.raises(ParseError):
            SignalEvent("a", "x")


class TestAlgebra:
    def test_opposite(self):
        assert SignalEvent.parse("a+").opposite() == SignalEvent.parse("a-")
        assert SignalEvent.parse("a-").opposite() == SignalEvent.parse("a+")

    def test_opposite_preserves_instance_by_default(self):
        e = SignalEvent.parse("a+/2").opposite()
        assert e.instance == 2

    def test_base_ignores_instance(self):
        assert SignalEvent.parse("a+/5").base() == ("a", "+")

    def test_equality_and_hash(self):
        a = SignalEvent.parse("x+/1")
        b = SignalEvent("x", RISE, 1)
        assert a == b and hash(a) == hash(b)
        assert a != SignalEvent.parse("x+")

    def test_dummy_event(self):
        e = SignalEvent("eps", "~")
        assert e.is_dummy and not e.is_rising and not e.is_falling


class TestSignalType:
    def test_noninput_classification(self):
        assert SignalType.OUTPUT.is_noninput
        assert SignalType.INTERNAL.is_noninput
        assert not SignalType.INPUT.is_noninput
        assert not SignalType.DUMMY.is_noninput
