"""Sanity of the bundled STG library (sizes, classes, implementability)."""

import pytest

from repro.analysis import check_implementability
from repro.petri import is_free_choice, is_live, is_marked_graph, is_safe
from repro.stg import (
    ALL_EXAMPLES,
    concurrent_latch_controller,
    handshake_arbiter_free_choice,
    latch_controller,
    parallel_handshakes,
    pipeline_ring,
    sequencer,
    vme_read,
    vme_read_csc,
    vme_read_write,
)
from repro.ts import build_state_graph


@pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
def test_examples_are_safe_and_live(name):
    stg = ALL_EXAMPLES[name]()
    assert is_safe(stg.net), name
    assert is_live(stg.net), name


class TestVME:
    def test_read_cycle_shape(self):
        stg = vme_read()
        assert is_marked_graph(stg.net)
        assert len(stg.net.places) == 11      # p0..p10 of Figure 3
        assert len(stg.net.transitions) == 10
        assert len(build_state_graph(stg)) == 14  # Figure 4

    def test_read_write_shape(self):
        stg = vme_read_write()
        assert not is_marked_graph(stg.net)
        assert is_free_choice(stg.net) is False  # p3 feeds both LDS+ copies
        assert len(build_state_graph(stg)) == 24

    def test_read_csc_is_implementable(self):
        assert check_implementability(vme_read_csc()).implementable

    def test_read_is_not_implementable(self):
        report = check_implementability(vme_read())
        assert not report.implementable
        assert len(report.csc_conflicts) == 1


class TestControllers:
    def test_latch_controller_is_clean(self):
        report = check_implementability(latch_controller())
        assert report.implementable
        assert report.states == 8

    def test_concurrent_latch_has_csc_conflict(self):
        report = check_implementability(concurrent_latch_controller())
        assert report.consistent
        assert not report.has_csc

    def test_free_choice_controller(self):
        stg = handshake_arbiter_free_choice()
        assert is_free_choice(stg.net)
        report = check_implementability(stg)
        assert report.persistent  # input-input choice is allowed
        assert report.implementable


class TestGenerators:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_parallel_handshakes_state_count(self, n):
        sg = build_state_graph(parallel_handshakes(n))
        assert len(sg) == 4 ** n

    def test_pipeline_ring_sizes(self):
        stg = pipeline_ring(6, tokens=2)
        assert is_marked_graph(stg.net)
        assert is_live(stg.net)

    def test_pipeline_ring_token_validation(self):
        with pytest.raises(ValueError):
            pipeline_ring(4, tokens=0)
        with pytest.raises(ValueError):
            pipeline_ring(4, tokens=5)

    def test_sequencer_cycle_length(self):
        sg = build_state_graph(sequencer(4))
        assert len(sg) == 8
        report = check_implementability(sequencer(3))
        assert report.consistent
