"""Unit tests for the CNF layer and the CDCL solver.

The solver is cross-checked against exhaustive enumeration on hundreds of
random small formulas (SAT/UNSAT verdict *and* model validity), then
exercised on structured instances (pigeonhole, implication chains) and on
the incremental/assumption interface the BMC loop depends on.
"""

import itertools
import random

import pytest

from repro.errors import ModelError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver, luby


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
               for clause in clauses):
            return True
    return False


class TestCNF:
    def test_named_variables_are_stable(self):
        cnf = CNF()
        a = cnf.var("a")
        b = cnf.var("b")
        assert a != b
        assert cnf.var("a") == a
        assert cnf.name_of(a) == "a"

    def test_duplicate_explicit_name_rejected(self):
        cnf = CNF()
        cnf.new_var("x")
        with pytest.raises(ModelError):
            cnf.new_var("x")

    def test_clause_literal_validation(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ModelError):
            cnf.add_clause(2)
        with pytest.raises(ModelError):
            cnf.add_clause(0)

    @pytest.mark.parametrize("gate,table", [
        ("and", lambda a, b: a and b),
        ("or", lambda a, b: a or b),
        ("xor", lambda a, b: a != b),
    ])
    def test_tseitin_gates_match_truth_tables(self, gate, table):
        for va, vb in itertools.product([False, True], repeat=2):
            cnf = CNF()
            a, b = cnf.new_var(), cnf.new_var()
            out = cnf.tseitin((gate, a, b))
            cnf.add_clause(a if va else -a)
            cnf.add_clause(b if vb else -b)
            solver = Solver(cnf)
            assert solver.solve()
            assert solver.model_value(out) == table(va, vb)

    def test_tseitin_nested_expression(self):
        # (a & ~b) | (b ^ c) evaluated on all 8 assignments
        for va, vb, vc in itertools.product([False, True], repeat=3):
            cnf = CNF()
            a, b, c = (cnf.var(n) for n in "abc")
            out = cnf.tseitin(("or", ("and", a, ("not", b)), ("xor", b, c)))
            for var, val in ((a, va), (b, vb), (c, vc)):
                cnf.add_clause(var if val else -var)
            solver = Solver(cnf)
            assert solver.solve()
            assert solver.model_value(out) == ((va and not vb) or (vb != vc))

    @pytest.mark.parametrize("n", [2, 3, 6, 9, 15])
    def test_at_most_one_blocks_pairs(self, n):
        # both the pairwise and the sequential encoding regimes
        cnf = CNF()
        lits = [cnf.new_var() for _ in range(n)]
        cnf.at_most_one(lits)
        solver = Solver(cnf)
        assert solver.solve([lits[0]])
        assert solver.solve([lits[n - 1]])
        assert not solver.solve([lits[0], lits[n - 1]])
        assert not solver.solve([lits[n // 2 - 1], lits[n // 2]])

    def test_exactly_one(self):
        cnf = CNF()
        lits = [cnf.new_var() for _ in range(5)]
        cnf.exactly_one(lits)
        solver = Solver(cnf)
        assert solver.solve()
        assert sum(solver.model_value(lit) for lit in lits) == 1
        assert not solver.solve([-lit for lit in lits])

    def test_dimacs_round_trip(self):
        cnf = CNF()
        a, b, c = cnf.new_var(), cnf.new_var(), cnf.new_var()
        cnf.add_clause(a, -b)
        cnf.add_clause(-a, b, c)
        cnf.add_clause(-c)
        text = cnf.to_dimacs(comments=["round trip"])
        back = CNF.from_dimacs(text)
        assert back.num_vars == cnf.num_vars
        assert back.clauses == cnf.clauses
        assert CNF.from_dimacs(back.to_dimacs()).clauses == cnf.clauses

    def test_dimacs_malformed(self):
        with pytest.raises(ModelError):
            CNF.from_dimacs("p cnf 2\n1 0\n")
        with pytest.raises(ModelError):
            CNF.from_dimacs("p cnf 2 1\n1 2\n")  # missing terminator
        with pytest.raises(ModelError):
            CNF.from_dimacs("p cnf 2 5\n1 0\n")  # clause count mismatch


class TestSolverRandom:
    def test_verdicts_match_brute_force(self):
        rng = random.Random(42)
        for _ in range(300):
            num_vars = rng.randint(2, 8)
            clauses = []
            for _ in range(rng.randint(1, 28)):
                width = rng.randint(1, 3)
                clauses.append(tuple(
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(width)))
            solver = Solver()
            solver.ensure_vars(num_vars)
            ok = True
            for clause in clauses:
                ok = solver.add_clause(clause) and ok
            verdict = solver.solve() if ok else False
            assert verdict == brute_force_sat(num_vars, clauses)
            if verdict:
                for clause in clauses:
                    assert any(solver.model_value(lit) for lit in clause)

    def test_assumption_verdicts_match_brute_force(self):
        rng = random.Random(7)
        for _ in range(100):
            num_vars = rng.randint(3, 7)
            clauses = [tuple(rng.choice([1, -1]) * rng.randint(1, num_vars)
                             for _ in range(rng.randint(1, 3)))
                       for _ in range(rng.randint(2, 18))]
            solver = Solver()
            solver.ensure_vars(num_vars)
            ok = all([solver.add_clause(c) for c in clauses])
            for _ in range(4):  # several incremental calls on one instance
                assumed = [rng.choice([1, -1]) * v
                           for v in rng.sample(range(1, num_vars + 1),
                                               rng.randint(0, num_vars))]
                expected = ok and brute_force_sat(
                    num_vars, clauses + [(lit,) for lit in assumed])
                assert solver.solve(assumed) == expected


class TestSolverStructured:
    def test_pigeonhole_unsat(self):
        pigeons, holes = 5, 4
        cnf = CNF()
        x = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            cnf.add_clause(*[x[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause(-x[p1][h], -x[p2][h])
        solver = Solver(cnf)
        assert not solver.solve()
        assert solver.conflicts > 0

    def test_long_implication_chain_propagates(self):
        n = 500
        solver = Solver()
        solver.ensure_vars(n)
        for v in range(1, n):
            solver.add_clause([-v, v + 1])
        assert solver.solve([1])
        assert solver.model_value(n)
        assert not solver.solve([1, -n])
        assert solver.solve([-n])

    def test_empty_clause_is_unsat_forever(self):
        solver = Solver()
        solver.ensure_vars(1)
        assert not solver.add_clause([])
        assert not solver.solve()
        assert not solver.solve([1])

    def test_tautology_and_duplicates_ignored(self):
        solver = Solver()
        solver.ensure_vars(2)
        assert solver.add_clause([1, -1])
        assert solver.add_clause([2, 2])
        assert solver.solve([-2]) is False  # [2,2] collapsed to unit 2
        assert solver.solve([2])

    def test_clauses_added_between_solves(self):
        solver = Solver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2, 3])
        assert solver.solve()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve()
        assert solver.model_value(3)
        solver.add_clause([-3])
        assert not solver.solve()

    def test_model_unavailable_after_unsat(self):
        solver = Solver()
        solver.ensure_vars(1)
        solver.add_clause([1])
        assert solver.solve()
        assert solver.model_value(1)
        with pytest.raises(ModelError):
            Solver().model_value(1)


def test_luby_sequence():
    values = [luby(i, base=1.0) for i in range(15)]
    assert values == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
