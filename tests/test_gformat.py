"""The .g (astg) parser and writer."""

import pytest

from repro.errors import ParseError
from repro.petri import reachable_markings
from repro.stg import parse_g, write_g, vme_read, vme_read_write
from repro.ts import build_reachability_graph


class TestParsing:
    def test_minimal_handshake(self):
        stg = parse_g("""
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
""")
        assert stg.name == "hs"
        assert stg.inputs == ["r"] and stg.outputs == ["a"]
        assert len(stg.net.transitions) == 4
        assert stg.initial_marking.get("<a-,r+>") == 1

    def test_comments_and_blank_lines_ignored(self):
        stg = parse_g("""
# a comment
.model c
.inputs r
.outputs a

.graph
r+ a+  # trailing comment
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
""")
        assert len(stg.net.transitions) == 4

    def test_explicit_places(self):
        stg = vme_read()
        assert "p0" in stg.net.places
        assert stg.initial_marking.get("p0") == 1

    def test_instances_parsed(self):
        stg = vme_read_write()
        assert "LDS+/1" in stg.net.transitions
        assert "LDS+/2" in stg.net.transitions

    def test_undeclared_signal_defaults_internal(self):
        stg = parse_g("""
.model x
.inputs r
.graph
r+ z+
z+ r-
r- z-
z- r+
.marking { <z-,r+> }
.end
""")
        assert stg.type_of("z").value == "internal"

    def test_bad_marking_place(self):
        with pytest.raises(ParseError):
            parse_g("""
.model bad
.inputs r
.outputs a
.graph
r+ a+
.marking { nowhere }
.end
""")

    def test_malformed_marking_line(self):
        with pytest.raises(ParseError):
            parse_g(".model m\n.graph\n.marking no-braces\n.end\n")


class TestRoundTrip:
    @pytest.mark.parametrize("maker", [vme_read, vme_read_write])
    def test_write_parse_preserves_behaviour(self, maker):
        original = maker()
        text = write_g(original)
        parsed = parse_g(text)
        assert parsed.inputs == original.inputs
        assert parsed.outputs == original.outputs
        ts1 = build_reachability_graph(original)
        ts2 = build_reachability_graph(parsed)
        assert len(ts1) == len(ts2)
        assert ts1.bisimilar(ts2)

    def test_written_text_contains_sections(self):
        text = write_g(vme_read())
        for token in (".model", ".inputs", ".outputs", ".graph",
                      ".marking", ".end"):
            assert token in text

    def test_double_roundtrip_fixpoint(self):
        text1 = write_g(vme_read())
        text2 = write_g(parse_g(text1))
        assert text1 == text2
