"""Speed-independence verification — the Figures 8 and 9 experiments."""

import pytest

from repro.errors import VerificationError
from repro.stg import vme_read, vme_read_csc, latch_controller
from repro.synth import Gate, Netlist, synthesize_complex_gates
from repro.verify import stable_internal_values, verify_circuit


def fig8a():
    """C-element implementation (Figure 8a)."""
    n = Netlist("fig8a", inputs=["DSr", "LDTACK"])
    n.add(Gate.classic_c_element("csc0", "DSr", "LDTACK", invert_b=True))
    n.add(Gate.comb("D", "LDTACK & csc0"))
    n.add(Gate.comb("LDS", "csc0 | D"))
    n.add(Gate.buffer("DTACK", "D"))
    return n


def fig8b():
    """Reset-dominant RS-latch implementation (Figure 8b)."""
    n = Netlist("fig8b", inputs=["DSr", "LDTACK"])
    n.add(Gate.sr_latch("csc0", "DSr & ~LDTACK", "~DSr", dominance="reset"))
    n.add(Gate.comb("D", "LDTACK & csc0"))
    n.add(Gate.comb("LDS", "csc0 | D"))
    n.add(Gate.buffer("DTACK", "D"))
    return n


def fig9a():
    """Two-input decomposition with multiple acknowledgment (Figure 9a)."""
    n = Netlist("fig9a", inputs=["DSr", "LDTACK"])
    n.add(Gate.comb("map0", "csc0 | ~LDTACK"))
    n.add(Gate.comb("csc0", "DSr & map0"))
    n.add(Gate.comb("D", "LDTACK & map0"))
    n.add(Gate.comb("LDS", "csc0 | D"))
    n.add(Gate.buffer("DTACK", "D"))
    return n


def fig9b():
    """Same decomposition but map0 only acknowledged by csc0 (Figure 9b) —
    the paper's hazardous variant."""
    n = Netlist("fig9b", inputs=["DSr", "LDTACK"])
    n.add(Gate.comb("map0", "csc0 | ~LDTACK"))
    n.add(Gate.comb("csc0", "DSr & map0"))
    n.add(Gate.comb("D", "LDTACK & csc0"))
    n.add(Gate.comb("LDS", "csc0 | D"))
    n.add(Gate.buffer("DTACK", "D"))
    return n


class TestPaperCircuits:
    def test_complex_gate_circuit_ok(self):
        netlist = synthesize_complex_gates(vme_read_csc())
        report = verify_circuit(netlist, vme_read())
        assert report.ok
        assert report.states == 16

    @pytest.mark.parametrize("maker", [fig8a, fig8b, fig9a])
    def test_hazard_free_circuits(self, maker):
        report = verify_circuit(maker(), vme_read())
        assert report.ok, report.summary()

    def test_fig9b_is_hazardous(self):
        report = verify_circuit(fig9b(), vme_read())
        assert not report.hazard_free
        hazard_signals = {h.signal for h in report.hazards}
        assert "map0" in hazard_signals
        # the witness the paper predicts: map0's falling excitation is
        # withdrawn by LDTACK- (nobody acknowledges it)
        assert any(h.signal == "map0" and h.by == "LDTACK-"
                   for h in report.hazards)

    def test_fig9b_stop_at_first(self):
        report = verify_circuit(fig9b(), vme_read(), stop_at_first=True)
        assert len(report.hazards) + len(report.failures) == 1


class TestConformance:
    def test_wrong_polarity_circuit_fails(self):
        n = Netlist("bad", inputs=["DSr", "LDTACK"])
        n.add(Gate.comb("LDS", "DSr"))  # fires LDS+ way too early? no: ok
        n.add(Gate.comb("D", "DSr"))    # D+ without waiting for LDTACK+
        n.add(Gate.buffer("DTACK", "D"))
        report = verify_circuit(n, vme_read())
        assert not report.conformant
        assert any(f.event == "D+" for f in report.failures)

    def test_missing_driver_raises(self):
        n = Netlist("partial", inputs=["DSr", "LDTACK"])
        n.add(Gate.comb("LDS", "DSr"))
        with pytest.raises(VerificationError):
            verify_circuit(n, vme_read())

    def test_traces_are_replayable(self):
        report = verify_circuit(fig9b(), vme_read())
        hazard = report.hazards[0]
        assert hazard.trace[0] == "DSr+"  # every trace starts at reset


class TestInternalSettling:
    def test_stable_internal_values(self):
        netlist = fig9a()
        values = {"DSr": 0, "LDTACK": 0, "LDS": 0, "D": 0, "DTACK": 0,
                  "csc0": 0}
        settled = stable_internal_values(netlist, values, ["map0"])
        assert settled == {"map0": 1}  # LDTACK=0 -> map0 = csc0 + LDTACK' = 1

    def test_oscillating_internal_raises(self):
        n = Netlist("osc", inputs=["a"])
        n.add(Gate.comb("ring", "~ring"))
        with pytest.raises(VerificationError):
            stable_internal_values(n, {"a": 0, "ring": 0}, ["ring"])

    def test_explicit_initial_internal(self):
        report = verify_circuit(fig9a(), vme_read(),
                                initial_internal={"map0": 1, "csc0": 0})
        assert report.ok

    def test_missing_explicit_initial_raises(self):
        with pytest.raises(VerificationError):
            verify_circuit(fig9a(), vme_read(), initial_internal={})


class TestComposedTS:
    def test_keep_ts(self):
        report = verify_circuit(fig8a(), vme_read(), keep_ts=True)
        assert report.ts is not None
        assert len(report.ts) == report.states

    def test_latch_controller_roundtrip(self):
        stg = latch_controller()
        netlist = synthesize_complex_gates(stg)
        report = verify_circuit(netlist, stg, keep_ts=True)
        assert report.ok
        # the closed system has exactly the 8 specification states
        assert report.states == 8
