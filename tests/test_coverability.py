"""Karp–Miller coverability analysis."""

import pytest

from repro.petri import (
    OMEGA,
    OmegaMarking,
    PetriNet,
    build_coverability_graph,
    is_bounded,
    is_bounded_km,
    reachable_markings,
)
from repro.stg import ALL_EXAMPLES, vme_read


def producer_net():
    """t produces into sink unboundedly."""
    net = PetriNet("producer")
    net.add_place("p", tokens=1)
    net.add_place("sink")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "p")
    net.add_arc("t", "sink")
    return net


class TestOmegaMarking:
    def test_covers(self):
        big = OmegaMarking({"p": 2.0, "q": 1.0})
        small = OmegaMarking({"p": 1.0})
        assert big.covers(small) and big.strictly_covers(small)
        assert not small.covers(big)

    def test_omega_covers_everything(self):
        omega = OmegaMarking({"p": OMEGA})
        for n in (0.0, 1.0, 100.0):
            assert omega.covers(OmegaMarking({"p": n} if n else {}))

    def test_hash_equality(self):
        assert OmegaMarking({"p": 1.0}) == OmegaMarking({"p": 1.0, "q": 0})

    def test_repr_shows_omega(self):
        assert "ω" in repr(OmegaMarking({"p": OMEGA}))


class TestCoverability:
    def test_unbounded_net_detected(self):
        graph = build_coverability_graph(producer_net())
        assert not graph.is_bounded()
        assert graph.unbounded_places() == ["sink"]
        assert graph.place_bound("p") == 1
        assert not is_bounded_km(producer_net())

    def test_bounded_nets_have_no_omega(self):
        for name in sorted(ALL_EXAMPLES):
            net = ALL_EXAMPLES[name]().net
            assert is_bounded_km(net), name

    def test_agrees_with_explicit_on_bounded(self):
        for maker in (vme_read,):
            net = maker().net
            assert is_bounded_km(net) == is_bounded(net)

    def test_nodes_match_reachable_for_safe_nets(self):
        """Without accelerations the KM graph of a bounded net is exactly
        its reachability graph."""
        net = vme_read().net
        graph = build_coverability_graph(net)
        as_sets = {
            frozenset(p for p, n in node.items() if n)
            for node in graph.nodes
        }
        explicit = {frozenset(m.places()) for m in reachable_markings(net)}
        assert as_sets == explicit

    def test_dead_transition_detection(self):
        net = PetriNet("dead-t")
        net.add_place("p", tokens=1)
        net.add_place("q")  # never marked
        net.add_transition("live")
        net.add_transition("dead")
        net.add_arc("p", "live")
        net.add_arc("live", "p")
        net.add_arc("q", "dead")
        graph = build_coverability_graph(net)
        assert graph.dead_transitions() == ["dead"]
        assert "live" in graph.quasi_live_transitions()

    def test_omega_propagates_downstream(self):
        """Once a place is ω, consumers keep firing and downstream places
        become ω too."""
        net = producer_net()
        net.add_place("sink2")
        net.add_transition("u")
        net.add_arc("sink", "u")
        net.add_arc("u", "sink2")
        graph = build_coverability_graph(net)
        assert set(graph.unbounded_places()) == {"sink", "sink2"}
