"""ROBDD engine: core operations vs truth tables, incl. property tests."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, FALSE, TRUE
from repro.boolmin import Var, parse_expr


def build(bdd: BDD, expr):
    """Compile a BoolExpr into the manager."""
    from repro.boolmin.expr import And, Const, Not, Or, Var as V

    if isinstance(expr, Const):
        return TRUE if expr.value else FALSE
    if isinstance(expr, V):
        return bdd.var(expr.name)
    if isinstance(expr, Not):
        return bdd.apply_not(build(bdd, expr.arg))
    if isinstance(expr, And):
        return bdd.conj([build(bdd, a) for a in expr.args])
    if isinstance(expr, Or):
        return bdd.disj([build(bdd, a) for a in expr.args])
    raise AssertionError(expr)


NAMES = ["a", "b", "c"]


class TestCore:
    def test_var_structure(self):
        bdd = BDD(NAMES)
        u = bdd.var("a")
        assert bdd.low(u) == FALSE and bdd.high(u) == TRUE

    def test_hash_consing(self):
        bdd = BDD(NAMES)
        assert bdd.var("a") == bdd.var("a")
        e1 = build(bdd, parse_expr("a & b | c"))
        e2 = build(bdd, parse_expr("c | b & a"))
        assert e1 == e2  # canonical

    def test_tautology_and_contradiction(self):
        bdd = BDD(NAMES)
        assert build(bdd, parse_expr("a | ~a")) == TRUE
        assert build(bdd, parse_expr("a & ~a")) == FALSE

    def test_eval(self):
        bdd = BDD(NAMES)
        f = build(bdd, parse_expr("a & ~b"))
        assert bdd.eval(f, {"a": 1, "b": 0, "c": 0}) == TRUE
        assert bdd.eval(f, {"a": 1, "b": 1, "c": 0}) == FALSE

    def test_restrict(self):
        bdd = BDD(NAMES)
        f = build(bdd, parse_expr("a & b | ~a & c"))
        assert bdd.restrict(f, "a", 1) == bdd.var("b")
        assert bdd.restrict(f, "a", 0) == bdd.var("c")

    def test_exists(self):
        bdd = BDD(NAMES)
        f = build(bdd, parse_expr("a & b"))
        assert bdd.exists(f, ["a"]) == bdd.var("b")
        assert bdd.exists(f, ["a", "b"]) == TRUE

    def test_rename(self):
        bdd = BDD(["a", "b"])
        f = bdd.var("a")
        assert bdd.rename(f, {"a": "b"}) == bdd.var("b")

    def test_satcount(self):
        bdd = BDD(NAMES)
        assert bdd.satcount(TRUE) == 8
        assert bdd.satcount(FALSE) == 0
        assert bdd.satcount(bdd.var("a")) == 4
        f = build(bdd, parse_expr("a & b | c"))
        expected = sum(
            1 for vals in itertools.product((0, 1), repeat=3)
            if (vals[0] and vals[1]) or vals[2]
        )
        assert bdd.satcount(f) == expected

    def test_sat_all(self):
        bdd = BDD(NAMES)
        f = build(bdd, parse_expr("a & ~c"))
        sols = list(bdd.sat_all(f))
        assert len(sols) == 2
        for env in sols:
            assert env["a"] == 1 and env["c"] == 0

    def test_from_cube(self):
        bdd = BDD(NAMES)
        f = bdd.from_cube({"a": 1, "c": 0})
        assert bdd.satcount(f) == 2


exprs = st.sampled_from([
    "a", "~a", "a & b", "a | b", "a & b | ~c", "(a | b) & (b | c)",
    "a & ~a | c", "~(a & b) | c", "a & b & c", "a | b | c",
])


@given(exprs, exprs)
@settings(max_examples=60, deadline=None)
def test_ops_match_truth_tables(e1, e2):
    bdd = BDD(NAMES)
    x1, x2 = parse_expr(e1), parse_expr(e2)
    f1, f2 = build(bdd, x1), build(bdd, x2)
    for vals in itertools.product((0, 1), repeat=3):
        env = dict(zip(NAMES, vals))
        assert bdd.eval(f1, env) == x1.eval(env)
        assert bdd.eval(bdd.apply_and(f1, f2), env) == (
            x1.eval(env) & x2.eval(env))
        assert bdd.eval(bdd.apply_or(f1, f2), env) == (
            x1.eval(env) | x2.eval(env))
        assert bdd.eval(bdd.apply_xor(f1, f2), env) == (
            x1.eval(env) ^ x2.eval(env))


@given(exprs)
@settings(max_examples=40, deadline=None)
def test_exists_semantics(e):
    bdd = BDD(NAMES)
    x = parse_expr(e)
    f = build(bdd, x)
    g = bdd.exists(f, ["b"])
    for vals in itertools.product((0, 1), repeat=3):
        env = dict(zip(NAMES, vals))
        expected = max(x.eval({**env, "b": 0}), x.eval({**env, "b": 1}))
        assert bdd.eval(g, env) == expected


@given(exprs)
@settings(max_examples=40, deadline=None)
def test_satcount_matches_enumeration(e):
    bdd = BDD(NAMES)
    x = parse_expr(e)
    f = build(bdd, x)
    expected = sum(
        x.eval(dict(zip(NAMES, vals)))
        for vals in itertools.product((0, 1), repeat=3)
    )
    assert bdd.satcount(f) == expected
    assert len(list(bdd.sat_all(f))) == expected


@given(exprs)
@settings(max_examples=40, deadline=None)
def test_pick_returns_satisfying_assignment(e):
    bdd = BDD(NAMES)
    x = parse_expr(e)
    f = build(bdd, x)
    if f == FALSE:
        with pytest.raises(Exception):
            bdd.pick(f)
        return
    env = bdd.pick(f, NAMES)
    assert set(env) == set(NAMES)
    assert bdd.eval(f, env) == TRUE


@given(exprs)
@settings(max_examples=40, deadline=None)
def test_sat_over_matches_projection(e):
    bdd = BDD(NAMES)
    x = parse_expr(e)
    g = bdd.exists(build(bdd, x), ["b"])
    names = ["a", "c"]
    got = {(a["a"], a["c"]) for a in bdd.sat_over(g, names)}
    expected = {
        (va, vc)
        for va, vc in itertools.product((0, 1), repeat=2)
        if max(x.eval({"a": va, "b": 0, "c": vc}),
               x.eval({"a": va, "b": 1, "c": vc}))
    }
    assert got == expected


def test_sat_over_rejects_hidden_dependencies():
    from repro.errors import ModelError

    bdd = BDD(NAMES)
    f = bdd.var("b")
    with pytest.raises(ModelError):
        list(bdd.sat_over(f, ["a", "c"]))
