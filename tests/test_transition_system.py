"""Generic transition-system operations and equivalences."""

import pytest

from repro.errors import ModelError
from repro.ts import TransitionSystem


def cycle_ts(n=3, event="e"):
    ts = TransitionSystem(0)
    for i in range(n):
        ts.add_arc(i, "%s%d" % (event, i), (i + 1) % n)
    return ts


class TestBasics:
    def test_states_and_arcs(self):
        ts = cycle_ts()
        assert len(ts) == 3
        assert ts.arc_count() == 3
        assert ts.events == {"e0", "e1", "e2"}

    def test_successors_predecessors(self):
        ts = cycle_ts()
        assert ts.successors(0) == [("e0", 1)]
        assert ts.predecessors(0) == [("e2", 2)]

    def test_enabled(self):
        ts = TransitionSystem("s")
        ts.add_arc("s", "a", "t")
        ts.add_arc("s", "b", "u")
        assert ts.enabled("s") == ["a", "b"]

    def test_fire_deterministic(self):
        ts = cycle_ts()
        assert ts.fire(0, "e0") == 1
        with pytest.raises(ModelError):
            ts.fire(0, "e1")

    def test_fire_nondeterministic_raises(self):
        ts = TransitionSystem(0)
        ts.add_arc(0, "a", 1)
        ts.add_arc(0, "a", 2)
        assert not ts.is_deterministic()
        with pytest.raises(ModelError):
            ts.fire(0, "a")

    def test_states_with_event(self):
        ts = cycle_ts()
        assert ts.states_with_event("e1") == [1]


class TestTransformations:
    def test_relabel(self):
        ts = cycle_ts()
        upper = ts.relabel(str.upper)
        assert upper.events == {"E0", "E1", "E2"}
        assert len(upper) == len(ts)

    def test_restriction_requires_initial(self):
        ts = cycle_ts()
        with pytest.raises(ModelError):
            ts.restricted_to({1, 2})

    def test_reachable_part_drops_orphans(self):
        ts = cycle_ts()
        ts.add_state("orphan")
        assert len(ts.reachable_part()) == 3


class TestEquivalences:
    def test_bisimilar_to_itself(self):
        ts = cycle_ts()
        assert ts.bisimilar(cycle_ts())

    def test_unfolded_cycle_is_bisimilar(self):
        """A 6-cycle with repeating labels is bisimilar to the 3-cycle."""
        small = cycle_ts(3)
        big = TransitionSystem(0)
        for i in range(6):
            big.add_arc(i, "e%d" % (i % 3), (i + 1) % 6)
        assert small.bisimilar(big)

    def test_different_labels_not_bisimilar(self):
        a = cycle_ts(3, "e")
        b = cycle_ts(3, "f")
        assert not a.bisimilar(b)

    def test_choice_vs_sequence_not_bisimilar(self):
        choice = TransitionSystem("s")
        choice.add_arc("s", "a", "x")
        choice.add_arc("s", "b", "y")
        seq = TransitionSystem("s")
        seq.add_arc("s", "a", "x")
        seq.add_arc("x", "b", "y")
        assert not choice.bisimilar(seq)

    def test_trace_equivalence(self):
        assert cycle_ts().trace_equivalent(cycle_ts())
        a = cycle_ts(3, "e")
        b = cycle_ts(3, "f")
        assert not a.trace_equivalent(b)

    def test_trace_equivalence_needs_determinism(self):
        ts = TransitionSystem(0)
        ts.add_arc(0, "a", 1)
        ts.add_arc(0, "a", 2)
        with pytest.raises(ModelError):
            ts.trace_equivalent(cycle_ts())
