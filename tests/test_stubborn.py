"""Stubborn-set partial-order reduction (paper Section 2.2)."""

import pytest

from repro.analysis import (
    deadlocks_reduced,
    reduced_reachability,
    reduction_statistics,
    stubborn_set,
)
from repro.petri import PetriNet, find_deadlocks
from repro.stg import parallel_handshakes, vme_read


def independent_deadlock_net(n=3):
    """n independent one-shot transitions; single deadlock at the end."""
    net = PetriNet("indep%d" % n)
    for i in range(n):
        net.add_place("p%d" % i, tokens=1)
        net.add_place("q%d" % i)
        net.add_transition("t%d" % i)
        net.add_arc("p%d" % i, "t%d" % i)
        net.add_arc("t%d" % i, "q%d" % i)
    return net


class TestStubbornSets:
    def test_empty_at_deadlock(self):
        net = independent_deadlock_net(1)
        from repro.petri import fire

        dead = fire(net, net.initial_marking, "t0")
        assert stubborn_set(net, dead) == set()

    def test_independent_transitions_give_singleton(self):
        net = independent_deadlock_net(3)
        s = stubborn_set(net, net.initial_marking)
        assert len([t for t in s]) == 1

    def test_conflicting_transitions_grouped(self):
        net = PetriNet("conflict")
        net.add_place("p", tokens=1)
        net.add_place("a")
        net.add_place("b")
        net.add_transition("ta")
        net.add_transition("tb")
        net.add_arc("p", "ta")
        net.add_arc("p", "tb")
        net.add_arc("ta", "a")
        net.add_arc("tb", "b")
        s = stubborn_set(net, net.initial_marking)
        assert s == {"ta", "tb"}


class TestReducedExploration:
    def test_deadlocks_preserved_independent(self):
        net = independent_deadlock_net(4)
        assert deadlocks_reduced(net) == find_deadlocks(net)

    def test_reduction_is_exponential_on_independent_net(self):
        net = independent_deadlock_net(5)
        stats = reduction_statistics(net)
        assert stats["full_states"] == 2 ** 5
        assert stats["reduced_states"] == 5 + 1  # a single interleaving

    def test_deadlock_free_net_agreement(self):
        net = vme_read().net
        assert deadlocks_reduced(net) == []

    def test_parallel_handshakes_reduced(self):
        net = parallel_handshakes(3).net
        stats = reduction_statistics(net)
        assert stats["full_states"] == 4 ** 3
        assert stats["reduced_states"] < stats["full_states"]
        assert deadlocks_reduced(net) == []

    def test_reduced_ts_is_subgraph(self):
        net = parallel_handshakes(2).net
        from repro.ts import build_reachability_graph

        full = build_reachability_graph(net)
        reduced = reduced_reachability(net)
        full_states = set(full.states)
        assert all(s in full_states for s in reduced.states)
