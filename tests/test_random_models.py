"""Cross-module property-based tests on randomly generated STGs.

The generator builds random *consistent* specifications: a ring of
signal events (each signal rising before falling) with random concurrency
chords, filtered to safe + live nets.  On every sample we check that the
independent implementations of the paper's machinery agree:

* explicit, symbolic and unfolding state spaces coincide;
* the state-graph code assignment is internally consistent;
* region-based resynthesis is behaviour-preserving;
* synthesis + verification closes the loop on implementable specs.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.analysis import check_implementability
from repro.bdd import SymbolicReachability
from repro.errors import CSCError, ReproError
from repro.petri import is_live, is_safe, reachable_markings
from repro.regions import synthesize_net
from repro.stg import STG, SignalType
from repro.synth import resolve_csc, synthesize_complex_gates
from repro.ts import build_reachability_graph, build_state_graph
from repro.unfold import unfold
from repro.verify import verify_circuit

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.filter_too_much])


@st.composite
def random_stg(draw):
    """A random consistent, safe, live STG with 2-4 signals."""
    n_signals = draw(st.integers(2, 4))
    signals = ["s%d" % i for i in range(n_signals)]
    # base ring: a permutation of events where each signal rises before
    # it falls (choose interleaving by shuffling rise/fall slots)
    events = []
    order = draw(st.permutations(signals))
    for s in order:
        events.append(s + "+")
    fall_order = draw(st.permutations(signals))
    for s in fall_order:
        events.append(s + "-")

    stg = STG("random")
    for i, s in enumerate(signals):
        kind = SignalType.INPUT if draw(st.booleans()) and i == 0 \
            else SignalType.OUTPUT
        stg.declare_signal(s, kind)
    names = [stg.add_event(e) for e in events]
    m = len(names)
    for i in range(m):
        place = stg.connect(names[i], names[(i + 1) % m])
        if i == m - 1:
            stg.net.places[place].tokens = 1

    # random chords adding concurrency constraints
    n_chords = draw(st.integers(0, 2))
    for _ in range(n_chords):
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        if a == b:
            continue
        marked = draw(st.booleans())
        place = stg.connect(a, b)
        stg.net.places[place].tokens = 1 if marked else 0

    assume(is_safe(stg.net, max_states=50_000))
    assume(is_live(stg.net, max_states=50_000))
    return stg


@given(random_stg())
@SETTINGS
def test_state_space_representations_agree(stg):
    explicit = reachable_markings(stg.net)
    assert SymbolicReachability(stg.net).count() == len(explicit)
    assert unfold(stg.net).represented_markings() == explicit


@given(random_stg())
@SETTINGS
def test_state_graph_codes_internally_consistent(stg):
    sg = build_state_graph(stg)
    for state in sg.states:
        for tname, succ in sg.ts.successors(state):
            event = stg.event_of(tname)
            before = sg.value(state, event.signal)
            after = sg.value(succ, event.signal)
            if event.is_rising:
                assert (before, after) == (0, 1)
            else:
                assert (before, after) == (1, 0)
            for other in sg.signal_order:
                if other != event.signal:
                    assert sg.value(state, other) == sg.value(succ, other)


@given(random_stg())
@SETTINGS
def test_region_resynthesis_preserves_behaviour(stg):
    ts = build_reachability_graph(stg)
    try:
        net, _ = synthesize_net(ts)
    except ReproError:
        assume(False)  # excitation closure may genuinely fail
        return
    assert ts.bisimilar(build_reachability_graph(net))


@given(random_stg())
@SETTINGS
def test_synthesis_verification_closes_the_loop(stg):
    report = check_implementability(stg)
    assume(report.consistent and report.persistent)
    try:
        resolved = resolve_csc(stg, max_signals=2)
    except CSCError:
        assume(False)
        return
    netlist = synthesize_complex_gates(resolved)
    verdict = verify_circuit(netlist, stg)
    assert verdict.ok, verdict.summary()


@given(random_stg())
@SETTINGS
def test_next_state_functions_match_state_graph(stg):
    report = check_implementability(stg)
    assume(report.implementable)
    sg = build_state_graph(stg)
    netlist = synthesize_complex_gates(sg)
    for state in sg.states:
        env = {s: sg.value(state, s) for s in sg.signal_order}
        for signal, gate in netlist.gates.items():
            assert gate.next_value(env) == sg.next_value(state, signal)


@given(random_stg())
@SETTINGS
def test_linear_reduction_preserves_safety_liveness(stg):
    from repro.petri import linear_reduce

    reduced = linear_reduce(stg.net)
    assert is_safe(reduced, max_states=50_000)
    assert is_live(reduced, max_states=50_000)


@given(random_stg())
@SETTINGS
def test_mirror_composition_closes_the_system(stg):
    """spec ⊗ mirror(spec): every event synchronises, so the product has
    exactly the spec's states and no deadlock."""
    from repro.verify import compose_specifications

    ts = compose_specifications(stg, stg.mirror())
    assert len(ts) == len(build_state_graph(stg))
    assert all(ts.successors(s) for s in ts.states)


@given(random_stg())
@SETTINGS
def test_coverability_agrees_on_boundedness(stg):
    from repro.petri import is_bounded_km

    assert is_bounded_km(stg.net)
