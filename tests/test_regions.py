"""Region theory and PN synthesis (paper Section 4, Figure 10)."""

import pytest

from repro.errors import SynthesisError
from repro.regions import (
    ENTER,
    EXIT,
    NOCROSS,
    all_minimal_preregions,
    event_gradient,
    excitation_closure_holds,
    excitation_region,
    extract_stg,
    is_region,
    minimal_regions_containing,
    synthesize_net,
)
from repro.stg import SignalType, latch_controller, vme_read, vme_read_csc
from repro.ts import TransitionSystem, build_reachability_graph


def diamond_ts():
    """a and b concurrent: the classic 4-state diamond."""
    ts = TransitionSystem("00")
    ts.add_arc("00", "a", "10")
    ts.add_arc("00", "b", "01")
    ts.add_arc("10", "b", "11")
    ts.add_arc("01", "a", "11")
    ts.add_arc("11", "r", "00")
    return ts


class TestRegionPredicate:
    def test_gradients_on_diamond(self):
        ts = diamond_ts()
        region = frozenset({"00", "01"})  # "a not yet fired"
        assert event_gradient(ts, region, "a") == EXIT
        assert event_gradient(ts, region, "r") == ENTER
        assert event_gradient(ts, region, "b") == NOCROSS

    def test_non_region_detected(self):
        ts = diamond_ts()
        # {00, 11}: 'a' exits from 00 but enters 11 via 01 -> not uniform
        assert not is_region(ts, {"00", "11"})
        assert is_region(ts, {"00", "01"})

    def test_trivial_sets(self):
        ts = diamond_ts()
        assert is_region(ts, set(ts.states))
        assert is_region(ts, set())

    def test_excitation_region(self):
        ts = diamond_ts()
        assert excitation_region(ts, "a") == frozenset({"00", "01"})
        assert excitation_region(ts, "r") == frozenset({"11"})


class TestMinimalRegions:
    def test_diamond_minimal_regions(self):
        ts = diamond_ts()
        regions = minimal_regions_containing(ts, {"00", "01"})
        assert frozenset({"00", "01"}) in regions

    def test_preregions_exist_for_every_event(self):
        ts = build_reachability_graph(vme_read())
        pre = all_minimal_preregions(ts)
        assert all(pre[e] for e in ts.events)

    def test_excitation_closure_on_vme(self):
        ts = build_reachability_graph(vme_read())
        holds, _ = excitation_closure_holds(ts)
        assert holds


class TestSynthesis:
    @pytest.mark.parametrize("maker", [vme_read, vme_read_csc,
                                       latch_controller])
    def test_roundtrip_bisimilar(self, maker):
        stg = maker()
        ts = build_reachability_graph(stg)
        net, place_map = synthesize_net(ts)
        ts2 = build_reachability_graph(net)
        assert ts.bisimilar(ts2), stg.name

    def test_place_map_regions_are_regions(self):
        ts = build_reachability_graph(vme_read())
        net, place_map = synthesize_net(ts)
        for name, region in place_map.items():
            assert is_region(ts, region)

    def test_initial_marking_matches_initial_state(self):
        ts = build_reachability_graph(vme_read())
        net, place_map = synthesize_net(ts)
        for name, region in place_map.items():
            expected = 1 if ts.initial in region else 0
            assert net.places[name].tokens == expected

    def test_synthesized_net_is_irredundant(self):
        """Dropping any place must change behaviour (excitation closure)."""
        ts = build_reachability_graph(vme_read())
        net, place_map = synthesize_net(ts)
        from repro.regions.region import event_gradient as grad

        for name in place_map:
            regions = [r for n, r in place_map.items() if n != name]
            # at least one event must lose closure
            lost = False
            for event in ts.events:
                pre = [r for r in regions
                       if grad(ts, r, event) == EXIT]
                inter = frozenset(ts.states)
                for r in pre:
                    inter &= r
                if not pre or inter != excitation_region(ts, event):
                    lost = True
                    break
            assert lost, "place %s (%s) is redundant" % (
                name, sorted(map(repr, place_map[name])))


class TestSTGExtraction:
    def test_extract_back_annotated_stg(self):
        """Figure 10(a) round trip on the specification itself."""
        stg = vme_read()
        ts = build_reachability_graph(stg)
        types = {s: stg.type_of(s) for s in stg.signals}
        extracted = extract_stg(ts, types, name="fig10a")
        assert set(extracted.signals) == set(stg.signals)
        ts2 = build_reachability_graph(extracted)
        assert ts.bisimilar(ts2)

    def test_extract_requires_classification(self):
        ts = build_reachability_graph(vme_read())
        with pytest.raises(SynthesisError):
            extract_stg(ts, {"DSr": SignalType.INPUT})  # missing signals
