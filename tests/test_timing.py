"""Relative-timing constraints and the Figure 11 optimisations."""

import pytest

from repro.analysis import check_implementability
from repro.boolmin import equivalent, parse_expr
from repro.errors import ReproError
from repro.stg import vme_read
from repro.synth import synthesize_complex_gates
from repro.timing import (
    LazySTG,
    SeparationConstraint,
    apply_timing_assumption,
    timed_state_graph,
)
from repro.verify import verify_circuit


class TestAssumptionApplication:
    def test_assumption_prunes_states(self):
        timed = apply_timing_assumption(vme_read(), "LDTACK-", "DSr+")
        sg = timed_state_graph(vme_read(), [("LDTACK-", "DSr+")])
        assert len(sg) == 12 < 14
        assert check_implementability(timed).implementable

    def test_marked_variant_chosen_automatically(self):
        """LDTACK- fires after DSr+ in the first cycle, so the ordering
        place must start marked."""
        timed = apply_timing_assumption(vme_read(), "LDTACK-", "DSr+")
        assert timed.initial_marking.get("<LDTACK-<DSr+>") == 1

    def test_impossible_assumption_rejected(self):
        # DSr+ before DSr- already holds causally; ordering DSr- before
        # DSr+ in-cycle would deadlock both variants? DSr- -> DSr+ with a
        # marked place is consistent, so use an event pair that cannot work:
        with pytest.raises(ReproError):
            apply_timing_assumption(vme_read(), "nonexistent+", "DSr+")


class TestFigure11a:
    """Under sep(LDTACK-, DSr+) < 0 the csc signal disappears and the
    circuit shrinks to three gates: D = DSr LDTACK, DTACK = D,
    LDS = DSr + D."""

    def test_no_internal_signal_needed(self):
        timed = apply_timing_assumption(vme_read(), "LDTACK-", "DSr+")
        report = check_implementability(timed)
        assert report.implementable  # no csc insertion required

    def test_equations(self):
        timed = apply_timing_assumption(vme_read(), "LDTACK-", "DSr+")
        netlist = synthesize_complex_gates(timed, name="fig11a")
        expected = {
            "D": "DSr & LDTACK",
            "DTACK": "D",
            "LDS": "DSr | D",
        }
        assert set(netlist.gates) == set(expected)
        for signal, text in expected.items():
            assert equivalent(netlist.gates[signal].expr, parse_expr(text)), \
                signal

    def test_verified_against_timed_environment(self):
        timed = apply_timing_assumption(vme_read(), "LDTACK-", "DSr+")
        netlist = synthesize_complex_gates(timed, name="fig11a")
        report = verify_circuit(netlist, timed)
        assert report.ok, report.summary()

    def test_untimed_environment_breaks_it(self):
        """Without the assumption the 3-gate circuit must fail — the
        timing really is load-bearing."""
        timed = apply_timing_assumption(vme_read(), "LDTACK-", "DSr+")
        netlist = synthesize_complex_gates(timed, name="fig11a")
        report = verify_circuit(netlist, vme_read())
        assert not report.ok


class TestLazySTG:
    def test_describe_includes_constraints(self):
        lazy = LazySTG(vme_read(), [
            SeparationConstraint("LDTACK-", "DSr+", "assumption"),
            SeparationConstraint("D-", "LDS-", "requirement"),
        ])
        text = lazy.describe()
        assert "sep(LDTACK-,DSr+)<0" in text
        assert "sep(D-,LDS-)<0" in text
        assert ".model vme_read" in text

    def test_priorities_export(self):
        lazy = LazySTG(vme_read(), [SeparationConstraint("a-", "b+")])
        assert lazy.priorities() == [("a-", "b+")]
