"""Gate and netlist semantics, equation/Verilog export."""

import pytest

from repro.errors import ModelError, SynthesisError
from repro.synth import Gate, GateKind, Netlist


class TestGateSemantics:
    def test_comb_gate(self):
        g = Gate.comb("z", "a & b")
        assert g.next_value({"a": 1, "b": 1, "z": 0}) == 1
        assert g.next_value({"a": 0, "b": 1, "z": 1}) == 0

    def test_comb_gate_with_feedback(self):
        g = Gate.comb("z", "a & (z | ~b)")
        assert g.next_value({"a": 1, "b": 1, "z": 1}) == 1  # holds
        assert g.next_value({"a": 1, "b": 1, "z": 0}) == 0

    def test_classic_c_element(self):
        g = Gate.classic_c_element("c", "a", "b")
        assert g.next_value({"a": 1, "b": 1, "c": 0}) == 1  # both high: set
        assert g.next_value({"a": 0, "b": 0, "c": 1}) == 0  # both low: reset
        assert g.next_value({"a": 1, "b": 0, "c": 1}) == 1  # hold
        assert g.next_value({"a": 0, "b": 1, "c": 0}) == 0  # hold

    def test_c_element_with_bubble(self):
        g = Gate.classic_c_element("c", "a", "b", invert_b=True)
        assert g.next_value({"a": 1, "b": 0, "c": 0}) == 1
        assert g.next_value({"a": 0, "b": 1, "c": 1}) == 0

    def test_sr_latch_dominance(self):
        reset_dom = Gate.sr_latch("q", "s", "r", dominance="reset")
        set_dom = Gate.sr_latch("q", "s", "r", dominance="set")
        both = {"s": 1, "r": 1, "q": 0}
        assert reset_dom.next_value(both) == 0
        assert set_dom.next_value(both) == 1
        hold = {"s": 0, "r": 0, "q": 1}
        assert reset_dom.next_value(hold) == 1
        assert set_dom.next_value(hold) == 1

    def test_buffer(self):
        g = Gate.buffer("y", "x")
        assert g.next_value({"x": 1, "y": 0}) == 1

    def test_latch_requires_both_functions(self):
        with pytest.raises(ModelError):
            Gate("z", GateKind.C_ELEMENT, set_expr=None, reset_expr=None)

    def test_bad_dominance(self):
        with pytest.raises(ModelError):
            Gate.sr_latch("q", "s", "r", dominance="sideways")

    def test_inputs_of_gates(self):
        assert Gate.comb("z", "a & z").inputs() == {"a", "z"}
        assert Gate.c_element("c", "a & b", "~a & ~b").inputs() == {"a", "b"}


class TestNetlist:
    def make(self):
        n = Netlist("demo", inputs=["a", "b"])
        n.add(Gate.comb("x", "a & b"))
        n.add(Gate.comb("y", "x | a"))
        return n

    def test_outputs_and_signals(self):
        n = self.make()
        assert n.outputs == ["x", "y"]
        assert n.signals() == ["a", "b", "x", "y"]
        assert n.gate_count() == 2

    def test_one_driver_per_signal(self):
        n = self.make()
        with pytest.raises(ModelError):
            n.add(Gate.comb("x", "a"))

    def test_cannot_drive_input(self):
        n = self.make()
        with pytest.raises(ModelError):
            n.add(Gate.comb("a", "b"))

    def test_validate_finds_undriven(self):
        n = Netlist("bad", inputs=["a"])
        n.add(Gate.comb("z", "a & ghost"))
        with pytest.raises(SynthesisError):
            n.validate()

    def test_literal_count(self):
        assert self.make().literal_count() == 4

    def test_eqn_output(self):
        text = self.make().to_eqn()
        assert "x = a b" in text
        assert "y = x + a" in text

    def test_verilog_output(self):
        text = self.make().to_verilog()
        assert "module demo" in text
        assert "assign x = (a) & (b);" in text
        assert "endmodule" in text

    def test_verilog_latch_emulation(self):
        n = Netlist("l", inputs=["a", "b"])
        n.add(Gate.classic_c_element("c", "a", "b"))
        text = n.to_verilog()
        assert "c-element" in text
        assert "assign c" in text
