"""Parity of the compiled bitvector reachability engine with the naive
token game: identical transition systems on the whole STG library,
step-by-step firing agreement on random walks, and identical error
behaviour at the 1-safeness and state-count bounds."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ModelError, StateExplosionError, UnboundedError
from repro.petri import (
    CompiledNet,
    PetriNet,
    compile_net,
    enabled_transitions,
    fire,
    supports_compilation,
)
from repro.stg import (
    concurrent_latch_controller,
    handshake_arbiter_free_choice,
    latch_controller,
    muller_pipeline,
    mutex_controller,
    parallel_handshakes,
    pipeline_ring,
    sequencer,
    vme_read,
    vme_read_csc,
    vme_read_write,
)
from repro.ts import build_reachability_graph, build_state_graph
from repro.ts.state_graph import StateGraph

LIBRARY = {
    "vme_read": vme_read,
    "vme_read_write": vme_read_write,
    "vme_read_csc": vme_read_csc,
    "latch_controller": latch_controller,
    "concurrent_latch_controller": concurrent_latch_controller,
    "handshake_arbiter_free_choice": handshake_arbiter_free_choice,
    "parallel_handshakes_3": lambda: parallel_handshakes(3),
    "pipeline_ring_6": lambda: pipeline_ring(6),
    "sequencer_4": lambda: sequencer(4),
    "muller_pipeline_5": lambda: muller_pipeline(5),
    "mutex_controller": mutex_controller,
}


# --------------------------------------------------------------------- #
# bit-identical transition systems
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_engines_produce_identical_transition_systems(name):
    stg = LIBRARY[name]()
    naive = build_reachability_graph(stg, engine="naive")
    compiled = build_reachability_graph(stg, engine="compiled")
    assert naive.initial == compiled.initial
    # same states in the same insertion order
    assert naive.states == compiled.states
    # same arcs in the same order, globally and per state
    assert list(naive.arcs()) == list(compiled.arcs())
    for state in naive.states:
        assert naive.successors(state) == compiled.successors(state)
        assert naive.predecessors(state) == compiled.predecessors(state)
    assert naive.events == compiled.events


@pytest.mark.parametrize("name", ["vme_read", "vme_read_csc",
                                  "muller_pipeline_5"])
def test_engines_produce_identical_state_graph_codes(name):
    stg = LIBRARY[name]()
    sg_naive = StateGraph(stg, build_reachability_graph(stg, engine="naive"))
    sg_comp = StateGraph(stg,
                         build_reachability_graph(stg, engine="compiled"))
    assert sg_naive.initial_values == sg_comp.initial_values
    assert sg_naive.codes == sg_comp.codes


def test_auto_engine_matches_explicit_compiled():
    stg = muller_pipeline(4)
    auto = build_reachability_graph(stg)
    compiled = build_reachability_graph(stg, engine="compiled")
    assert list(auto.arcs()) == list(compiled.arcs())


# --------------------------------------------------------------------- #
# firing-level cross-check (property-based random walks)
# --------------------------------------------------------------------- #

@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(sorted(LIBRARY)),
       choices=st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=40))
def test_random_walk_cross_check(name, choices):
    """Walk the token game twice — naive markings and compiled integer
    states — making the same choices; enabled sets and markings must
    agree after every step."""
    net = LIBRARY[name]().net
    compiled = CompiledNet(net)
    marking = net.initial_marking
    code = compiled.encode(marking)
    for choice in choices:
        naive_enabled = enabled_transitions(net, marking)
        assert compiled.enabled_transitions(code) == naive_enabled
        if not naive_enabled:
            break
        t = naive_enabled[choice % len(naive_enabled)]
        marking = fire(net, marking, t)
        code = compiled.fire(code, t)
        assert compiled.decode(code) == marking


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(sorted(LIBRARY)),
       choices=st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=30))
def test_incremental_enabled_set_matches_full_scan(name, choices):
    """The incremental enabled-set update (recheck only transitions
    adjacent to the fired one) must agree with a from-scratch scan."""
    net = LIBRARY[name]().net
    compiled = CompiledNet(net)
    code = compiled.initial
    enabled = compiled.enabled_mask(code)
    for choice in choices:
        if not enabled:
            break
        bits = [i for i in range(len(compiled.transitions))
                if (enabled >> i) & 1]
        index = bits[choice % len(bits)]
        successor, conflict = compiled.fire_index(code, index)
        assert not conflict
        # conflict-free firing is a pure xor with the transition's delta
        assert successor == code ^ compiled.deltas[index]
        code = successor
        enabled = compiled.enabled_after(enabled, index, code)
        assert enabled == compiled.enabled_mask(code)


# --------------------------------------------------------------------- #
# error parity at the exploration bounds
# --------------------------------------------------------------------- #

def unsafe_net():
    """p0 -> t0 -> p1 with p1 already marked: firing t0 puts a second
    token on p1."""
    net = PetriNet("unsafe")
    net.add_place("p0", tokens=1)
    net.add_place("p1", tokens=1)
    net.add_transition("t0")
    net.add_arc("p0", "t0")
    net.add_arc("t0", "p1")
    return net


def test_unbounded_error_parity():
    net = unsafe_net()
    assert supports_compilation(net)
    errors = {}
    for engine in ("naive", "compiled"):
        with pytest.raises(UnboundedError) as exc:
            build_reachability_graph(net, engine=engine)
        errors[engine] = str(exc.value)
    assert errors["naive"] == errors["compiled"]
    assert "violates 1-safeness" in errors["naive"]


@pytest.mark.parametrize("max_states", [1, 7, 31])
def test_state_explosion_parity(max_states):
    stg = muller_pipeline(4)  # 32 states
    errors = {}
    for engine in ("naive", "compiled"):
        with pytest.raises(StateExplosionError) as exc:
            build_reachability_graph(stg, max_states=max_states,
                                     engine=engine)
        errors[engine] = str(exc.value)
    assert errors["naive"] == errors["compiled"]


def test_max_states_exactly_sufficient_on_both_engines():
    stg = muller_pipeline(4)
    for engine in ("naive", "compiled"):
        ts = build_reachability_graph(stg, max_states=32, engine=engine)
        assert len(ts) == 32


def test_compiled_fire_raises_like_the_naive_game():
    net = unsafe_net()
    compiled = CompiledNet(net)
    with pytest.raises(ModelError):
        compiled.fire(0, "t0")  # not enabled in the empty marking
    with pytest.raises(ModelError):
        compiled.fire(compiled.initial, "nonexistent")
    with pytest.raises(UnboundedError):
        compiled.fire(compiled.initial, "t0")


# --------------------------------------------------------------------- #
# engine selection and domain gating
# --------------------------------------------------------------------- #

def weighted_net():
    net = PetriNet("weighted")
    net.add_place("p0", tokens=1)
    net.add_place("p1")
    net.add_transition("t0")
    net.add_arc("p0", "t0", weight=2)
    net.add_arc("t0", "p1")
    return net


def test_unknown_engine_rejected():
    with pytest.raises(ModelError):
        build_reachability_graph(muller_pipeline(2), engine="quantum")


def test_compiled_engine_requires_safe_semantics():
    with pytest.raises(ModelError):
        build_reachability_graph(muller_pipeline(2), engine="compiled",
                                 require_safe=False)


def test_weighted_net_falls_back_to_naive():
    net = weighted_net()
    assert not supports_compilation(net)
    ts = build_reachability_graph(net)  # auto -> naive: t0 never enabled
    assert len(ts) == 1 and ts.arc_count() == 0
    with pytest.raises(ModelError):
        build_reachability_graph(net, engine="compiled")


def test_safe_override_on_net_with_unsafe_stored_marking():
    """An explicit safe ``initial`` must reach the compiled engine even
    when the marking stored on the net is unsafe."""
    from repro.petri import Marking

    net = PetriNet("override")
    net.add_place("p0", tokens=2)
    net.add_place("p1")
    net.add_transition("t0")
    net.add_arc("p0", "t0")
    net.add_arc("t0", "p1")
    override = Marking({"p0": 1})
    assert supports_compilation(net, override)
    compiled = build_reachability_graph(net, initial=override,
                                        engine="compiled")
    naive = build_reachability_graph(net, initial=override, engine="naive")
    assert len(compiled) == len(naive) == 2
    assert list(compiled.arcs()) == list(naive.arcs())


def test_clear_state_pools_releases_interned_markings():
    net = muller_pipeline(3).net
    compiled = compile_net(net)
    build_reachability_graph(net, engine="compiled")
    assert compiled._marking_of
    compiled.clear_state_pools()
    assert not compiled._marking_of and not compiled._code_of
    # still fully functional afterwards
    ts = build_reachability_graph(net, engine="compiled")
    assert len(ts) == 16


def test_unsafe_initial_marking_falls_back_to_naive():
    net = PetriNet("two_tokens")
    net.add_place("p0", tokens=2)
    net.add_transition("t0")
    net.add_arc("p0", "t0")
    assert not supports_compilation(net)
    # naive multiset semantics: p0 goes 2 -> 1 -> 0
    ts = build_reachability_graph(net)
    assert len(ts) == 3
    with pytest.raises(ModelError):
        build_reachability_graph(net, engine="compiled")


# --------------------------------------------------------------------- #
# compilation caching and supporting caches
# --------------------------------------------------------------------- #

def test_compile_net_is_cached_until_structure_changes():
    net = muller_pipeline(3).net
    first = compile_net(net)
    assert compile_net(net) is first
    net.add_place("extra")
    second = compile_net(net)
    assert second is not first
    assert "extra" in second.place_bit


def test_compile_net_rerooting_does_not_leak_into_cache():
    from repro.petri import Marking

    net = PetriNet("chain")
    net.add_place("p0", tokens=1)
    net.add_place("p1")
    net.add_transition("t0")
    net.add_arc("p0", "t0")
    net.add_arc("t0", "p1")
    rerooted = compile_net(net, Marking({"p1": 1}))
    assert rerooted.initial == rerooted.encode(Marking({"p1": 1}))
    # a later compile without an explicit initial gets the net's own
    # marking back, not the previous caller's re-root
    fresh = compile_net(net)
    assert fresh is rerooted
    assert fresh.initial == fresh.encode(net.initial_marking)


def test_state_graph_helper_uses_selected_engine():
    stg = muller_pipeline(3)
    sg = build_state_graph(stg)
    sg_naive = build_state_graph(stg, engine="naive")
    assert sg.codes == sg_naive.codes
    assert sg.initial_values == sg_naive.initial_values


def test_preset_postset_memoized_and_invalidated():
    net = PetriNet("memo")
    net.add_place("p", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t")
    snap = net.postset("p")
    assert snap == {"t": 1}
    assert net.postset("p") is snap  # memoized
    with pytest.raises(TypeError):
        snap["u"] = 2  # read-only snapshot
    net.add_transition("u")
    net.add_arc("p", "u")
    assert net.postset("p") == {"t": 1, "u": 1}
    assert snap == {"t": 1}  # old snapshot unchanged
    net.remove_transition("t")
    assert net.postset("p") == {"u": 1}
    assert net.preset("u") == {"p": 1}
