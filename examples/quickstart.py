#!/usr/bin/env python
"""Quickstart: the complete synthesis flow of the paper on its running
example, the VME bus controller READ cycle.

    specification (STG)  ->  analysis  ->  CSC resolution  ->
    logic synthesis      ->  verification

Run:  python examples/quickstart.py
"""

from repro.analysis import check_implementability
from repro.stg import render_waveforms, vme_read, write_g
from repro.synth import resolve_csc, synthesize_complex_gates
from repro.verify import verify_circuit


def main():
    # 1. Specification: Figure 3 of the paper (shipped with the library).
    spec = vme_read()
    print("=== Specification (.g format) ===")
    print(write_g(spec))
    print("=== Timing diagram (Figure 2) ===")
    print(render_waveforms(spec))
    print()

    # 2. Analysis: boundedness, consistency, CSC, persistency (Section 2).
    report = check_implementability(spec)
    print("=== Implementability analysis ===")
    print(report.summary())
    for conflict in report.csc_conflicts:
        print("  ", conflict)
    print()

    # 3. CSC resolution by state-signal insertion (Section 3.1).
    resolved = resolve_csc(spec)
    print("=== After CSC resolution ===")
    print("inserted internal signals:", resolved.internal)
    print(check_implementability(resolved).summary())
    print()

    # 4. Logic synthesis: one complex gate per signal (Section 3.2).
    circuit = synthesize_complex_gates(resolved)
    print("=== Synthesized circuit ===")
    print(circuit.to_eqn())
    print()

    # 5. Verification: compose the circuit with the original environment
    #    and check conformance + hazard freedom (Sections 2.1, 3.4).
    verdict = verify_circuit(circuit, spec)
    print("=== Verification against the original specification ===")
    print(verdict.summary())
    assert verdict.ok


if __name__ == "__main__":
    main()
