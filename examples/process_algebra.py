#!/usr/bin/env python
"""Syntax-directed translation from a CSP-style process algebra
(Section 6 of the paper).

Builds interface controllers from process terms, compiles them to STGs,
contracts the fork/join dummies, and pushes the result through the full
synthesis pipeline.  Also demonstrates the Section 6 claim that the
translated description grows *linearly* with the source term.

Run:  python examples/process_algebra.py
"""

from repro.analysis import check_implementability
from repro.procalg import (
    choice,
    compile_process,
    handshake,
    loop,
    par,
    seq,
)
from repro.stg import contract_dummy_transitions, write_g
from repro.synth import resolve_csc, synthesize_complex_gates
from repro.verify import verify_circuit


def main():
    print("=== a one-place buffer: passive input channel a,"
          " active output channel b ===")
    term = loop(seq(handshake("a", active=False), handshake("b")))
    stg = compile_process(term, inputs=["a_r", "b_a"], name="buffer")
    print("term size %d -> STG %s" % (term.size(), stg.net.stats()))
    print(write_g(stg))

    resolved = resolve_csc(stg)
    circuit = synthesize_complex_gates(resolved)
    print(circuit.to_eqn())
    assert verify_circuit(circuit, stg).ok
    print("verified: OK\n")

    print("=== parallel broadcast: receive on a, deliver on b and c"
          " concurrently ===")
    term = loop(seq(handshake("a", active=False),
                    par(handshake("b"), handshake("c"))))
    stg = compile_process(term, inputs=["a_r", "b_a", "c_a"],
                          name="broadcast")
    print("with fork/join dummies:", stg.net.stats())
    spec = contract_dummy_transitions(stg)
    print("after contraction:     ", spec.net.stats())
    resolved = resolve_csc(spec, max_signals=3)
    circuit = synthesize_complex_gates(resolved)
    print(circuit.to_eqn())
    assert verify_circuit(circuit, spec).ok
    print("verified: OK\n")

    print("=== environment choice between two services ===")
    term = loop(choice(handshake("x", active=False),
                       handshake("y", active=False)))
    stg = compile_process(term, inputs=["x_r", "y_r"], name="chooser")
    report = check_implementability(stg)
    print(report.summary())
    circuit = synthesize_complex_gates(stg)
    print(circuit.to_eqn())
    assert verify_circuit(circuit, stg).ok
    print("verified: OK\n")

    print("=== linear size (Section 6 claim) ===")
    print("  k | term size | STG places+transitions")
    for k in (2, 4, 8, 16, 32):
        term = loop(seq(*[handshake("c%d" % i) for i in range(k)]))
        stg = compile_process(term, inputs=["c%d_a" % i for i in range(k)])
        stats = stg.net.stats()
        print("  %2d | %9d | %d"
              % (k, term.size(), stats["places"] + stats["transitions"]))


if __name__ == "__main__":
    main()
