#!/usr/bin/env python
"""SAT-based model checking without state graphs (repro.sat).

The paper's Section 2.2 names state explosion as the obstacle to STG
analysis; this example shows the subsystem that sidesteps it.  Three
demonstrations on the paper's own models:

1. **Deadlock refutation on the VME bus controller** — k-induction
   proves deadlock-freedom without enumerating the 14-state graph, and
   keeps proving it on Muller pipelines far past the point where
   explicit enumeration gets expensive (the state count doubles per
   stage; the proof cost grows with the *net*, not the state space).

2. **A CSC conflict found by BMC before state-graph construction** —
   two bounded unrollings of the READ-cycle token game, constrained to
   equal signal parities (same binary code) and different non-input
   excitation, reproduce the paper's Figure 4 conflict as a pair of
   replayable firing sequences.

3. **A shallow deadlock in a large state space** — dining philosophers:
   BMC digs out the depth-n "everyone took the left fork" deadlock; with
   the ∅-conflict parallel step semantics it needs a single frame.

Run:  python examples/sat_model_checking.py
"""

import time

from repro.petri import dining_philosophers, find_deadlocks
from repro.sat import (
    Proved,
    csc_conflict,
    find_deadlock,
    prove_deadlock_free,
)
from repro.stg import muller_pipeline, vme_read
from repro.ts import build_reachability_graph


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def deadlock_refutation():
    print("== 1. deadlock-freedom of the VME bus controller ==")
    stg = vme_read()
    verdict, seconds = timed(prove_deadlock_free, stg)
    assert isinstance(verdict, Proved)
    print("vme_read: proved deadlock-free by %d-induction in %.3fs"
          % (verdict.k, seconds))

    print("\nscaling on Muller pipelines (2^(n-1)*4 states):")
    print("   n |   states | sat proof (s) | explicit graph (s)")
    for n in (8, 10, 12, 14):
        stg = muller_pipeline(n)
        verdict, t_sat = timed(prove_deadlock_free, stg, 2)
        assert isinstance(verdict, Proved)
        ts, t_explicit = timed(build_reachability_graph, stg)
        print("  %2d | %8d | %13.3f | %18.3f"
              % (n, len(ts), t_sat, t_explicit))


def csc_before_state_graph():
    print("\n== 2. the Figure 4 CSC conflict, found by BMC ==")
    stg = vme_read()
    conflict, seconds = timed(csc_conflict, stg, 12)
    assert conflict is not None
    print("found in %.3fs (no state graph built):" % seconds)
    print("  %s" % conflict)
    print("  trace a: %s" % " ".join(conflict.trace_a.transitions))
    print("  trace b: %s" % " ".join(conflict.trace_b.transitions))
    print("  (both traces replay in the token game; the conflicting"
          " states share a binary code")
    print("   because their traces fire every signal an equal number of"
          " times mod 2)")


def shallow_deadlock():
    print("\n== 3. shallow deadlock, large state space (philosophers) ==")
    n = 8
    net = dining_philosophers(n)
    witness, seconds = timed(find_deadlock, net, 1, "parallel")
    assert witness is not None
    print("deadlock after one parallel step (%.3fs): %s"
          % (seconds, " ".join(witness.transitions)))
    # the SAT and explicit paths report dead markings identically
    print("dead marking: %r"
          % find_deadlocks(net, markings=[witness.final_marking])[0])


if __name__ == "__main__":
    deadlock_refutation()
    csc_before_state_graph()
    shallow_deadlock()
