#!/usr/bin/env python
"""Fighting the state-explosion problem (Section 2.2).

Compares the four techniques the paper surveys on a scalable workload
(n independent four-phase handshakes, 4^n states):

* explicit reachability-graph enumeration;
* symbolic BDD traversal (with the structural variable-ordering
  heuristic, plus the naive sorted order for contrast);
* McMillan complete-prefix unfolding;
* stubborn-set partial-order reduction (deadlock-preserving);
* structural P-invariants (no state enumeration at all).

Run:  python examples/state_space_techniques.py [max_n]
"""

import sys
import time

from repro.analysis import reduced_reachability
from repro.bdd import SymbolicReachability
from repro.petri import p_invariants
from repro.stg import parallel_handshakes
from repro.ts import build_reachability_graph
from repro.unfold import unfold


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def main(max_n=5):
    header = ("  n |   states | explicit(s) | bdd nodes | bdd(s) "
              "| unf events | unf(s) | stubborn | stub(s)")
    print(header)
    print("-" * len(header))
    for n in range(1, max_n + 1):
        net = parallel_handshakes(n).net
        ts, t_explicit = timed(build_reachability_graph, net)

        def traverse():
            sym = SymbolicReachability(net)
            sym.reachable()
            return sym

        sym, t_bdd = timed(traverse)
        prefix, t_unf = timed(unfold, net)
        reduced, t_stub = timed(reduced_reachability, net)
        print("  %d | %8d | %11.4f | %9d | %6.4f | %10d | %6.4f |"
              " %8d | %6.4f"
              % (n, len(ts), t_explicit, sym.bdd_size(), t_bdd,
                 prefix.stats()["events"], t_unf, len(reduced), t_stub))
        assert sym.count() == len(ts)

    print("\nvariable-ordering ablation (n = 5):")
    net = parallel_handshakes(5).net
    for order in ("dfs", "sorted"):
        sym = SymbolicReachability(net, place_order=order)
        sym.reachable()
        print("  order=%-6s -> %5d BDD nodes" % (order, sym.bdd_size()))

    print("\ntransition-relation ablation (n = 5):")
    for style in ("partitioned", "monolithic"):
        sym = SymbolicReachability(net, relation=style)
        _, seconds = timed(sym.reachable)
        relation_nodes = (
            max(sym.bdd.size(r) for _, r, _, _ in sym.partitioned_relations())
            if style == "partitioned"
            else sym.bdd.size(sym.transition_relation()))
        print("  relation=%-11s -> %6.4f s, largest relation %4d nodes"
              % (style, seconds, relation_nodes))

    print("\nstructural invariants (n = 5, no state enumeration):")
    for inv in p_invariants(net):
        print("  ", " + ".join("M(%s)" % p for p in sorted(inv)), "= 1")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
