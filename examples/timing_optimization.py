#!/usr/bin/env python
"""Timing optimization of the READ-cycle controller (Section 5, Figure 11).

Three circuits:

  (a) assumption sep(LDTACK-, DSr+) < 0   -> csc0 disappears, 3 gates
  (b) requirement sep(D-, LDS-) < 0        -> LDS- enabled early
  (c) both                                 -> LDS becomes a wire from DSr

The time-separation engine then *justifies* the assumption from physical
delay budgets and finds the bus-speed crossover where the optimisation
stops being licensed.

Run:  python examples/timing_optimization.py
"""

from repro.analysis import check_implementability
from repro.stg import vme_read
from repro.synth import resolve_csc, synthesize_complex_gates
from repro.timing import (
    LazySTG,
    SeparationConstraint,
    TimedMarkedGraph,
    apply_timing_assumption,
    critical_cycle,
    max_separation,
    throughput,
    validates_assumption,
)
from repro.verify import verify_circuit


def main():
    spec = vme_read()

    print("=== untimed baseline ===")
    baseline = synthesize_complex_gates(resolve_csc(spec))
    print(baseline.to_eqn())
    print("gates: %d, literals: %d\n"
          % (baseline.gate_count(), baseline.literal_count()))

    print("=== (a) assume sep(LDTACK-, DSr+) < 0 ===")
    timed_a = apply_timing_assumption(spec, "LDTACK-", "DSr+")
    assert check_implementability(timed_a).implementable
    circuit_a = synthesize_complex_gates(timed_a, name="fig11a")
    print(circuit_a.to_eqn())
    assert verify_circuit(circuit_a, timed_a).ok
    assert not verify_circuit(circuit_a, spec).ok  # timing is load-bearing
    print("verified under the timed environment; fails without it — the"
          " assumption really is required\n")

    print("=== (b) require sep(D-, LDS-) < 0 (early LDS- enabling) ===")
    spec_b = spec.retarget_trigger("LDS-", "D-", "DSr-")
    resolved_b = resolve_csc(spec_b)
    circuit_b = synthesize_complex_gates(resolved_b, name="fig11b")
    print(circuit_b.to_eqn())
    assert verify_circuit(circuit_b, spec_b).ok
    assert verify_circuit(circuit_b, spec, priorities=[("D-", "LDS-")]).ok
    lazy = LazySTG(spec_b, [SeparationConstraint("D-", "LDS-",
                                                 "requirement")])
    print("exported to physical design:")
    for line in lazy.describe().splitlines():
        if line.startswith("# timing"):
            print("  " + line)
    print()

    print("=== (c) both constraints ===")
    spec_c = apply_timing_assumption(spec_b, "LDTACK-", "DSr+")
    circuit_c = synthesize_complex_gates(spec_c, name="fig11c")
    print(circuit_c.to_eqn())
    assert verify_circuit(circuit_c, spec_c).ok
    print()

    print("=== separation analysis: is the assumption justified? ===")
    delays = {
        "DSr+": (18, 25), "DSr-": (4, 6), "DTACK+": (1, 2), "DTACK-": (1, 2),
        "LDS+": (1, 2), "LDS-": (1, 2), "LDTACK+": (3, 5), "LDTACK-": (3, 5),
        "D+": (1, 2), "D-": (1, 2),
    }
    tmg = TimedMarkedGraph(spec.net, delays)
    sep = max_separation(tmg, "LDTACK-", "DSr+", occurrence_offset=-1)
    print("max sep(LDTACK-, next DSr+) = %.1f  (negative -> assumption"
          " holds)" % sep)
    ct, cycle = critical_cycle(tmg)
    print("cycle time %.1f (throughput %.4f), critical cycle: %s"
          % (ct, throughput(tmg), " -> ".join(cycle)))
    print("\nbus-speed sweep (when does the optimisation stop being"
          " licensed?):")
    for dsr in (2, 6, 10, 14, 18, 22):
        sweep = dict(delays)
        sweep["DSr+"] = (dsr, dsr + 4)
        ok = validates_assumption(TimedMarkedGraph(spec.net, sweep),
                                  "LDTACK-", "DSr+", occurrence_offset=-1)
        print("  DSr+ delay >= %2d : %s" % (dsr, "licensed" if ok else
                                            "NOT licensed"))


if __name__ == "__main__":
    main()
