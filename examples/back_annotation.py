#!/usr/bin/env python
"""Decomposition, technology mapping and back-annotation
(Sections 3.4 and 4, Figures 9 and 10).

* decompose the READ-cycle control into two-input gates, hazard-freely
  (the search rediscovers the paper's map0 decomposition with multiple
  acknowledgment);
* demonstrate that dropping the second reader of map0 (Figure 9b) is
  hazardous — the verifier produces the witness trace;
* extract the STG of the decomposed circuit by region-based PN synthesis
  (Figure 10a) and write it back in .g format.

Run:  python examples/back_annotation.py
"""

from repro.regions import extract_stg
from repro.stg import SignalType, vme_read, vme_read_csc, write_g
from repro.synth import Gate, Netlist
from repro.tech import decompose, map_netlist
from repro.ts import build_reachability_graph
from repro.verify import verify_circuit


def main():
    spec = vme_read()

    print("=== hazard-free two-input decomposition (Figure 9a) ===")
    circuit = decompose(vme_read_csc())
    print(circuit.to_eqn())
    print("cell mapping:")
    for signal, cell in sorted(map_netlist(circuit).items()):
        print("   %-6s -> %s" % (signal, cell))
    verdict = verify_circuit(circuit, spec)
    print(verdict.summary())
    assert verdict.ok
    print()

    print("=== the hazardous variant (Figure 9b) ===")
    bad = Netlist("fig9b", inputs=["DSr", "LDTACK"])
    bad.add(Gate.comb("map0", "csc0 | ~LDTACK"))
    bad.add(Gate.comb("csc0", "DSr & map0"))
    bad.add(Gate.comb("D", "LDTACK & csc0"))   # map0 no longer read by D
    bad.add(Gate.comb("LDS", "csc0 | D"))
    bad.add(Gate.buffer("DTACK", "D"))
    verdict = verify_circuit(bad, spec)
    print(verdict.summary())
    assert not verdict.hazard_free
    print()

    print("=== back-annotation: STG of the decomposed circuit"
          " (Figure 10a) ===")
    composed = verify_circuit(circuit, spec, keep_ts=True)
    types = {s: spec.type_of(s) for s in spec.signals}
    for internal in set(circuit.gates) - set(spec.signals):
        types[internal] = SignalType.INTERNAL
    extracted = extract_stg(composed.ts, types, name="decomposed_read")
    print(write_g(extracted))
    roundtrip = build_reachability_graph(extracted)
    print("bisimilar to the circuit's behaviour:",
          composed.ts.bisimilar(roundtrip))


if __name__ == "__main__":
    main()
