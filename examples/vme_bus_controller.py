#!/usr/bin/env python
"""The full VME bus controller (READ and WRITE cycles, Figure 5).

Demonstrates the analysis toolbox on a specification with choice:

* net classification, choice/merge places;
* linear reductions exposing the state-machine components (Figure 6);
* P-invariants and the dense encoding of Section 2.2;
* CSC resolution with multi-branch signal insertion;
* synthesis of all three architectures and verification of each.

Run:  python examples/vme_bus_controller.py
"""

from repro.analysis import check_implementability
from repro.bdd import DenseSymbolicReachability
from repro.petri import (
    DenseEncoding,
    choice_places,
    linear_reduce,
    merge_places,
    p_invariants,
    sm_components,
)
from repro.stg import vme_read_write
from repro.synth import (
    resolve_csc,
    synthesize_complex_gates,
    synthesize_gc,
    synthesize_sr,
)
from repro.verify import verify_circuit


def main():
    spec = vme_read_write()
    print("=== READ/WRITE controller:", spec.net.stats(), "===")
    print("choice places:", choice_places(spec.net))
    print("merge places: ", merge_places(spec.net))
    print()

    # Figure 6: linear reduction and SM components
    reduced = linear_reduce(spec.net)
    print("after linear reduction:", reduced.stats())
    for inv in p_invariants(reduced):
        terms = " + ".join("M(%s)" % p for p in sorted(inv))
        print("  invariant: %s = 1" % terms)
    for comp in sm_components(reduced):
        print("  SM component: %d places / %d transitions"
              % (len(comp.places), len(comp.transitions)))
    encoding = DenseEncoding(reduced)
    print("dense encoding (%d bits over %d places):"
          % (encoding.width, len(reduced.places)))
    for place, cube in encoding.table():
        print("   %-24s %s" % (place, cube))
    dense = DenseSymbolicReachability(reduced)
    print("characteristic function of reachable set == constant 1:",
          dense.characteristic_is_constant_true())
    print()

    # analysis and CSC resolution
    report = check_implementability(spec)
    print(report.summary())
    resolved = resolve_csc(spec)
    print("\ninserted:", resolved.internal)
    print(check_implementability(resolved).summary())
    print()

    # three implementation architectures
    for name, synthesize in [("complex gates", synthesize_complex_gates),
                             ("generalized C-elements", synthesize_gc),
                             ("RS latches", synthesize_sr)]:
        circuit = synthesize(resolved)
        verdict = verify_circuit(circuit, spec)
        status = "OK" if verdict.ok else "FAILED"
        print("--- %s (%d gates): %s ---"
              % (name, circuit.gate_count(), status))
        print(circuit.to_eqn())
        print()
        assert verdict.ok


if __name__ == "__main__":
    main()
