#!/usr/bin/env python
"""Burst-mode machines and fundamental-mode hazard-free synthesis
(Sections 3.3 and 6 of the paper).

* specify controllers as burst-mode machines;
* synthesize hazard-free two-level logic with the exact Nowick–Dill
  minimizer;
* replay every burst in fundamental mode;
* demonstrate the paper's Section 3.3 caveat: a circuit that is correct
  under the fundamental-mode assumption is *not* necessarily a
  speed-independent implementation of the same protocol.

Run:  python examples/burst_mode.py
"""

from repro.burstmode import (
    concur_mixer_bm,
    selector_bm,
    simple_handshake_bm,
    simulate_fundamental_mode,
    synthesize_burst_mode,
)
from repro.stg import parse_g
from repro.synth import Gate, Netlist
from repro.verify import verify_circuit


def main():
    for maker in (simple_handshake_bm, selector_bm, concur_mixer_bm):
        machine = maker()
        machine.validate()
        netlist = synthesize_burst_mode(machine)
        problems = simulate_fundamental_mode(machine, netlist)
        print("=== %s (%d states, %d transitions) ==="
              % (machine.name, len(machine.reachable_states()),
                 len(machine.transitions)))
        print(netlist.to_eqn())
        print("fundamental-mode simulation:",
              "OK" if not problems else problems)
        print()
        assert not problems

    print("=== fundamental mode is weaker than speed independence ===")
    machine = concur_mixer_bm()
    netlist = synthesize_burst_mode(machine)
    print("burst-mode cover for y:", netlist.gates["y"].expr)
    celem_stg = parse_g("""
.model celem
.inputs a b
.outputs y
.graph
a+ y+
b+ y+
y+ a- b-
a- y-
b- y-
y- a+ b+
.marking { <y-,a+> <y-,b+> }
.end
""")
    si = Netlist("bm_as_si", inputs=["a", "b"])
    si.add(Gate.comb("y", netlist.gates["y"].expr))
    report = verify_circuit(si, celem_stg)
    print(report.summary())
    print("-> correct in fundamental mode, NOT speed-independent:"
          " exactly the paper's Section 3.3 point that fundamental mode"
          " 'is not satisfied for logic implementing signal functions in"
          " synthesis using STGs'.")
    assert not report.ok


if __name__ == "__main__":
    main()
