"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Sub-classes are grouped by the pipeline stage
that raises them (model construction, analysis, synthesis, verification).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """Raised for malformed models (unknown nodes, duplicate names, ...)."""


class ParseError(ReproError):
    """Raised when parsing a textual model description (.g format) fails."""


class UnboundedError(ReproError):
    """Raised when an algorithm requiring a bounded/safe net detects
    unboundedness (or a violation of 1-safeness)."""


class ConsistencyError(ReproError):
    """Raised when an STG state graph has inconsistent signal codes
    (rising and falling transitions of a signal do not alternate)."""


class CSCError(ReproError):
    """Raised when Complete State Coding is required but violated and
    cannot be (or was not) resolved."""


class PersistencyError(ReproError):
    """Raised when a non-input signal transition can be disabled by another
    transition (a potential hazard source)."""


class SynthesisError(ReproError):
    """Raised when logic synthesis cannot produce an implementation."""


class VerificationError(ReproError):
    """Raised when implementation verification fails fatally (as opposed to
    returning a report containing failures)."""


class StateExplosionError(ReproError):
    """Raised when a state-space exploration exceeds its configured bound.

    Carries the budget as structured data so callers (most importantly
    the portfolio degradation ladder of :mod:`repro.portfolio`) can act
    on the numbers without parsing the message:

    * ``bound`` — the ``max_states`` budget that was exceeded;
    * ``states`` — how many states had been explored when the budget
      tripped (``None`` when the raising site did not count).
    """

    def __init__(self, message: str, bound=None, states=None):
        super().__init__(message)
        self.bound = bound
        self.states = states


class EngineTimeoutError(ReproError):
    """Raised when an engine run exceeds its wall-clock deadline.

    Produced by the portfolio worker layer (:mod:`repro.portfolio.workers`)
    when a child process is still running at its per-task deadline and has
    to be terminated.  ``deadline_s`` is the budget that was exceeded;
    ``task`` names the engine/method combination that overran.
    """

    def __init__(self, message: str, task=None, deadline_s=None):
        super().__init__(message)
        self.task = task
        self.deadline_s = deadline_s


class WorkerCrashError(ReproError):
    """Raised when an engine worker process dies without reporting.

    Produced by the portfolio worker layer when a child exits (segfault,
    ``os._exit``, OOM kill, injected fault) before sending a result or a
    classified error back.  ``exitcode`` is the raw process exit code
    (negative for a signal), ``task`` the engine/method combination.
    """

    def __init__(self, message: str, task=None, exitcode=None):
        super().__init__(message)
        self.task = task
        self.exitcode = exitcode
