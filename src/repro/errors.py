"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Sub-classes are grouped by the pipeline stage
that raises them (model construction, analysis, synthesis, verification).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """Raised for malformed models (unknown nodes, duplicate names, ...)."""


class ParseError(ReproError):
    """Raised when parsing a textual model description (.g format) fails."""


class UnboundedError(ReproError):
    """Raised when an algorithm requiring a bounded/safe net detects
    unboundedness (or a violation of 1-safeness)."""


class ConsistencyError(ReproError):
    """Raised when an STG state graph has inconsistent signal codes
    (rising and falling transitions of a signal do not alternate)."""


class CSCError(ReproError):
    """Raised when Complete State Coding is required but violated and
    cannot be (or was not) resolved."""


class PersistencyError(ReproError):
    """Raised when a non-input signal transition can be disabled by another
    transition (a potential hazard source)."""


class SynthesisError(ReproError):
    """Raised when logic synthesis cannot produce an implementation."""


class VerificationError(ReproError):
    """Raised when implementation verification fails fatally (as opposed to
    returning a report containing failures)."""


class StateExplosionError(ReproError):
    """Raised when a state-space exploration exceeds its configured bound."""
