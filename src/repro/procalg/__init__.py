"""CSP-style process algebra with syntax-directed STG translation
(paper Section 6)."""

from .terms import (
    Choice,
    Edge,
    Loop,
    Par,
    Seq,
    Term,
    choice,
    compile_process,
    fall,
    first_edges,
    handshake,
    loop,
    par,
    rise,
    seq,
)

__all__ = [
    "Choice", "Edge", "Loop", "Par", "Seq", "Term",
    "choice", "compile_process", "fall", "first_edges", "handshake",
    "loop", "par", "rise", "seq",
]
