"""A small CSP-style process algebra and its syntax-directed translation
to STGs (paper, Section 6, refs [2, 17]).

"Syntax-directed translation derives a netlist of components that
implement the behavior of each of the constructs of the language
(parallel/sequential composition, choice, communication, synchronization,
etc.).  The size of the resulting circuit is linearly dependent on the
size of the input description."

We translate to the *specification* level: each construct compiles to an
STG fragment with one entry and one exit place, composed structurally:

* ``rise/fall``     — a single signal edge;
* ``handshake``     — a four-phase handshake on a channel (active side
  drives the request, passive side the acknowledge);
* ``seq(p, q, …)``  — chaining;
* ``par(p, q, …)``  — fork/join through dummy (λ) transitions;
* ``choice(p, q)``  — a free-choice place (branches must start with input
  events so the environment decides);
* ``loop(p)``       — tie exit back to entry.

The linear-size property is literally testable (and tested): the compiled
STG has O(|term|) places and transitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..stg.signals import SignalEvent, SignalType
from ..stg.stg import STG


class Term:
    """Base class of process terms."""

    def size(self) -> int:
        """Number of AST nodes (the |term| of the linear-size claim)."""
        raise NotImplementedError

    def __or__(self, other: "Term") -> "Term":
        return Par((self, other))

    def __rshift__(self, other: "Term") -> "Term":
        return Seq((self, other))


@dataclass(frozen=True)
class Edge(Term):
    """A single signal edge (``rise``/``fall``)."""

    signal: str
    direction: str

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class Seq(Term):
    parts: Tuple[Term, ...]

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.parts)


@dataclass(frozen=True)
class Par(Term):
    parts: Tuple[Term, ...]

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.parts)


@dataclass(frozen=True)
class Choice(Term):
    parts: Tuple[Term, ...]

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.parts)


@dataclass(frozen=True)
class Loop(Term):
    body: Term

    def size(self) -> int:
        return 1 + self.body.size()


def rise(signal: str) -> Term:
    """The edge ``signal+``."""
    return Edge(signal, "+")


def fall(signal: str) -> Term:
    """The edge ``signal-``."""
    return Edge(signal, "-")


def seq(*parts: Term) -> Term:
    """Sequential composition."""
    return Seq(tuple(parts))


def par(*parts: Term) -> Term:
    """Parallel composition (fork/join)."""
    return Par(tuple(parts))


def choice(*parts: Term) -> Term:
    """Environment choice between alternatives (each must start with an
    input edge)."""
    return Choice(tuple(parts))


def loop(body: Term) -> Term:
    """Infinite repetition."""
    return Loop(body)


def handshake(channel: str, active: bool = True) -> Term:
    """A complete four-phase handshake on ``channel``.

    Signals ``<channel>_r`` (request) and ``<channel>_a`` (acknowledge);
    the active side drives the request, the passive side the acknowledge.
    """
    r, a = channel + "_r", channel + "_a"
    return seq(rise(r), rise(a), fall(r), fall(a))


# ---------------------------------------------------------------------- #
# compilation
# ---------------------------------------------------------------------- #

class _Compiler:
    def __init__(self, stg: STG):
        self.stg = stg
        self.counter = itertools.count()
        self.instances: Dict[Tuple[str, str], int] = {}

    def fresh_place(self) -> str:
        return self.stg.add_place("q%d" % next(self.counter))

    def fresh_dummy(self) -> str:
        name = "eps%d" % next(self.counter)
        self.stg.declare_signal(name, SignalType.DUMMY)
        event = SignalEvent(name, "~")
        self.stg.net.add_transition(str(event), event)
        return str(event)

    def event_transition(self, edge: Edge) -> str:
        key = (edge.signal, edge.direction)
        instance = self.instances.get(key, 0)
        self.instances[key] = instance + 1
        event = SignalEvent(edge.signal, edge.direction, instance)
        self.stg.net.add_transition(str(event), event)
        return str(event)

    def compile(self, term: Term, entry: str, exit_: str) -> None:
        """Compile ``term`` between the given entry and exit places."""
        if isinstance(term, Edge):
            t = self.event_transition(term)
            self.stg.net.add_arc(entry, t)
            self.stg.net.add_arc(t, exit_)
        elif isinstance(term, Seq):
            if not term.parts:
                raise ModelError("empty seq")
            cursor = entry
            for part in term.parts[:-1]:
                nxt = self.fresh_place()
                self.compile(part, cursor, nxt)
                cursor = nxt
            self.compile(term.parts[-1], cursor, exit_)
        elif isinstance(term, Par):
            if len(term.parts) < 2:
                raise ModelError("par needs at least two branches")
            fork = self.fresh_dummy()
            join = self.fresh_dummy()
            self.stg.net.add_arc(entry, fork)
            self.stg.net.add_arc(join, exit_)
            for part in term.parts:
                b_entry = self.fresh_place()
                b_exit = self.fresh_place()
                self.stg.net.add_arc(fork, b_entry)
                self.stg.net.add_arc(b_exit, join)
                self.compile(part, b_entry, b_exit)
        elif isinstance(term, Choice):
            if len(term.parts) < 2:
                raise ModelError("choice needs at least two branches")
            for part in term.parts:
                # branches share the entry (choice place) and the exit
                self.compile(part, entry, exit_)
        elif isinstance(term, Loop):
            raise ModelError("loop is only allowed at the top level")
        else:
            raise ModelError("unknown term %r" % (term,))


def first_edges(term: Term) -> List[Edge]:
    """The possible initial edges of a term (for choice validation)."""
    if isinstance(term, Edge):
        return [term]
    if isinstance(term, Seq):
        return first_edges(term.parts[0])
    if isinstance(term, Par):
        return [e for p in term.parts for e in first_edges(p)]
    if isinstance(term, Choice):
        return [e for p in term.parts for e in first_edges(p)]
    if isinstance(term, Loop):
        return first_edges(term.body)
    raise ModelError("unknown term %r" % (term,))


def _check_choices(term: Term, inputs: Sequence[str]) -> None:
    if isinstance(term, Choice):
        for part in term.parts:
            for edge in first_edges(part):
                if edge.signal not in inputs:
                    raise ModelError(
                        "choice branch starts with non-input edge %s%s —"
                        " the environment could not decide"
                        % (edge.signal, edge.direction))
    children: Tuple[Term, ...] = ()
    if isinstance(term, (Seq, Par, Choice)):
        children = term.parts
    elif isinstance(term, Loop):
        children = (term.body,)
    for child in children:
        _check_choices(child, inputs)


def compile_process(term: Term, inputs: Sequence[str] = (),
                    outputs: Sequence[str] = (),
                    name: str = "process") -> STG:
    """Syntax-directed translation of a process term into an STG.

    The term must be a top-level :func:`loop` (interface controllers are
    cyclic); signals are classified by the ``inputs``/``outputs`` lists
    (signals not listed default to OUTPUT).  Choice branches must begin
    with input edges.
    """
    if not isinstance(term, Loop):
        raise ModelError("top-level term must be loop(...)")
    _check_choices(term, list(inputs))
    stg = STG(name, inputs=inputs, outputs=outputs)

    # declare remaining signals as outputs
    def declare(t: Term) -> None:
        if isinstance(t, Edge):
            if t.signal not in stg.signal_types:
                stg.declare_signal(t.signal, SignalType.OUTPUT)
        elif isinstance(t, (Seq, Par, Choice)):
            for p in t.parts:
                declare(p)
        elif isinstance(t, Loop):
            declare(t.body)

    declare(term)
    compiler = _Compiler(stg)
    entry = compiler.fresh_place()
    stg.net.places[entry].tokens = 1
    compiler.compile(term.body, entry, entry)
    stg.validate()
    return stg
