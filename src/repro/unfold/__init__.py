"""Unfoldings: McMillan finite complete prefixes and ordering relations
(paper Section 2.2)."""

from .unfolder import Condition, Event, Unfolding, unfold

__all__ = ["Condition", "Event", "Unfolding", "unfold"]
