"""McMillan finite complete prefixes of safe Petri nets
(paper, Section 2.2, refs [18, 15]).

The *unfolding* of a net is an acyclic occurrence net representing all its
behaviours; a *finite complete prefix* truncates it at cut-off events while
still representing every reachable marking.  "They are often more compact
than the reachability graph and due to the acyclic property are well-suited
for extracting ordering relations between places and transitions
(concurrency, conflict and precedence)."

Implementation: the classic McMillan algorithm —

* conditions are (place, producing event) pairs; events are
  (transition, co-set of conditions) pairs;
* possible extensions are found by matching presets against concurrent
  condition sets;
* an event is a *cut-off* if some earlier event has the same marking of its
  local configuration with a strictly smaller local configuration.

Ordering relations between events (precedes / in conflict / concurrent)
are provided on the computed prefix.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import ModelError, StateExplosionError
from ..petri.marking import Marking
from ..petri.net import PetriNet


class Condition:
    """An occurrence of a place (a token) in the unfolding."""

    __slots__ = ("cid", "place", "producer")

    def __init__(self, cid: int, place: str, producer: Optional[int]):
        self.cid = cid
        self.place = place
        self.producer = producer  # event id, None for initial conditions

    def __repr__(self):
        return "c%d(%s)" % (self.cid, self.place)


class Event:
    """An occurrence of a transition in the unfolding."""

    __slots__ = ("eid", "transition", "preset", "postset", "local_config",
                 "marking", "cutoff")

    def __init__(self, eid: int, transition: str,
                 preset: Tuple[int, ...], local_config: FrozenSet[int],
                 marking: Marking):
        self.eid = eid
        self.transition = transition
        self.preset = preset
        self.postset: Tuple[int, ...] = ()
        self.local_config = local_config  # event ids incl. self
        self.marking = marking            # marking of the local config's cut
        self.cutoff = False

    def __repr__(self):
        return "e%d(%s)%s" % (self.eid, self.transition,
                              "!" if self.cutoff else "")


class Unfolding:
    """A finite complete prefix of a safe net's unfolding."""

    def __init__(self, net: PetriNet):
        self.net = net
        self.conditions: List[Condition] = []
        self.events: List[Event] = []
        self.co: Dict[int, Set[int]] = {}  # condition id -> concurrent ids

    # -- size ----------------------------------------------------------- #

    def stats(self) -> Dict[str, int]:
        """Prefix size: conditions, events, cutoffs."""
        return {
            "conditions": len(self.conditions),
            "events": len(self.events),
            "cutoffs": sum(1 for e in self.events if e.cutoff),
        }

    # -- ordering relations (paper ref [15]) ----------------------------- #

    def event_predecessors(self, eid: int) -> FrozenSet[int]:
        """Causal predecessors of an event (its local configuration minus
        itself)."""
        return self.events[eid].local_config - {eid}

    def precedes(self, e1: int, e2: int) -> bool:
        """Causal precedence between two events of the prefix."""
        return e1 in self.events[e2].local_config and e1 != e2

    def in_conflict(self, e1: int, e2: int) -> bool:
        """Structural conflict: the local configurations consume a common
        condition through different events."""
        if e1 == e2:
            return False
        consumed: Dict[int, int] = {}
        for eid in self.events[e1].local_config:
            for c in self.events[eid].preset:
                consumed[c] = eid
        for eid in self.events[e2].local_config:
            for c in self.events[eid].preset:
                if c in consumed and consumed[c] != eid:
                    return True
        return False

    def concurrent(self, e1: int, e2: int) -> bool:
        """Concurrency: neither ordered nor in conflict."""
        return (e1 != e2 and not self.precedes(e1, e2)
                and not self.precedes(e2, e1)
                and not self.in_conflict(e1, e2))

    # -- represented markings -------------------------------------------- #

    def represented_markings(self) -> Set[Marking]:
        """All markings of local-configuration cuts, plus the markings of
        all configurations (enumerated) — for a *complete* prefix this is
        the full reachability set.  Exponential; use on small prefixes
        (it exists to validate completeness in the test suite)."""
        initial = [c.cid for c in self.conditions if c.producer is None]
        result: Set[Marking] = set()
        # enumerate configurations by DFS over downward-closed, conflict-free
        # event sets
        consumed_by: Dict[int, List[int]] = {}
        for e in self.events:
            for c in e.preset:
                consumed_by.setdefault(c, []).append(e.eid)

        def cut_marking(config: FrozenSet[int]) -> Marking:
            tokens: Dict[str, int] = {}
            cut = set(initial)
            for eid in sorted(config):
                for c in self.events[eid].preset:
                    cut.discard(c)
                cut.update(self.events[eid].postset)
            for cid in cut:
                place = self.conditions[cid].place
                tokens[place] = tokens.get(place, 0) + 1
            return Marking(tokens)

        seen: Set[FrozenSet[int]] = set()
        stack: List[FrozenSet[int]] = [frozenset()]
        while stack:
            config = stack.pop()
            if config in seen:
                continue
            seen.add(config)
            result.add(cut_marking(config))
            # extend by any event whose preset is in the current cut
            cut = set(initial)
            for eid in sorted(config):
                for c in self.events[eid].preset:
                    cut.discard(c)
                cut.update(self.events[eid].postset)
            for e in self.events:
                if e.eid in config:
                    continue
                if all(c in cut for c in e.preset):
                    stack.append(config | {e.eid})
        return result


def unfold(net: PetriNet, max_events: int = 10_000) -> Unfolding:
    """Compute a McMillan finite complete prefix of a safe net."""
    if not net.has_ordinary_arcs():
        raise ModelError("unfolding requires arc weights of 1")
    unf = Unfolding(net)

    def add_condition(place: str, producer: Optional[int]) -> Condition:
        c = Condition(len(unf.conditions), place, producer)
        unf.conditions.append(c)
        unf.co[c.cid] = set()
        return c

    # initial conditions: pairwise concurrent
    initial_marking = net.initial_marking
    initial_conditions: List[Condition] = []
    for place, count in initial_marking.items():
        for _ in range(count):
            initial_conditions.append(add_condition(place, None))
    for a in initial_conditions:
        for b in initial_conditions:
            if a.cid != b.cid:
                unf.co[a.cid].add(b.cid)

    marking_table: Dict[Marking, int] = {initial_marking: 0}

    # possible-extension queue ordered by |local configuration|
    counter = itertools.count()
    queue: List[Tuple[int, int, str, Tuple[int, ...]]] = []

    def local_config_of(preset: Tuple[int, ...]) -> FrozenSet[int]:
        config: Set[int] = set()
        stack = [unf.conditions[c].producer for c in preset]
        while stack:
            eid = stack.pop()
            if eid is None or eid in config:
                continue
            config.add(eid)
            for c in unf.events[eid].preset:
                stack.append(unf.conditions[c].producer)
        return frozenset(config)

    def cut_marking(config: FrozenSet[int]) -> Marking:
        cut = {c.cid for c in initial_conditions}
        for eid in sorted(config):
            for c in unf.events[eid].preset:
                cut.discard(c)
            cut.update(unf.events[eid].postset)
        tokens: Dict[str, int] = {}
        for cid in cut:
            place = unf.conditions[cid].place
            tokens[place] = tokens.get(place, 0) + 1
        return Marking(tokens)

    def find_extensions(new_condition: Optional[Condition]) -> None:
        """Enqueue instantiations of transitions whose preset can be matched
        with a co-set (containing new_condition if given)."""
        by_place: Dict[str, List[Condition]] = {}
        for c in unf.conditions:
            by_place.setdefault(c.place, []).append(c)
        for t in sorted(net.transitions):
            pre_places = sorted(net.pre(t))
            if new_condition is not None and \
                    new_condition.place not in pre_places:
                continue
            pools = [by_place.get(p, []) for p in pre_places]
            if any(not pool for pool in pools):
                continue
            for combo in itertools.product(*pools):
                cids = tuple(sorted(c.cid for c in combo))
                if len(set(cids)) != len(cids):
                    continue
                if new_condition is not None and \
                        new_condition.cid not in cids:
                    continue
                # pairwise concurrency
                ok = True
                for i in range(len(cids)):
                    for j in range(i + 1, len(cids)):
                        if cids[j] not in unf.co[cids[i]]:
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    continue
                if any(e.transition == t and e.preset == cids
                       for e in unf.events):
                    continue
                config = local_config_of(cids)
                heapq.heappush(queue, (len(config) + 1, next(counter),
                                       t, cids))

    find_extensions(None)

    enqueued_done: Set[Tuple[str, Tuple[int, ...]]] = set()
    while queue:
        size, _, t, preset = heapq.heappop(queue)
        key = (t, preset)
        if key in enqueued_done:
            continue
        enqueued_done.add(key)
        # preset conditions may have been consumed only in alternative
        # branches — occurrence nets never invalidate a co-set
        config = local_config_of(preset) | set()
        eid = len(unf.events)
        if eid >= max_events:
            raise StateExplosionError("unfolding exceeded %d events"
                                      % max_events,
                                      bound=max_events, states=eid)
        full_config = frozenset(config | {eid})
        event = Event(eid, t, preset, full_config, Marking({}))
        unf.events.append(event)
        post_conditions = []
        for place in sorted(net.post(t)):
            post_conditions.append(add_condition(place, eid))
        event.postset = tuple(c.cid for c in post_conditions)
        event.marking = cut_marking(full_config)

        # concurrency update: co(new) = (∩ co(preset)) \ preset ∪ siblings
        common: Optional[Set[int]] = None
        for c in preset:
            common = set(unf.co[c]) if common is None else common & unf.co[c]
        common = (common or set()) - set(preset)
        for c in post_conditions:
            unf.co[c.cid] = set(common) | {
                s.cid for s in post_conditions if s.cid != c.cid
            }
            for other in common:
                unf.co[other].add(c.cid)

        # cutoff test (McMillan): same marking, smaller local config
        prior = marking_table.get(event.marking)
        if prior is not None and prior < len(full_config):
            event.cutoff = True
            continue
        if prior is None or prior > len(full_config):
            marking_table[event.marking] = len(full_config)
        for c in post_conditions:
            find_extensions(c)
    return unf
