"""Command-line interface: the paper's design flow on ``.g`` files.

Usage::

    python -m repro analyze spec.g
    python -m repro states spec.g
    python -m repro waveform spec.g
    python -m repro reduce spec.g
    python -m repro resolve spec.g -o resolved.g
    python -m repro synthesize spec.g --arch cg --verify
    python -m repro synthesize spec.g --decompose --verilog
    python -m repro sat-check spec.g --property deadlock --induction
    python -m repro sat-check spec.g --property csc --json
    python -m repro bdd-check spec.g --query csc
    python -m repro check spec.g --query deadlock --portfolio
    python -m repro check spec.g --query csc --portfolio --faults "kill:attempt=0"
    python -m repro bdd-check spec.g --query count --stats --trace run.jsonl
    python -m repro dot spec.g
    python -m repro examples --list
    python -m repro obs report run.jsonl
    python -m repro obs diff before.jsonl after.jsonl
    python -m repro obs regress BENCH_*.json --baseline benchmarks/baselines.json
    python -m repro obs lint run.jsonl

Observability: ``--stats`` prints a per-span table to stderr,
``--trace FILE`` streams span records as JSONL, and (on ``sat-check`` /
``bdd-check``) ``--json`` replaces the human output with a versioned
machine-readable run report.  The ``obs`` family turns those artifacts
into decisions: span-tree reports, trace diffs, schema lint and
noise-aware benchmark regression checks — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import obs
from .analysis import check_implementability
from .errors import ReproError
from .petri import linear_reduce, net_to_dot, p_invariants, sm_components
from .stg import ALL_EXAMPLES, load_g, render_waveforms, save_g, write_g
from .synth import (
    resolve_csc,
    synthesize_complex_gates,
    synthesize_gc,
    synthesize_sr,
)
from .tech import decompose, map_netlist
from .timing import TimedMarkedGraph, max_separation
from .ts import build_state_graph
from .verify import verify_circuit


def _load(path: str):
    if path in ALL_EXAMPLES:
        return ALL_EXAMPLES[path]()
    return load_g(path)


class _Telemetry:
    """Arms :mod:`repro.obs` for one CLI command run.

    Driven by the ``--stats`` / ``--trace FILE`` / ``--json`` flags
    (absent flags read as off, so commands can wrap their body
    unconditionally).  While active the layer is enabled, a
    :class:`~repro.obs.sinks.MemorySink` collects records for the
    ``--stats`` table and the ``--json`` run report, and ``--trace``
    streams records to a JSONL file.  On exit the previous enabled
    state and sink set are restored — an ambient ``REPRO_TRACE=1``
    session is left exactly as found — and the ``--stats`` table, if
    requested, is printed to stderr (stdout stays reserved for the
    command's own output).
    """

    def __init__(self, args):
        self.stats = bool(getattr(args, "stats", False))
        self.trace = getattr(args, "trace", None)
        self.json = bool(getattr(args, "json", False))
        self.active = self.stats or self.json or bool(self.trace)
        self.sink: Optional[obs.MemorySink] = None
        self._jsonl: Optional[obs.JsonlSink] = None
        self._was_enabled = False

    def __enter__(self) -> "_Telemetry":
        if self.active:
            self._was_enabled = obs.enabled()
            obs.enable()
            self.sink = obs.add_sink(obs.MemorySink())
            if self.trace:
                self._jsonl = obs.add_sink(obs.JsonlSink(self.trace))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return None
        if self._jsonl is not None:
            obs.remove_sink(self._jsonl)
            self._jsonl.close()
        obs.remove_sink(self.sink)
        obs.enable(self._was_enabled)
        if self.stats:
            print(obs.report(self.sink), file=sys.stderr)
        return None

    def run_report(self, command: str, spec: str, verdict: str,
                   exit_code: int, details: dict) -> dict:
        """The ``--json`` document (``repro-run-report/1``): command,
        verdict and per-span aggregates of this run."""
        return {
            "schema": obs.REPORT_SCHEMA,
            "command": command,
            "spec": spec,
            "verdict": verdict,
            "exit_code": exit_code,
            "details": details,
            "stats": self.sink.stats() if self.sink is not None else {},
        }


def cmd_analyze(args) -> int:
    """Implementability report (Section 2)."""
    stg = _load(args.spec)
    with _Telemetry(args):
        report = check_implementability(stg)
    print(report.summary())
    if args.verbose:
        for c in report.csc_conflicts:
            print("  ", c)
        for v in report.persistency_violations:
            print("  ", v)
    return 0 if report.implementable else 1


def cmd_states(args) -> int:
    """Binary-coded state graph listing (Figure 4 style)."""
    stg = _load(args.spec)
    with _Telemetry(args):
        sg = build_state_graph(stg)
    print("# %d states, signals: %s" % (len(sg), " ".join(sg.signal_order)))
    for state in sg.states:
        print("%-30s %s" % (state, sg.code_str(state)))
    return 0


def cmd_waveform(args) -> int:
    """ASCII timing diagram (Figure 2 style)."""
    stg = _load(args.spec)
    print(render_waveforms(stg))
    return 0


def cmd_reduce(args) -> int:
    """Linear reductions, invariants and SM components (Figure 6)."""
    stg = _load(args.spec)
    with _Telemetry(args):
        reduced = linear_reduce(stg.net)
    print("# original: %s" % stg.net.stats())
    print("# reduced:  %s" % reduced.stats())
    for inv in p_invariants(reduced):
        print("invariant: %s = const" %
              " + ".join("M(%s)" % p for p in sorted(inv)))
    for comp in sm_components(reduced):
        print("SM component: places=%s" % sorted(comp.places))
    return 0


def cmd_resolve(args) -> int:
    """CSC resolution by state-signal insertion (Section 3.1)."""
    stg = _load(args.spec)
    resolved = resolve_csc(stg)
    text = write_g(resolved)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print("# wrote %s (inserted: %s)"
              % (args.output, " ".join(resolved.internal) or "none"))
    else:
        print(text, end="")
    return 0


_ARCHITECTURES = {
    "cg": synthesize_complex_gates,
    "gc": synthesize_gc,
    "sr": synthesize_sr,
}


def cmd_synthesize(args) -> int:
    """Logic synthesis, optionally decomposed and verified (Section 3)."""
    stg = _load(args.spec)
    with _Telemetry(args):
        return _synthesize(args, stg)


def _synthesize(args, stg) -> int:
    """The ``synthesize`` flow body (run under the command telemetry)."""
    resolved = resolve_csc(stg)
    if resolved.internal and resolved is not stg:
        print("# CSC resolved by inserting: %s"
              % " ".join(s for s in resolved.internal))
    if args.decompose:
        netlist = decompose(resolved)
        print("# decomposed into: %s" % ", ".join(
            "%s:%s" % (k, v) for k, v in sorted(map_netlist(netlist).items())))
    else:
        netlist = _ARCHITECTURES[args.arch](resolved)
    print(netlist.to_verilog() if args.verilog else netlist.to_eqn())
    if args.verify:
        report = verify_circuit(netlist, stg)
        print()
        print(report.summary())
        return 0 if report.ok else 1
    return 0


def cmd_dot(args) -> int:
    """Graphviz DOT of the underlying Petri net."""
    stg = _load(args.spec)
    print(net_to_dot(stg.net, title=stg.name))
    return 0


def cmd_separation(args) -> int:
    """Maximum time separation of two events (Section 5)."""
    stg = _load(args.spec)
    with open(args.delays) as f:
        raw = json.load(f)
    delays = {k: tuple(v) for k, v in raw.items()}
    tmg = TimedMarkedGraph(stg.net, delays)
    value = max_separation(tmg, args.early, args.late,
                           occurrence_offset=args.offset)
    print("max sep(%s, %s) = %g" % (args.early, args.late, value))
    return 0 if value < 0 else 1


def cmd_testbench(args) -> int:
    """Verilog netlist plus self-checking testbench (Section 6)."""
    stg = _load(args.spec)
    resolved = resolve_csc(stg)
    netlist = _ARCHITECTURES[args.arch](resolved)
    from .synth import generate_testbench

    print(netlist.to_verilog())
    print()
    print(generate_testbench(stg, netlist, cycles=args.cycles))
    return 0


def cmd_coverability(args) -> int:
    """Karp-Miller boundedness analysis."""
    from .petri import build_coverability_graph

    stg = _load(args.spec)
    graph = build_coverability_graph(stg.net)
    print("nodes: %d, bounded: %s" % (len(graph.nodes), graph.is_bounded()))
    for p in graph.unbounded_places():
        print("unbounded place: %s" % p)
    for t in graph.dead_transitions():
        print("dead transition: %s" % t)
    return 0 if graph.is_bounded() else 1


def cmd_simulate(args) -> int:
    """Monte-Carlo timed simulation of a marked-graph STG."""
    stg = _load(args.spec)
    with open(args.delays) as f:
        raw = json.load(f)
    delays = {k: tuple(v) for k, v in raw.items()}
    from .timing import simulate

    tmg = TimedMarkedGraph(stg.net, delays)
    trace = simulate(tmg, cycles=args.cycles, seed=args.seed)
    reference = sorted(stg.net.transitions)[0]
    estimate = trace.cycle_time_estimate(reference)
    print("# %d cycles simulated (seed %d)" % (args.cycles, args.seed))
    if estimate is not None:
        print("estimated cycle time (via %s): %.3f" % (reference, estimate))
    for t in sorted(trace.times):
        first = trace.times[t][:5]
        print("%-12s %s" % (t, " ".join("%.2f" % x for x in first)))
    return 0


def _sat_check_cnf(stg, prop: str, bound: int, target=None, cover=False):
    """The CNF whose satisfiability answers a ``sat-check`` query.

    Used by ``--dimacs``: the dumped formula is satisfiable iff the
    query's bounded counterexample exists, so any external DIMACS solver
    reproduces the verdict printed by the command.  (Under
    ``--induction`` the dump covers the BMC base case only — a ``Proved``
    or ``Unknown`` verdict additionally depends on the inductive-step
    unrolling, which is flagged in the DIMACS comment header.)
    """
    from .sat import CNF, STGEncoding
    from .sat.queries import csc_pair_lits

    if prop == "csc":
        cnf = CNF()
        enc_a = STGEncoding(stg, cnf=cnf, prefix="A.")
        enc_b = STGEncoding(stg, cnf=cnf, prefix="B.")
        enc_a.ensure_steps(bound)
        enc_b.ensure_steps(bound)
        equal, different = csc_pair_lits(stg, cnf, enc_a, enc_b, bound)
        for lit in equal:
            cnf.add_clause(lit)
        cnf.add_clause(different)
        return cnf
    if prop == "consistency":
        encoding = STGEncoding(stg, track_consistency=True)
        encoding.ensure_steps(bound)
        encoding.cnf.add_clause(
            *[encoding.violation_lit(i) for i in range(bound)])
        return encoding.cnf
    encoding = STGEncoding(stg)
    encoding.ensure_steps(bound)
    if prop == "deadlock":
        encoding.cnf.add_clause(encoding.deadlock_lit(bound))
    else:  # reach
        for lit in encoding.marking_lits(bound, target, partial=cover):
            encoding.cnf.add_clause(lit)
    return encoding.cnf


def _sat_check_verdict(args, stg, target):
    """Run one ``sat-check`` query.

    Returns ``(verdict, exit_code, details, lines)``: a stable verdict
    string and a details dict for the ``--json`` run report, plus the
    human-readable output lines (printed unless ``--json``).
    """
    from .petri import find_deadlocks
    from .sat import (
        consistency_violation,
        csc_conflict,
        find_deadlock,
        prove_deadlock_free,
        reach_marking,
    )
    from .sat.kinduction import Proved, Refuted

    if args.property == "deadlock":
        if args.induction:
            outcome = prove_deadlock_free(stg, max_k=args.bound)
            if isinstance(outcome, Proved):
                return ("proved", 0, {"k": outcome.k},
                        ["deadlock-free: proved by %d-induction"
                         % outcome.k])
            if isinstance(outcome, Refuted):
                w = outcome.witness
                dead = find_deadlocks(stg.net,
                                      markings=[w.final_marking])[0]
                return ("refuted", 1,
                        {"k": outcome.k, "trace": list(w.transitions),
                         "dead_marking": {p: n for p, n in dead.items()}},
                        ["deadlock reachable: %s" % " ".join(w.transitions),
                         "dead marking: %r" % dead])
            return ("unknown", 1,
                    {"k": outcome.k, "reason": outcome.reason},
                    ["unknown at k=%d (%s; raise --bound)"
                     % (outcome.k, outcome.reason)])
        witness = find_deadlock(stg, bound=args.bound)
        if witness is None:
            return ("no-deadlock", 0, {},
                    ["no deadlock within %d steps" % args.bound])
        dead = find_deadlocks(stg.net, markings=[witness.final_marking])[0]
        return ("deadlock", 1,
                {"trace": list(witness.transitions),
                 "dead_marking": {p: n for p, n in dead.items()}},
                ["deadlock reachable: %s" % " ".join(witness.transitions),
                 "dead marking: %r" % dead])

    if args.property == "reach":
        witness = reach_marking(stg, target, bound=args.bound,
                                partial=args.cover)
        if witness is None:
            return ("unreachable", 0, {},
                    ["target not reachable within %d steps" % args.bound])
        return ("reached", 1,
                {"trace": list(witness.transitions),
                 "final_marking": {p: n for p, n
                                   in witness.final_marking.items()}},
                ["reached %r via: %s" % (witness.final_marking,
                                         " ".join(witness.transitions))])

    if args.property == "csc":
        conflict = csc_conflict(stg, bound=args.bound)
        if conflict is None:
            return ("no-conflict", 0, {},
                    ["no CSC conflict within %d steps" % args.bound])
        return ("conflict", 1,
                {"trace_a": list(conflict.trace_a.transitions),
                 "trace_b": list(conflict.trace_b.transitions)},
                [str(conflict),
                 "trace a: %s" % " ".join(conflict.trace_a.transitions),
                 "trace b: %s" % " ".join(conflict.trace_b.transitions)])

    # consistency
    witness = consistency_violation(stg, bound=args.bound)
    if witness is None:
        return ("consistent", 0, {},
                ["no consistency violation within %d steps" % args.bound])
    return ("violation", 1, {"trace": list(witness.transitions)},
            ["consistency violation: %s" % " ".join(witness.transitions)])


def cmd_sat_check(args) -> int:
    """SAT-based bounded model checking / k-induction (no state graph)."""
    from .petri import Marking

    stg = _load(args.spec)

    if args.engine == "portfolio":
        # delegate to the fault-tolerant racing layer (same properties,
        # portfolio verdict vocabulary — see docs/portfolio.md)
        if args.dimacs:
            print("error: --dimacs requires --engine sat", file=sys.stderr)
            return 2
        target = None
        if args.property == "reach":
            if not args.target:
                print("error: --property reach requires --target",
                      file=sys.stderr)
                return 2
            target = {p: 1 for p in args.target.split()}
        options = {"bound": args.bound, "max_k": args.bound}
        if target is not None:
            options["target"] = target
            options["cover"] = args.cover
        with _Telemetry(args) as tel:
            verdict, code, details, lines = _portfolio_verdict(
                stg, args.property, options)
        if args.json:
            details = dict(details, property=args.property,
                           bound=args.bound)
            print(json.dumps(tel.run_report("sat-check", args.spec,
                                            verdict, code, details),
                             sort_keys=True))
        else:
            for line in lines:
                print(line)
        return code

    if args.induction and args.property != "deadlock":
        # only the deadlock query has a k-induction proof path; silently
        # running plain BMC would dress a bounded miss up as a proof
        print("error: --induction is only supported for"
              " --property deadlock", file=sys.stderr)
        return 2

    target = None
    if args.property == "reach":
        if not args.target:
            print("error: --property reach requires --target", file=sys.stderr)
            return 2
        target = Marking({p: 1 for p in args.target.split()})

    lines: List[str] = []
    if args.dimacs:
        cnf = _sat_check_cnf(stg, args.property, args.bound,
                             target=target, cover=args.cover)
        comments = ["repro sat-check %s --property %s --bound %d"
                    % (stg.name, args.property, args.bound)]
        if args.induction:
            # the dump covers the bounded (base-case) query only; the
            # inductive step lives in a second, unanchored unrolling
            comments.append("bounded counterexample query only —"
                            " induction step not included")
        with open(args.dimacs, "w") as f:
            f.write(cnf.to_dimacs(comments=comments))
        lines.append("# wrote %s (%d vars, %d clauses%s)"
                     % (args.dimacs, cnf.num_vars, len(cnf.clauses),
                        ", base case only" if args.induction else ""))

    with _Telemetry(args) as tel:
        verdict, code, details, qlines = _sat_check_verdict(args, stg,
                                                            target)
    lines.extend(qlines)
    if args.json:
        details = dict(details, property=args.property, bound=args.bound)
        if args.dimacs:
            details["dimacs"] = args.dimacs
        print(json.dumps(tel.run_report("sat-check", args.spec, verdict,
                                        code, details), sort_keys=True))
    else:
        for line in lines:
            print(line)
    return code


def _bdd_check_verdict(args, stg, net):
    """Run one ``bdd-check`` query.

    Returns ``(verdict, exit_code, details, lines)`` exactly as
    :func:`_sat_check_verdict` does for ``sat-check``.
    """
    from .bdd import (
        DenseSymbolicReachability,
        SymbolicCSC,
        SymbolicReachability,
    )

    if args.query == "count":
        if args.encoding == "dense":
            dense = DenseSymbolicReachability(net)
            count = dense.count()
            details = {"reachable": count, "encoding": "dense",
                       "variables": dense.encoding.width,
                       "bdd_nodes": dense.bdd_size()}
            return ("counted", 0, details,
                    ["reachable codes: %d (dense: %d variables, %d BDD"
                     " nodes)" % (count, dense.encoding.width,
                                  dense.bdd_size())])
        sym = SymbolicReachability(net, place_order=args.order)
        sym.assert_safe()
        count = sym.count()
        details = {"reachable": count, "encoding": "naive",
                   "places": len(sym.places),
                   "bdd_nodes": sym.bdd_size()}
        return ("counted", 0, details,
                ["reachable markings: %d (%d places, %d BDD nodes)"
                 % (count, len(sym.places), sym.bdd_size())])

    if args.query == "deadlock":
        sym = SymbolicReachability(net, place_order=args.order)
        dead = sym.find_deadlock()
        if dead is None:
            count = sym.count()
            return ("deadlock-free", 0, {"reachable": count},
                    ["deadlock-free: proved by symbolic fixpoint"
                     " (%d reachable markings)" % count])
        return ("deadlock", 1,
                {"dead_marking": {p: n for p, n in dead.items()}},
                ["dead marking: %r" % dead])

    # csc
    analysis = SymbolicCSC(stg, place_order=args.order)
    if not analysis.has_conflict():
        return ("no-conflict", 0,
                {"conflicting_codes": 0,
                 "signals": list(analysis.signals)},
                ["CSC holds: no two reachable states share a code with"
                 " different non-input excitation"])
    parities = analysis.conflict_parities()
    lines = ["CSC conflict: %d conflicting code(s) over signals %s"
             % (len(parities), " ".join(analysis.signals))]
    lines.extend("  code (xor initial): %s" % "".join(map(str, vec))
                 for vec in parities)
    return ("conflict", 1,
            {"conflicting_codes": len(parities),
             "signals": list(analysis.signals),
             "parities": ["".join(map(str, vec)) for vec in parities]},
            lines)


def cmd_bdd_check(args) -> int:
    """Symbolic BDD fixpoint queries — no state graph (Section 2.2)."""
    stg = _load(args.spec)
    if args.engine == "portfolio":
        if args.query == "count":
            print("error: --query count has no portfolio mode (it is not"
                  " a verdict query)", file=sys.stderr)
            return 2
        if args.reduce:
            print("error: --reduce requires --engine bdd", file=sys.stderr)
            return 2
        with _Telemetry(args) as tel:
            verdict, code, details, lines = _portfolio_verdict(
                stg, args.query, {})
        if args.json:
            details = dict(details, query=args.query)
            print(json.dumps(tel.run_report("bdd-check", args.spec,
                                            verdict, code, details),
                             sort_keys=True))
        else:
            for line in lines:
                print(line)
        return code
    if args.encoding == "dense" and args.query != "count":
        print("error: --encoding dense is only supported for --query count",
              file=sys.stderr)
        return 2
    if args.reduce and args.query == "csc":
        print("error: --reduce applies to net-level queries"
              " (count, deadlock) only", file=sys.stderr)
        return 2

    with _Telemetry(args) as tel:
        net = stg.net
        if args.reduce:
            net = linear_reduce(net)
        verdict, code, details, lines = _bdd_check_verdict(args, stg, net)
    if args.json:
        details = dict(details, query=args.query)
        print(json.dumps(tel.run_report("bdd-check", args.spec, verdict,
                                        code, details), sort_keys=True))
    else:
        for line in lines:
            print(line)
    return code


def _portfolio_options(args, target=None) -> dict:
    """Translate CLI flags into :func:`repro.portfolio.check_*` options."""
    options = {"cross_validate": not getattr(args, "no_validate", False),
               "inline": bool(getattr(args, "inline", False))}
    if getattr(args, "deadline", None) is not None:
        options["deadline_s"] = args.deadline
    if getattr(args, "bound", None) is not None:
        options["bound"] = args.bound
    if getattr(args, "max_k", None) is not None:
        options["max_k"] = args.max_k
    if getattr(args, "max_states", None) is not None:
        options["max_states"] = args.max_states
    if getattr(args, "engines", None):
        options["engines"] = [e.strip() for e in args.engines.split(",")
                              if e.strip()]
    if target is not None:
        options["target"] = target
        options["cover"] = bool(getattr(args, "cover", False))
    return options


def _portfolio_verdict(stg, query: str, options: dict):
    """Run one portfolio query and flatten the :class:`Verdict` into the
    ``(verdict, exit_code, details, lines)`` shape all checkers share.

    Exit codes: 0 for the good answer, 1 for the bad or unknown one,
    2 for a flagged cross-validation disagreement (``inconsistent``).
    """
    from . import portfolio

    target = options.pop("target", None)
    cover = options.pop("cover", False)
    if query == "deadlock":
        verdict = portfolio.check_deadlock(stg, **options)
    elif query == "reach":
        verdict = portfolio.check_reach(stg, target or {}, cover=cover,
                                        **options)
    elif query == "csc":
        verdict = portfolio.check_csc(stg, **options)
    else:
        verdict = portfolio.check_consistency(stg, **options)

    if verdict.flagged:
        code = 2
    elif bool(verdict) and verdict.definitive:
        code = 0
    else:
        code = 1
    details = {
        "query": verdict.query,
        "engine": verdict.engine,
        "method": verdict.method,
        "definitive": verdict.definitive,
        "flagged": verdict.flagged,
        "validator": verdict.validator,
        "evidence": verdict.evidence,
        "attempts": verdict.attempts,
        "degradations": verdict.degradations,
        "robustness": dict(verdict.stats),
        "elapsed_s": round(verdict.elapsed_s, 6),
    }
    if verdict.witness is not None:
        details["witness"] = list(verdict.witness)
    if "disagreement" in verdict.details:
        details["disagreement"] = verdict.details["disagreement"]

    lines = ["%s (winner: %s/%s%s)"
             % (verdict.verdict, verdict.engine, verdict.method,
                ", validated by %s" % verdict.validator
                if verdict.validator else "")]
    if verdict.evidence:
        lines.append("evidence: %s" % verdict.evidence)
    if verdict.witness:
        lines.append("witness: %s" % " ".join(verdict.witness))
    if "disagreement" in verdict.details:
        lines.append("DISAGREEMENT: %s" % verdict.details["disagreement"])
    busy = {k: n for k, n in verdict.stats.items() if n}
    lines.append("robustness: %s"
                 % " ".join("%s=%d" % kv for kv in sorted(busy.items())))
    return verdict.verdict, code, details, lines


def cmd_check(args) -> int:
    """Portfolio model checking: race the engines, cross-validate the
    winner (see ``docs/portfolio.md``)."""
    from .portfolio import faults

    stg = _load(args.spec)
    target = None
    if args.query == "reach":
        if not args.target:
            print("error: --query reach requires --target", file=sys.stderr)
            return 2
        target = {p: 1 for p in args.target.split()}
        # a bad place name is a usage error, not an engine fault — catch
        # it here instead of letting every racer fail on it
        net = stg.net if hasattr(stg, "net") else stg
        for p in target:
            if p not in net.places:
                print("error: unknown place %r in target marking" % p,
                      file=sys.stderr)
                return 2

    options = _portfolio_options(args, target=target)
    if not args.portfolio and "engines" not in options:
        # single-slot mode: keep only the schedule's first engine (its
        # degradation ladder still applies) and skip worker processes
        from .ts import choose_engine
        options["engines"] = [choose_engine(stg, purpose="portfolio")[0]]
        options["inline"] = True

    installed = faults.install(args.faults) if args.faults else None
    try:
        with _Telemetry(args) as tel:
            verdict, code, details, lines = _portfolio_verdict(
                stg, args.query, options)
    finally:
        if installed is not None:
            faults.clear()
    if args.json:
        print(json.dumps(tel.run_report("check", args.spec, verdict,
                                        code, details), sort_keys=True))
    else:
        for line in lines:
            print(line)
    return code


def cmd_examples(args) -> int:
    """List the bundled example specifications."""
    for name in sorted(ALL_EXAMPLES):
        stg = ALL_EXAMPLES[name]()
        print("%-32s in=%s out=%s %s"
              % (name, ",".join(stg.inputs), ",".join(stg.outputs),
                 stg.net.stats()))
    return 0


def cmd_obs_report(args) -> int:
    """Span-tree flamegraph of a recorded trace (``repro obs report``)."""
    from .obs import analyze

    try:
        records = analyze.read_trace(args.trace)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(analyze.render_report(records))
    if args.coverage:
        share = analyze.coverage(records, args.coverage)
        print("coverage(%s): %.1f%% of wall-clock attributed to child"
              " spans" % (args.coverage, share * 100.0))
    return 0


def cmd_obs_diff(args) -> int:
    """Per-span comparison of two traces (``repro obs diff``)."""
    import os

    from .obs import analyze

    try:
        a = analyze.read_trace(args.a)
        b = analyze.read_trace(args.b)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(analyze.render_diff(a, b,
                              a_label=os.path.basename(args.a) or "a",
                              b_label=os.path.basename(args.b) or "b"))
    return 0


def cmd_obs_regress(args) -> int:
    """Noise-aware benchmark regression check (``repro obs regress``).

    Exit codes: 0 when every benchmark is within thresholds, 1 when at
    least one regressed beyond recorded noise, 2 on unloadable or
    schema-invalid input.
    """
    from .obs import analyze

    try:
        baseline = analyze.load_baseline(args.baseline)
        docs = [analyze.load_bench_file(p) for p in args.bench]
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    entries = analyze.compare_bench(docs, baseline, rel_tol=args.rel_tol,
                                    sigma=args.sigma,
                                    min_abs_s=args.min_abs)
    print(analyze.render_regress(entries))
    return 1 if any(e["status"] == "regression" for e in entries) else 0


def cmd_obs_baseline(args) -> int:
    """Distil ``BENCH_*.json`` files into a committed baseline document
    (``repro obs baseline``)."""
    from .obs import analyze

    try:
        docs = [analyze.load_bench_file(p) for p in args.bench]
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    doc = analyze.make_baseline(docs)
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print("# wrote %s (%d suites)" % (args.output, len(doc["suites"])))
    else:
        print(text, end="")
    return 0


def cmd_obs_lint(args) -> int:
    """Trace-schema lint (``repro obs lint``) — same checks and exit
    codes as the ``python -m repro.obs`` module alias."""
    from .obs.__main__ import main as lint_main

    return lint_main(args.traces)


def _add_telemetry_flags(p: argparse.ArgumentParser,
                         json_flag: bool = False) -> None:
    """Attach the shared observability flags to a subcommand parser.

    ``--stats`` and ``--trace`` are available on every instrumented
    command; ``--json`` (machine-readable run report) only where the
    command defines a report shape (``sat-check`` / ``bdd-check``).
    """
    p.add_argument("--stats", action="store_true",
                   help="print a per-span stats table to stderr"
                        " (see docs/observability.md)")
    p.add_argument("--trace", metavar="FILE",
                   help="stream span records to FILE as JSONL"
                        " (repro-trace/1 schema)")
    if json_flag:
        p.add_argument("--json", action="store_true",
                       help="print a machine-readable run report"
                            " (repro-run-report/1) instead of the human"
                            " output")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STG-based asynchronous interface analysis and"
                    " synthesis (DAC'98 methodology). SPEC is a .g file or"
                    " a bundled example name (see `examples`).")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="implementability report (Section 2)")
    p.add_argument("spec")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("states", help="binary-coded state graph (Figure 4)")
    p.add_argument("spec")
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_states)

    p = sub.add_parser("waveform", help="ASCII timing diagram (Figure 2)")
    p.add_argument("spec")
    p.set_defaults(func=cmd_waveform)

    p = sub.add_parser("reduce", help="linear reductions + SM components"
                                      " (Figure 6)")
    p.add_argument("spec")
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_reduce)

    p = sub.add_parser("resolve", help="CSC resolution by signal insertion"
                                       " (Section 3.1)")
    p.add_argument("spec")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_resolve)

    p = sub.add_parser("synthesize", help="logic synthesis (Section 3)")
    p.add_argument("spec")
    p.add_argument("--arch", choices=sorted(_ARCHITECTURES), default="cg",
                   help="complex gates (cg), generalized C (gc), RS latch"
                        " (sr)")
    p.add_argument("--decompose", action="store_true",
                   help="two-input hazard-free decomposition (Section 3.4)")
    p.add_argument("--verilog", action="store_true")
    p.add_argument("--verify", action="store_true",
                   help="verify the circuit against the specification")
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser("dot", help="Graphviz DOT of the Petri net")
    p.add_argument("spec")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("separation", help="max time separation of events"
                                          " (Section 5)")
    p.add_argument("spec")
    p.add_argument("early")
    p.add_argument("late")
    p.add_argument("--delays", required=True,
                   help="JSON file: {transition: [min, max], ...}")
    p.add_argument("--offset", type=int, default=0,
                   help="occurrence offset of `early` relative to `late`")
    p.set_defaults(func=cmd_separation)

    p = sub.add_parser("testbench", help="Verilog netlist + self-checking"
                                         " testbench (Section 6, ref [27])")
    p.add_argument("spec")
    p.add_argument("--arch", choices=sorted(_ARCHITECTURES), default="cg")
    p.add_argument("--cycles", type=int, default=4)
    p.set_defaults(func=cmd_testbench)

    p = sub.add_parser("coverability", help="Karp–Miller boundedness check")
    p.add_argument("spec")
    p.set_defaults(func=cmd_coverability)

    p = sub.add_parser("simulate", help="Monte-Carlo timed simulation")
    p.add_argument("spec")
    p.add_argument("--delays", required=True)
    p.add_argument("--cycles", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("sat-check", help="SAT-based bounded model checking"
                                         " / k-induction (no state graph)")
    p.add_argument("spec")
    p.add_argument("--property", choices=["deadlock", "reach", "csc",
                                          "consistency"],
                   default="deadlock")
    p.add_argument("--bound", type=int, default=20,
                   help="BMC unrolling depth / max induction k")
    p.add_argument("--induction", action="store_true",
                   help="deadlock: prove freedom by k-induction instead of"
                        " a bounded search")
    p.add_argument("--target",
                   help="reach: space-separated marked places")
    p.add_argument("--cover", action="store_true",
                   help="reach: cover query (only marked places"
                        " constrained)")
    p.add_argument("--dimacs", metavar="FILE",
                   help="dump the unrolled CNF in DIMACS format")
    p.add_argument("--engine", choices=["sat", "portfolio"], default="sat",
                   help="portfolio: race all applicable engines instead of"
                        " running SAT alone (see `check`)")
    _add_telemetry_flags(p, json_flag=True)
    p.set_defaults(func=cmd_sat_check)

    p = sub.add_parser("bdd-check", help="symbolic BDD fixpoint queries"
                                         " (no state graph)")
    p.add_argument("spec")
    p.add_argument("--query", choices=["count", "deadlock", "csc"],
                   default="count")
    p.add_argument("--encoding", choices=["naive", "dense"], default="naive",
                   help="count: state encoding (dense = SM-component codes)")
    p.add_argument("--order", choices=["dfs", "sorted"], default="dfs",
                   help="BDD variable-order heuristic")
    p.add_argument("--reduce", action="store_true",
                   help="linear-reduce the net first (count/deadlock only)")
    p.add_argument("--engine", choices=["bdd", "portfolio"], default="bdd",
                   help="portfolio: race all applicable engines instead of"
                        " running the BDD fixpoint alone (see `check`)")
    _add_telemetry_flags(p, json_flag=True)
    p.set_defaults(func=cmd_bdd_check)

    p = sub.add_parser("check", help="fault-tolerant portfolio model"
                                     " checking (races the engines)")
    p.add_argument("spec")
    p.add_argument("--query", choices=["deadlock", "reach", "csc",
                                       "consistency"],
                   default="deadlock")
    p.add_argument("--portfolio", action="store_true",
                   help="race every applicable engine in worker processes"
                        " (default: the auto-chosen engine alone,"
                        " in-process)")
    p.add_argument("--engines",
                   help="comma-separated engine slots to race (overrides"
                        " the auto schedule; implies racing)")
    p.add_argument("--target",
                   help="reach: space-separated marked places")
    p.add_argument("--cover", action="store_true",
                   help="reach: cover query (only marked places"
                        " constrained)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="per-worker wall-clock deadline")
    p.add_argument("--bound", type=int,
                   help="BMC depth for bounded ladder rungs")
    p.add_argument("--max-k", type=int, dest="max_k",
                   help="k-induction depth limit")
    p.add_argument("--max-states", type=int, dest="max_states",
                   help="state budget for explicit ladder rungs")
    p.add_argument("--inline", action="store_true",
                   help="run ladders sequentially in-process (no worker"
                        " processes)")
    p.add_argument("--no-validate", action="store_true", dest="no_validate",
                   help="skip cross-validation of the winning verdict")
    p.add_argument("--faults", metavar="SPEC",
                   help="install a fault-injection plan for this run"
                        " (REPRO_FAULTS syntax, e.g. 'kill:attempt=0')")
    _add_telemetry_flags(p, json_flag=True)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("examples", help="list bundled specifications")
    p.set_defaults(func=cmd_examples)

    p = sub.add_parser("obs", help="telemetry analysis: trace reports,"
                                   " diffs, lint, benchmark regression")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser("report", help="span-tree flamegraph of a"
                                          " JSONL trace")
    q.add_argument("trace", help="repro-trace/1 JSONL file (from --trace)")
    q.add_argument("--coverage", metavar="SPAN",
                   help="also print how much of SPAN's wall-clock its"
                        " child spans cover (e.g. portfolio.race)")
    q.set_defaults(func=cmd_obs_report)

    q = obs_sub.add_parser("diff", help="compare two traces per span name")
    q.add_argument("a", help="baseline trace (JSONL)")
    q.add_argument("b", help="candidate trace (JSONL)")
    q.set_defaults(func=cmd_obs_diff)

    q = obs_sub.add_parser("regress", help="judge BENCH_*.json against the"
                                           " committed baseline")
    q.add_argument("bench", nargs="+",
                   help="BENCH_<suite>.json files (repro-bench/1 or /2)")
    q.add_argument("--baseline", default="benchmarks/baselines.json",
                   help="repro-bench-baseline/1 document (default:"
                        " benchmarks/baselines.json)")
    q.add_argument("--rel-tol", type=float, dest="rel_tol", default=0.15,
                   help="relative threshold as a fraction of the baseline"
                        " mean (default 0.15)")
    q.add_argument("--sigma", type=float, default=3.0,
                   help="noise threshold in combined standard deviations"
                        " (default 3.0)")
    q.add_argument("--min-abs", type=float, dest="min_abs", default=0.001,
                   help="absolute floor in seconds below which movements"
                        " never count (default 0.001)")
    q.set_defaults(func=cmd_obs_regress)

    q = obs_sub.add_parser("baseline", help="distil BENCH_*.json files into"
                                            " a baseline document")
    q.add_argument("bench", nargs="+",
                   help="BENCH_<suite>.json files (later files win on"
                        " suite collisions)")
    q.add_argument("-o", "--output",
                   help="write the baseline here instead of stdout")
    q.set_defaults(func=cmd_obs_baseline)

    q = obs_sub.add_parser("lint", help="validate traces against the"
                                        " repro-trace/1 schema")
    q.add_argument("traces", nargs="+",
                   help="JSONL trace files to validate")
    q.set_defaults(func=cmd_obs_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
