"""Boolean expression AST, parser and printer.

Expressions are used to represent gate functions and synthesized
equations.  Two surface syntaxes are supported:

* Python style: ``DSr & (csc0 | ~LDTACK)``
* eqn style (as printed in the paper): ``DSr (csc0 + LDTACK')``

with implicit AND by juxtaposition, ``+``/``|`` for OR, ``~``/``!`` prefix
or ``'`` postfix for NOT.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ParseError
from .cube import Cube


class BoolExpr:
    """Base class for boolean expressions."""

    def eval(self, env: Dict[str, int]) -> int:
        """Evaluate under an assignment (missing variables raise KeyError)."""
        raise NotImplementedError

    def support(self) -> FrozenSet[str]:
        """The set of variable names appearing in the expression."""
        raise NotImplementedError

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And.of(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or.of(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    # printing ---------------------------------------------------------- #

    def to_str(self, style: str = "python") -> str:
        """Render in the given surface syntax ("python" or "eqn")."""
        raise NotImplementedError

    def __str__(self):
        return self.to_str("eqn")

    def __repr__(self):
        return "BoolExpr(%s)" % self.to_str("python")

    def __eq__(self, other):
        return isinstance(other, BoolExpr) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def _key(self):
        raise NotImplementedError


class Const(BoolExpr):
    """Boolean constant 0 or 1."""

    def __init__(self, value: int):
        self.value = 1 if value else 0

    def eval(self, env):
        return self.value

    def support(self):
        return frozenset()

    def to_str(self, style="python"):
        """Render the constant."""
        return str(self.value)

    def _key(self):
        return ("const", self.value)


TRUE = Const(1)
FALSE = Const(0)


class Var(BoolExpr):
    """A named variable."""

    def __init__(self, name: str):
        self.name = name

    def eval(self, env):
        return 1 if env[self.name] else 0

    def support(self):
        return frozenset([self.name])

    def to_str(self, style="python"):
        """Render the variable name."""
        return self.name

    def _key(self):
        return ("var", self.name)


class Not(BoolExpr):
    """Negation."""

    def __init__(self, arg: BoolExpr):
        self.arg = arg

    def eval(self, env):
        return 1 - self.arg.eval(env)

    def support(self):
        return self.arg.support()

    def to_str(self, style="python"):
        """Render the negation (postfix quote in eqn style)."""
        inner = self.arg.to_str(style)
        if style == "eqn":
            if isinstance(self.arg, (Var, Const)):
                return inner + "'"
            return "(%s)'" % inner
        if isinstance(self.arg, (Var, Const)):
            return "~" + inner
        return "~(%s)" % inner

    def _key(self):
        return ("not", self.arg._key())


class And(BoolExpr):
    """Conjunction of two or more arguments."""

    def __init__(self, args: Sequence[BoolExpr]):
        self.args = tuple(args)

    @staticmethod
    def of(*args: BoolExpr) -> BoolExpr:
        flat: List[BoolExpr] = []
        for a in args:
            if isinstance(a, And):
                flat.extend(a.args)
            else:
                flat.append(a)
        if any(a == FALSE for a in flat):
            return FALSE
        flat = [a for a in flat if a != TRUE]
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return And(flat)

    def eval(self, env):
        return 1 if all(a.eval(env) for a in self.args) else 0

    def support(self):
        return frozenset().union(*(a.support() for a in self.args))

    def to_str(self, style="python"):
        """Render the conjunction (juxtaposition in eqn style)."""
        parts = []
        for a in self.args:
            s = a.to_str(style)
            if isinstance(a, Or):
                s = "(%s)" % s
            parts.append(s)
        return (" ".join(parts)) if style == "eqn" else " & ".join(parts)

    def _key(self):
        return ("and", tuple(a._key() for a in self.args))


class Or(BoolExpr):
    """Disjunction of two or more arguments."""

    def __init__(self, args: Sequence[BoolExpr]):
        self.args = tuple(args)

    @staticmethod
    def of(*args: BoolExpr) -> BoolExpr:
        flat: List[BoolExpr] = []
        for a in args:
            if isinstance(a, Or):
                flat.extend(a.args)
            else:
                flat.append(a)
        if any(a == TRUE for a in flat):
            return TRUE
        flat = [a for a in flat if a != FALSE]
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(flat)

    def eval(self, env):
        return 1 if any(a.eval(env) for a in self.args) else 0

    def support(self):
        return frozenset().union(*(a.support() for a in self.args))

    def to_str(self, style="python"):
        """Render the disjunction ('+' in eqn style)."""
        sep = " + " if style == "eqn" else " | "
        return sep.join(a.to_str(style) for a in self.args)

    def _key(self):
        return ("or", tuple(a._key() for a in self.args))


# ---------------------------------------------------------------------- #
# parsing
# ---------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\[\].]*)|(?P<op>[()&|+*~!'])|"
    r"(?P<const>[01])(?![0-9]))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip() == "":
                break
            raise ParseError("cannot tokenize %r at position %d" % (text, pos))
        tokens.append(m.group("ident") or m.group("op") or m.group("const"))
        pos = m.end()
    return tokens


def parse_expr(text: str) -> BoolExpr:
    """Parse a boolean expression in either surface syntax."""
    tokens = _tokenize(text)
    pos = [0]

    def peek() -> Optional[str]:
        return tokens[pos[0]] if pos[0] < len(tokens) else None

    def take() -> str:
        tok = tokens[pos[0]]
        pos[0] += 1
        return tok

    def parse_or() -> BoolExpr:
        terms = [parse_and()]
        while peek() in ("+", "|"):
            take()
            terms.append(parse_and())
        return Or.of(*terms)

    def parse_and() -> BoolExpr:
        factors = [parse_factor()]
        while True:
            nxt = peek()
            if nxt in ("&", "*"):
                take()
                factors.append(parse_factor())
            elif nxt is not None and (nxt == "(" or nxt == "~" or nxt == "!"
                                      or nxt not in ("+", "|", ")", "'")):
                factors.append(parse_factor())
            else:
                break
        return And.of(*factors)

    def parse_factor() -> BoolExpr:
        nxt = peek()
        if nxt is None:
            raise ParseError("unexpected end of expression")
        if nxt in ("~", "!"):
            take()
            return _postfix(Not(parse_factor()))
        if nxt == "(":
            take()
            inner = parse_or()
            if peek() != ")":
                raise ParseError("missing closing parenthesis")
            take()
            return _postfix(inner)
        if nxt in ("0", "1"):
            take()
            return _postfix(Const(int(nxt)))
        take()
        return _postfix(Var(nxt))

    def _postfix(expr: BoolExpr) -> BoolExpr:
        while peek() == "'":
            take()
            expr = Not(expr)
        return expr

    result = parse_or()
    if pos[0] != len(tokens):
        raise ParseError("trailing tokens in %r" % text)
    return result


# ---------------------------------------------------------------------- #
# conversions and semantic checks
# ---------------------------------------------------------------------- #

def from_cubes(cubes: Iterable[Cube], names: Sequence[str]) -> BoolExpr:
    """Build an SOP expression from positional cubes and variable names."""
    terms: List[BoolExpr] = []
    for cube in cubes:
        literals: List[BoolExpr] = []
        for value, name in zip(cube, names):
            if value is None:
                continue
            literals.append(Var(name) if value else Not(Var(name)))
        terms.append(And.of(*literals) if literals else TRUE)
    return Or.of(*terms) if terms else FALSE


def all_assignments(names: Sequence[str]):
    """Iterate over all 0/1 assignments of the given variables."""
    for values in itertools.product((0, 1), repeat=len(names)):
        yield dict(zip(names, values))


def equivalent(a: BoolExpr, b: BoolExpr,
               care: Optional[Iterable[Dict[str, int]]] = None,
               max_vars: int = 22) -> bool:
    """Semantic equivalence by exhaustive evaluation.

    If ``care`` is given, equality is only required on those assignments
    (don't-care equivalence — how the paper's equations are compared with
    synthesized ones on the reachable codes).
    """
    if care is not None:
        return all(a.eval(env) == b.eval(env) for env in care)
    names = sorted(a.support() | b.support())
    if len(names) > max_vars:
        raise ParseError("equivalence check over %d variables refused"
                         % len(names))
    return all(a.eval(env) == b.eval(env) for env in all_assignments(names))


def expr_to_cubes(expr: BoolExpr, names: Sequence[str]) -> List[Cube]:
    """Exhaustive SOP extraction: one cube per satisfying assignment,
    then a quick merge via Quine–McCluskey."""
    from .quine_mccluskey import minimize

    onset = []
    for i, env in enumerate(all_assignments(names)):
        if expr.eval(env):
            onset.append(i)
    return minimize(onset, [], len(names))
