"""Exact hazard-free two-level minimization for multiple-input changes
(paper Section 3.3, ref [22]: Nowick & Dill).

"Recent development in [22] shows that if the so-called Fundamental mode
is acceptable (input cannot change until all internal circuit activity
stabilizes), then most of the known methods of logic minimization can be
gracefully extended to asynchronous hazard-free minimization."

The specification is a boolean function plus a set of *specified input
transitions*, each a monotonic multiple-input change from a start minterm
to an end minterm.  A sum-of-products cover is **hazard-free** for the
transitions iff:

* every ``1 -> 1`` transition's cube is contained in a *single* product
  (otherwise a static-1 hazard is possible during the hand-over);
* for every ``1 -> 0`` transition, any product intersecting the transition
  cube contains the *start* point (otherwise a product can glitch on);
* for every ``0 -> 1`` transition, any product intersecting the transition
  cube contains the *end* point;
* ``0 -> 0`` transitions must not intersect any product at all (their
  cubes belong to the OFF set).

Minimization generates the maximal implicants satisfying these conditions
(*dhf-prime implicants*) by shrinking ordinary primes away from violated
dynamic transitions, then solves the covering problem whose rows are the
required cubes of the ``1 -> 1`` transitions plus the reachable ON
minterms.  A hazard-free cover does not always exist (Nowick–Dill);
:class:`~repro.errors.SynthesisError` is raised in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from .cube import (
    Cube,
    cube_contains,
    cube_covers,
    cube_minterms,
    cubes_intersect,
    int_to_minterm,
    minterm_to_int,
)
from .quine_mccluskey import prime_implicants, _implicant_to_cube


Minterm = Tuple[int, ...]


@dataclass(frozen=True)
class InputTransition:
    """A specified monotonic multiple-input change.

    ``start`` and ``end`` are minterms; ``f_start``/``f_end`` the required
    function values at the endpoints.
    """

    start: Minterm
    end: Minterm
    f_start: int
    f_end: int

    @property
    def cube(self) -> Cube:
        """The transition cube [start, end] (supercube of the endpoints)."""
        return tuple(s if s == e else None
                     for s, e in zip(self.start, self.end))

    @property
    def kind(self) -> str:
        return "%d->%d" % (self.f_start, self.f_end)


def classify(transitions: Iterable[InputTransition]):
    """Split transitions by kind: (t11, t10, t01, t00)."""
    t11, t10, t01, t00 = [], [], [], []
    for t in transitions:
        {("1->1"): t11, ("1->0"): t10,
         ("0->1"): t01, ("0->0"): t00}[t.kind].append(t)
    return t11, t10, t01, t00


def onset_offset(transitions: Sequence[InputTransition], n: int
                 ) -> Tuple[Set[int], Set[int]]:
    """ON and OFF minterm sets implied by the specified transitions.

    ON: all minterms of 1->1 cubes, starts of 1->0, ends of 0->1.
    OFF: all minterms of 0->0 cubes, ends of 1->0, starts of 0->1.
    """
    t11, t10, t01, t00 = classify(transitions)
    onset: Set[int] = set()
    offset: Set[int] = set()
    for t in t11:
        onset.update(minterm_to_int(m) for m in cube_minterms(t.cube))
    for t in t00:
        offset.update(minterm_to_int(m) for m in cube_minterms(t.cube))
    for t in t10:
        onset.add(minterm_to_int(t.start))
        offset.add(minterm_to_int(t.end))
    for t in t01:
        offset.add(minterm_to_int(t.start))
        onset.add(minterm_to_int(t.end))
    conflict = onset & offset
    if conflict:
        raise SynthesisError(
            "inconsistent transition specification: minterms %s required"
            " both ON and OFF" % sorted(conflict))
    return onset, offset


def _dynamic_constraints(transitions: Sequence[InputTransition]):
    """(transition cube, required endpoint) pairs for dynamic transitions."""
    t11, t10, t01, _ = classify(transitions)
    constraints = []
    for t in t10:
        constraints.append((t.cube, t.start))
    for t in t01:
        constraints.append((t.cube, t.end))
    return constraints


def is_dhf_implicant(cube: Cube,
                     transitions: Sequence[InputTransition]) -> bool:
    """Dynamic-hazard-free implicant test: for every dynamic transition,
    intersecting the transition cube implies containing its required
    endpoint."""
    for tcube, endpoint in _dynamic_constraints(transitions):
        if cubes_intersect(cube, tcube) and not cube_contains(cube, endpoint):
            return False
    return True


def dhf_prime_implicants(transitions: Sequence[InputTransition],
                         n: int) -> List[Cube]:
    """All maximal dynamic-hazard-free implicants.

    Ordinary primes of (ON, DC) are shrunk away from every violated
    dynamic transition cube (one variable restriction per fixed literal of
    the transition cube), recursively; maximal survivors are kept.
    """
    onset, offset = onset_offset(transitions, n)
    dcset = set(range(1 << n)) - onset - offset
    primes = [_implicant_to_cube(p, n)
              for p in prime_implicants(sorted(onset), sorted(dcset), n)]

    results: Set[Cube] = set()
    seen: Set[Cube] = set()
    stack: List[Cube] = list(primes)
    constraints = _dynamic_constraints(transitions)
    while stack:
        cube = stack.pop()
        if cube in seen:
            continue
        seen.add(cube)
        violated = None
        for tcube, endpoint in constraints:
            if cubes_intersect(cube, tcube) and \
                    not cube_contains(cube, endpoint):
                violated = tcube
                break
        if violated is None:
            results.add(cube)
            continue
        # shrink: for every position where the transition cube is fixed,
        # restrict our cube to the complementary value (making it disjoint
        # from the transition cube in that variable)
        for pos, value in enumerate(violated):
            if value is None:
                continue
            if cube[pos] is not None:
                continue  # already fixed; cannot flip without moving
            shrunk = list(cube)
            shrunk[pos] = 1 - value
            stack.append(tuple(shrunk))
    # keep only maximal cubes
    maximal: List[Cube] = []
    for cube in sorted(results, key=lambda c: -sum(v is None for v in c)):
        if not any(cube_covers(other, cube) and other != cube
                   for other in results):
            maximal.append(cube)
    maximal.sort(key=lambda c: tuple(-1 if v is None else v for v in c))
    return maximal


def required_cubes(transitions: Sequence[InputTransition]) -> List[Cube]:
    """The 1->1 transition cubes, each of which must lie inside a single
    product of any hazard-free cover."""
    t11, _, _, _ = classify(transitions)
    return [t.cube for t in t11]


def minimize_hazard_free(transitions: Sequence[InputTransition],
                         n: int) -> List[Cube]:
    """Exact minimum hazard-free SOP cover for the specified transitions.

    Raises :class:`SynthesisError` when no hazard-free cover exists (some
    required cube cannot be covered by any dhf implicant).
    """
    onset, offset = onset_offset(transitions, n)
    if not onset:
        return []
    candidates = dhf_prime_implicants(transitions, n)
    requirements: List[Tuple[str, object]] = []
    for cube in required_cubes(transitions):
        requirements.append(("cube", cube))
    for m in sorted(onset):
        requirements.append(("minterm", m))

    # build covering table
    table: List[FrozenSet[int]] = []
    for kind, payload in requirements:
        if kind == "cube":
            covering = frozenset(
                i for i, c in enumerate(candidates)
                if cube_covers(c, payload))
        else:
            point = int_to_minterm(payload, n)
            covering = frozenset(
                i for i, c in enumerate(candidates)
                if cube_contains(c, point))
        if not covering:
            raise SynthesisError(
                "no hazard-free cover exists: requirement %r uncoverable"
                % (payload,))
        table.append(covering)

    # essential then Petrick (reusing the QM machinery's approach)
    chosen: Set[int] = set()
    for covering in table:
        if len(covering) == 1:
            chosen.add(next(iter(covering)))
    remaining = {idx: covering for idx, covering in enumerate(table)
                 if not (covering & chosen)}
    if remaining:
        from .quine_mccluskey import _greedy_cover, _petrick

        chart = {idx: covering for idx, covering in remaining.items()}
        solutions = _petrick(chart)
        if solutions is None:
            chosen |= _greedy_cover(chart)
        else:
            def cost(solution: Set[int]):
                total = chosen | solution
                literals = sum(
                    sum(1 for v in candidates[i] if v is not None)
                    for i in total)
                return (len(total), literals, tuple(sorted(total)))

            chosen |= min(solutions, key=cost)

    cover = [candidates[i] for i in sorted(chosen)]
    problems = check_cover_hazard_free(cover, transitions)
    if problems:
        raise SynthesisError("internal error: minimized cover not hazard"
                             "-free: %s" % problems[:3])
    return cover


def check_cover_hazard_free(cover: Sequence[Cube],
                            transitions: Sequence[InputTransition]
                            ) -> List[str]:
    """Independent checker for the hazard-freedom conditions.

    Returns human-readable violations (empty list = hazard-free cover for
    the specified transitions).
    """
    problems: List[str] = []
    t11, t10, t01, t00 = classify(transitions)
    for t in t11:
        if not any(cube_covers(c, t.cube) for c in cover):
            problems.append("static-1 hazard: no single product covers"
                            " transition %s -> %s" % (t.start, t.end))
    for t in t10:
        for c in cover:
            if cubes_intersect(c, t.cube) and not cube_contains(c, t.start):
                problems.append(
                    "dynamic hazard: product %r intersects 1->0 transition"
                    " %s -> %s without its start" % (c, t.start, t.end))
    for t in t01:
        for c in cover:
            if cubes_intersect(c, t.cube) and not cube_contains(c, t.end):
                problems.append(
                    "dynamic hazard: product %r intersects 0->1 transition"
                    " %s -> %s without its end" % (c, t.start, t.end))
    for t in t00:
        for c in cover:
            if cubes_intersect(c, t.cube):
                problems.append(
                    "product %r intersects 0->0 transition %s -> %s"
                    % (c, t.start, t.end))
    return problems
