"""Cube algebra for two-level logic.

A cube over ``n`` positional variables is a tuple with entries ``0``, ``1``
or ``None`` (don't-care, printed ``-``).  Cubes denote conjunctions of
literals; a list of cubes denotes their disjunction (a cover / SOP form).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

Cube = Tuple[Optional[int], ...]


def cube_from_str(text: str) -> Cube:
    """Parse ``"10-"`` into ``(1, 0, None)``."""
    mapping = {"0": 0, "1": 1, "-": None}
    return tuple(mapping[c] for c in text.strip())


def cube_to_str(cube: Cube) -> str:
    """Render ``(1, 0, None)`` as ``"10-"``."""
    return "".join("-" if v is None else str(v) for v in cube)


def cube_contains(cube: Cube, minterm: Sequence[int]) -> bool:
    """True iff the minterm (0/1 vector) lies in the cube."""
    return all(c is None or c == m for c, m in zip(cube, minterm))


def cube_covers(big: Cube, small: Cube) -> bool:
    """True iff every point of ``small`` lies in ``big``."""
    return all(b is None or b == s for b, s in zip(big, small))


def cubes_intersect(a: Cube, b: Cube) -> bool:
    """True iff the two cubes share at least one minterm."""
    return all(x is None or y is None or x == y for x, y in zip(a, b))


def cube_intersection(a: Cube, b: Cube) -> Optional[Cube]:
    """The intersection cube, or None if disjoint."""
    result = []
    for x, y in zip(a, b):
        if x is None:
            result.append(y)
        elif y is None or x == y:
            result.append(x)
        else:
            return None
    return tuple(result)


def cube_minterms(cube: Cube) -> Iterator[Tuple[int, ...]]:
    """Enumerate the minterms of a cube (2^free_positions of them)."""
    free = [i for i, v in enumerate(cube) if v is None]
    base = [0 if v is None else v for v in cube]
    for mask in range(1 << len(free)):
        point = list(base)
        for k, idx in enumerate(free):
            point[idx] = (mask >> k) & 1
        yield tuple(point)


def cube_size(cube: Cube) -> int:
    """Number of minterms in the cube."""
    return 1 << sum(1 for v in cube if v is None)


def literal_count(cube: Cube) -> int:
    """Number of fixed literals (the cost measure for covers)."""
    return sum(1 for v in cube if v is not None)


def cover_contains(cover: Iterable[Cube], minterm: Sequence[int]) -> bool:
    """True iff some cube of the cover contains the minterm."""
    return any(cube_contains(c, minterm) for c in cover)


def cover_to_str(cover: Iterable[Cube]) -> str:
    """Multi-cube cover as comma-separated cube strings."""
    return ", ".join(cube_to_str(c) for c in cover)


def minterm_to_int(minterm: Sequence[int]) -> int:
    """Binary vector (MSB first) to integer."""
    value = 0
    for bit in minterm:
        value = (value << 1) | bit
    return value


def int_to_minterm(value: int, width: int) -> Tuple[int, ...]:
    """Integer to binary vector (MSB first)."""
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))
