"""Two-level boolean minimization: cube algebra, Quine–McCluskey with
Petrick covering, expression AST and parser (substrate for Section 3)."""

from .cube import (
    Cube,
    cover_contains,
    cover_to_str,
    cube_contains,
    cube_covers,
    cube_from_str,
    cube_intersection,
    cube_minterms,
    cube_size,
    cube_to_str,
    cubes_intersect,
    int_to_minterm,
    literal_count,
    minterm_to_int,
)
from .expr import (
    And,
    BoolExpr,
    Const,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    all_assignments,
    equivalent,
    expr_to_cubes,
    from_cubes,
    parse_expr,
)
from .quine_mccluskey import minimize, prime_implicants, verify_cover
from .espresso import espresso
from .hazardfree import (
    InputTransition,
    check_cover_hazard_free,
    dhf_prime_implicants,
    is_dhf_implicant,
    minimize_hazard_free,
)

__all__ = [
    "Cube", "cover_contains", "cover_to_str", "cube_contains", "cube_covers",
    "cube_from_str", "cube_intersection", "cube_minterms", "cube_size",
    "cube_to_str", "cubes_intersect", "int_to_minterm", "literal_count",
    "minterm_to_int",
    "And", "BoolExpr", "Const", "FALSE", "Not", "Or", "TRUE", "Var",
    "all_assignments", "equivalent", "expr_to_cubes", "from_cubes",
    "parse_expr",
    "minimize", "prime_implicants", "verify_cover",
    "espresso",
    "InputTransition", "check_cover_hazard_free", "dhf_prime_implicants",
    "is_dhf_implicant", "minimize_hazard_free",
]
