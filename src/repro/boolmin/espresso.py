"""Heuristic two-level minimization (ESPRESSO-style EXPAND / IRREDUNDANT /
REDUCE loop).

The exact Quine–McCluskey/Petrick engine
(:mod:`repro.boolmin.quine_mccluskey`) is the reference used throughout
the reproduction; real CAD flows use heuristic minimizers when the exact
covering problem explodes.  This module provides such an engine over the
same minterm-level interface, so the two can be compared directly:

* **EXPAND** grows each cube literal by literal while it stays disjoint
  from the OFF-set, absorbing other cubes on the way;
* **IRREDUNDANT** greedily drops cubes whose ON minterms are covered by
  the rest;
* **REDUCE** shrinks each cube to the supercube of the ON minterms only
  it covers, giving EXPAND a different starting point next iteration.

The result is always a correct cover (asserted by property tests against
:func:`~repro.boolmin.quine_mccluskey.verify_cover`) with cube count no
better than the exact minimum — the benchmark suite measures the gap and
the speed difference.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .cube import (
    Cube,
    cube_contains,
    cube_covers,
    cube_minterms,
    int_to_minterm,
    minterm_to_int,
)


def _cube_off_intersects(cube: Cube, offset: Set[int], n: int) -> bool:
    """Does the cube contain any OFF minterm?  (Enumerates the smaller of
    the cube or the OFF-set.)"""
    free = sum(1 for v in cube if v is None)
    if (1 << free) <= len(offset):
        return any(minterm_to_int(m) in offset for m in cube_minterms(cube))
    return any(cube_contains(cube, int_to_minterm(m, n)) for m in offset)


def expand_cube(cube: Cube, offset: Set[int], n: int) -> Cube:
    """Raise literals (in a deterministic order) while staying disjoint
    from the OFF-set."""
    current = list(cube)
    for pos in range(n):
        if current[pos] is None:
            continue
        trial = list(current)
        trial[pos] = None
        if not _cube_off_intersects(tuple(trial), offset, n):
            current = trial
    return tuple(current)


def irredundant(cover: Sequence[Cube], onset: Set[int], n: int) -> List[Cube]:
    """Greedily drop cubes whose ON minterms are covered elsewhere
    (largest cubes are kept first)."""
    order = sorted(
        range(len(cover)),
        key=lambda i: (-sum(1 for v in cover[i] if v is None),
                       tuple(-1 if v is None else v for v in cover[i])))
    chosen: List[Cube] = []
    covered: Set[int] = set()
    for i in order:
        cube = cover[i]
        gain = {minterm_to_int(m) for m in cube_minterms(cube)} & onset
        if gain - covered:
            chosen.append(cube)
            covered |= gain
    chosen.sort(key=lambda c: tuple(-1 if v is None else v for v in c))
    return chosen


def reduce_cover(cover: Sequence[Cube], onset: Set[int],
                 n: int) -> List[Cube]:
    """Shrink cubes *sequentially*: each cube is replaced by the supercube
    of the ON minterms the rest of the (partially reduced) cover does not
    catch.  Sequential processing is essential — shrinking two cubes away
    from a shared minterm simultaneously would uncover it."""
    working: List[Optional[Cube]] = list(cover)
    for i in range(len(working)):
        cube = working[i]
        if cube is None:
            continue
        others_cover: Set[int] = set()
        for j, other in enumerate(working):
            if j == i or other is None:
                continue
            for m in cube_minterms(other):
                others_cover.add(minterm_to_int(m))
        private = [m for m in cube_minterms(cube)
                   if minterm_to_int(m) in onset
                   and minterm_to_int(m) not in others_cover]
        if not private:
            working[i] = None
            continue
        shrunk = []
        for pos in range(n):
            values = {p[pos] for p in private}
            shrunk.append(values.pop() if len(values) == 1 else None)
        working[i] = tuple(shrunk)
    return [c for c in working if c is not None]


def espresso(onset: Iterable[int], dcset: Iterable[int], n: int,
             max_iterations: int = 6) -> List[Cube]:
    """Heuristic minimum-ish SOP cover of an incompletely specified
    function (same interface as
    :func:`repro.boolmin.quine_mccluskey.minimize`)."""
    onset = set(onset)
    dcset = set(dcset) - onset
    if not onset:
        return []
    offset = set(range(1 << n)) - onset - dcset
    cover: List[Cube] = [int_to_minterm(m, n) for m in sorted(onset)]
    best: Optional[List[Cube]] = None
    for _ in range(max_iterations):
        cover = [expand_cube(c, offset, n) for c in cover]
        cover = irredundant(cover, onset, n)
        if best is None or len(cover) < len(best):
            best = list(cover)
        else:
            break
        cover = reduce_cover(cover, onset, n)
        if not cover:
            cover = list(best)
            break
    # final polishing pass
    cover = [expand_cube(c, offset, n) for c in (best or cover)]
    cover = irredundant(cover, onset, n)
    if best is not None and len(best) < len(cover):
        cover = best
    cover.sort(key=lambda c: tuple(-1 if v is None else v for v in c))
    return cover
