"""Fault-tolerant portfolio orchestration: race the verdict engines.

No single engine dominates the paper's workloads: k-induction wins on
hard proofs, the BDD fixpoint on wide-but-regular state spaces, the
compiled explicit engine on small controllers, and BMC finds shallow
bugs fastest.  This package races engine/method combinations **in
supervised worker processes** and returns the first *definitive*
verdict — per-task deadlines, crash retry with exponential backoff,
degradation ladders onto cheaper engines, loser cancellation, and
cross-validation of the winner against independent evidence (a
disagreement is reported as an ``"inconsistent"`` verdict, never
resolved silently).

Layers, bottom up:

* :mod:`repro.portfolio.tasks` — normalised picklable runners with one
  verdict vocabulary per query;
* :mod:`repro.portfolio.faults` — deterministic, seedable fault
  injection (``REPRO_FAULTS``) that can kill, stall or poison any
  worker, so the recovery machinery is itself testable;
* :mod:`repro.portfolio.workers` — the process pool: :func:`race`,
  :class:`TaskSpec`, classified :class:`TaskOutcome`;
* :mod:`repro.portfolio.portfolio` — the entry points re-exported
  here: :func:`check_deadlock`, :func:`check_reach`, :func:`check_csc`,
  :func:`check_consistency`, each returning a :class:`Verdict`.

The CLI front end is ``repro check`` (``repro check --help``); the
engine schedule comes from :func:`repro.ts.builder.choose_engine` with
``purpose="portfolio"``.  See ``docs/portfolio.md`` for the guide.
"""

from .portfolio import (DEFAULT_BOUND, DEFAULT_MAX_K, PROBE_BOUND, Verdict,
                        check_consistency, check_csc, check_deadlock,
                        check_reach)
from .workers import (DEFAULT_DEADLINE_S, DEFAULT_MAX_ATTEMPTS, RaceResult,
                      TaskOutcome, TaskSpec, race, run_ladder, run_task)

__all__ = [
    "DEFAULT_BOUND",
    "DEFAULT_DEADLINE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_K",
    "PROBE_BOUND",
    "RaceResult",
    "TaskOutcome",
    "TaskSpec",
    "Verdict",
    "check_consistency",
    "check_csc",
    "check_deadlock",
    "check_reach",
    "race",
    "run_ladder",
    "run_task",
]
