"""The fault-tolerant worker pool behind the portfolio.

Every engine run executes in a **child process** under a per-task
wall-clock deadline, supervised by an event loop in the parent that is
engineered to survive every way a worker can misbehave:

* **deadline overrun** — the child is terminated and the outcome
  classified as an :class:`~repro.errors.EngineTimeoutError`; the slot
  *degrades* to the next-cheaper rung of its ladder;
* **crash** (segfault, ``os._exit``, OOM kill, injected ``kill``
  fault) — classified as a :class:`~repro.errors.WorkerCrashError` and
  retried with bounded exponential backoff; when attempts are
  exhausted the slot degrades;
* **state explosion** — a structured
  :class:`~repro.errors.StateExplosionError` reported by the child
  degrades the slot immediately (retrying a deterministic blow-up is
  wasted work);
* **any other exception** — retried with backoff (it may be an
  injected or transient fault), then degraded;
* **stall** — every worker beats a heartbeat side channel
  (:mod:`repro.obs.remote`) on a fixed interval; a worker silent for
  :data:`STALL_FACTOR` × that interval is treated as hung *before* its
  hard deadline, classified as an
  :class:`~repro.errors.EngineTimeoutError` and degraded like a
  timeout.

Telemetry crosses the process boundary with the results: when tracing
is armed, each worker streams its span records over the result pipe as
they close and the supervisor merges them under the ambient
``portfolio.race`` span with slot/engine/attempt attribution
(:func:`repro.obs.remote.merge_worker_record`).  Workers the supervisor
stops before they can report — cancelled losers, deadline overruns,
crashes, stalls — get their ``worker.task`` interval synthesized from
the parent's own clock, so the merged trace attributes every second a
child process ran.

The race ends at the **first definitive verdict**: every other live
worker is terminated and joined before :func:`race` returns, so no
orphan processes outlive the call (a ``finally`` block enforces this on
every exit path, including KeyboardInterrupt).  Workers that finish
with *partial* evidence (``definitive: False`` payloads — bounded
searches that found nothing) close their slot and contribute their
evidence to the eventual ``Unknown`` verdict if nobody wins.

Workers are forked, so models need not be pickled on the way in;
payloads cross back through a pipe and must be plain data (see
:mod:`repro.portfolio.tasks`).  Fault injection
(:mod:`repro.portfolio.faults`) hooks the child wrapper, never the
engines themselves.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..errors import EngineTimeoutError, StateExplosionError, WorkerCrashError
from ..obs import remote
from . import faults

#: Default per-task wall-clock budget (seconds).
DEFAULT_DEADLINE_S = 60.0

#: Default bounded-attempt budget per ladder rung (1 initial + retries).
DEFAULT_MAX_ATTEMPTS = 3

#: First retry backoff; doubles per attempt, capped at BACKOFF_CAP_S.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0

#: A worker silent for this many heartbeat intervals is declared hung.
#: Generous on purpose: a healthy worker beats every interval, so the
#: detector only fires after ~20 consecutive missed beats (5 s at the
#: default interval) — beyond scheduler jitter on a loaded CI runner
#: and beyond the GC pauses a heavy engine run can inflict on the
#: beating thread, yet still far ahead of the 60 s hard deadline.
STALL_FACTOR = 20.0


def _context():
    """The multiprocessing context: fork where available (no pickling of
    models on the way in), the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class TaskSpec:
    """One engine/method run the pool may execute.

    ``fn(**kwargs)`` must be a module-level runner returning a plain
    payload dict (:mod:`repro.portfolio.tasks`); ``slot`` names the race
    lane the task belongs to, ``engine``/``method`` identify it in
    outcomes, faults and telemetry.
    """

    slot: str
    engine: str
    method: str
    fn: Callable[..., dict]
    kwargs: dict = field(default_factory=dict)
    deadline_s: float = DEFAULT_DEADLINE_S
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Interval between worker heartbeats; 0 disables the side channel
    #: (and with it the stall detector) for this task.
    heartbeat_s: float = remote.DEFAULT_HEARTBEAT_S

    def label(self) -> str:
        """Short ``slot:engine/method`` identifier for messages."""
        return "%s:%s/%s" % (self.slot, self.engine, self.method)


@dataclass
class TaskOutcome:
    """The classified result of one ladder rung (possibly after retries).

    ``status`` is one of ``"ok"`` (definitive payload), ``"partial"``
    (payload with ``definitive: False``), ``"timeout"``, ``"stall"``
    (hung per the heartbeat detector), ``"crash"`` or
    ``"error"``; ``error`` carries the classified exception
    (:class:`~repro.errors.EngineTimeoutError`,
    :class:`~repro.errors.WorkerCrashError`, a reconstructed engine
    error) when the rung failed.
    """

    spec: TaskSpec
    status: str
    payload: Optional[dict] = None
    error: Optional[BaseException] = None
    attempts: int = 1
    elapsed_s: float = 0.0


@dataclass
class RaceResult:
    """What :func:`race` hands back to the orchestration layer.

    ``winner`` is the first definitive outcome (or None), ``outcomes``
    every classified rung in completion order, and ``stats`` the
    robustness counters (``attempts``, ``retries``, ``timeouts``,
    ``stalls``, ``crashes``, ``errors``, ``degradations``,
    ``cancellations``).
    """

    winner: Optional[TaskOutcome]
    outcomes: List[TaskOutcome]
    stats: Dict[str, int]
    elapsed_s: float


def _error_attrs(exc: BaseException) -> dict:
    """Structured attributes worth shipping across the pipe."""
    if isinstance(exc, StateExplosionError):
        return {"bound": exc.bound, "states": exc.states}
    return {}


def _worker_main(conn, hb_conn, spec: TaskSpec, attempt: int) -> None:
    """Child entry point: arm telemetry, fire faults, run, report, exit.

    The telemetry context streams span records over ``conn`` while the
    task runs and beats ``hb_conn`` from a daemon thread; it is closed
    *before* the final result message, so the parent receives the
    worker's complete span tree ahead of the verdict that settles the
    slot.
    """
    final = None
    telemetry = remote.worker_telemetry(
        conn, hb_conn, slot=spec.slot, engine=spec.engine,
        method=spec.method, attempt=attempt, heartbeat_s=spec.heartbeat_s)
    with telemetry:
        try:
            faults.fire(spec.slot, spec.engine, spec.method, attempt)
            payload = spec.fn(**spec.kwargs)
            telemetry.annotate(outcome="ok")
            final = ("ok", payload)
        except BaseException as exc:  # report everything; parent classifies
            telemetry.annotate(outcome="error", error=type(exc).__name__)
            final = ("error", type(exc).__name__, str(exc),
                     _error_attrs(exc))
    try:
        conn.send(final)
    except Exception:
        pass  # pipe gone: the parent will classify this as a crash
    finally:
        conn.close()
        if hb_conn is not None:
            hb_conn.close()


def _rebuild_error(name: str, message: str, attrs: dict) -> BaseException:
    """Reconstruct a child-reported exception in the parent.

    Known :mod:`repro.errors` classes come back as themselves (with
    structured attributes restored for :class:`StateExplosionError`);
    everything else — including injected faults — becomes a
    ``RuntimeError`` tagged with the original type name.
    """
    from .. import errors as errors_module

    cls = getattr(errors_module, name, None)
    if cls is StateExplosionError:
        return StateExplosionError(message, bound=attrs.get("bound"),
                                   states=attrs.get("states"))
    if isinstance(cls, type) and issubclass(cls, errors_module.ReproError):
        return cls(message)
    return RuntimeError("%s: %s" % (name, message))


class _Worker:
    """One live child process plus its parent-side bookkeeping."""

    __slots__ = ("spec", "attempt", "process", "conn", "hb_conn",
                 "started_at", "deadline_at", "last_beat", "hb_eof",
                 "root_reported")

    def __init__(self, ctx, spec: TaskSpec, attempt: int):
        self.spec = spec
        self.attempt = attempt
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        hb_parent, hb_child = ctx.Pipe(duplex=False)
        self.conn = parent_conn
        self.hb_conn = hb_parent
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, hb_child, spec, attempt), daemon=True)
        # stamp before the fork so the synthetic span of a worker that
        # never reports covers the process-start latency it caused
        self.started_at = time.perf_counter()
        self.process.start()
        child_conn.close()  # the parent keeps only the read ends
        hb_child.close()
        self.deadline_at = self.started_at + spec.deadline_s
        # the stall clock starts at launch; the first real beat arrives
        # as soon as the child's heartbeat thread spins up
        self.last_beat = self.started_at
        self.hb_eof = spec.heartbeat_s <= 0
        self.root_reported = False

    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    def stall_at(self) -> Optional[float]:
        """Instant at which this worker counts as hung, or None when the
        stall detector is off for its task."""
        if self.spec.heartbeat_s <= 0:
            return None
        return self.last_beat + self.spec.heartbeat_s * STALL_FACTOR

    def reap(self, timeout: float = 5.0) -> None:
        """Join the child, escalating terminate → kill; close the pipes."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout)
        else:
            self.process.join(timeout)
        self.conn.close()
        self.hb_conn.close()


class _Slot:
    """One race lane: a ladder of rungs from preferred to cheapest."""

    __slots__ = ("name", "ladder", "rung", "attempt", "worker",
                 "restart_at", "evidence", "closed")

    def __init__(self, name: str, ladder: Sequence[TaskSpec]):
        self.name = name
        self.ladder = list(ladder)
        self.rung = 0
        self.attempt = 0
        self.worker: Optional[_Worker] = None
        self.restart_at: Optional[float] = None
        self.evidence: List[TaskOutcome] = []
        self.closed = not self.ladder

    @property
    def spec(self) -> TaskSpec:
        return self.ladder[self.rung]

    def degrade(self) -> bool:
        """Advance to the next-cheaper rung; False when exhausted."""
        self.rung += 1
        self.attempt = 0
        self.restart_at = None
        if self.rung >= len(self.ladder):
            self.closed = True
            return False
        return True


def race(ladders: Dict[str, Sequence[TaskSpec]],
         backoff_base_s: float = BACKOFF_BASE_S,
         backoff_cap_s: float = BACKOFF_CAP_S) -> RaceResult:
    """Race the ladders' head rungs; first definitive verdict wins.

    ``ladders`` maps slot names to degradation ladders (most-informative
    rung first, cheapest last).  The supervision loop enforces each
    rung's deadline, watches the heartbeat side channel (a worker silent
    for :data:`STALL_FACTOR` heartbeat intervals is treated as hung and
    degraded before its deadline), retries crashes and unclassified
    errors with exponential backoff, degrades on timeout / stall / state
    explosion / exhausted retries, and cancels every loser the moment a
    worker reports a definitive payload.  Robustness counters are also
    forwarded to the ambient :mod:`repro.obs` span (``attempts``,
    ``retries``, ``timeouts``, ``stalls``, ``crashes``,
    ``degradations``, ``cancellations``) when telemetry is armed — and
    each worker's span records and heartbeats are merged into the
    parent trace as they stream in (:mod:`repro.obs.remote`).

    Never raises on worker misbehaviour — a race with no surviving
    definitive rung returns ``winner=None`` plus the partial evidence.
    Guarantees no child process outlives the call.
    """
    ctx = _context()
    started = time.perf_counter()
    slots = [_Slot(name, ladder) for name, ladder in ladders.items()]
    outcomes: List[TaskOutcome] = []
    stats = {"attempts": 0, "retries": 0, "timeouts": 0, "stalls": 0,
             "crashes": 0, "errors": 0, "degradations": 0,
             "cancellations": 0}
    winner: Optional[TaskOutcome] = None

    def count(key: str, n: int = 1) -> None:
        stats[key] += n
        obs.add(key, n)

    def start_worker(slot: _Slot) -> None:
        slot.worker = _Worker(ctx, slot.spec, slot.attempt)
        slot.restart_at = None
        count("attempts")

    def handle_telemetry(worker: _Worker, message) -> None:
        """Absorb one ("span"/"heartbeat", record) worker message."""
        kind, record = message[0], message[1]
        worker.last_beat = time.perf_counter()  # any message is liveness
        if kind == "span" and (record.get("parent") is None
                               or record.get("name") == remote.TASK_SPAN):
            worker.root_reported = True
        if obs.enabled():
            remote.merge_worker_record(record, slot=worker.spec.slot,
                                       attempt=worker.attempt)

    def salvage_telemetry(worker: _Worker) -> None:
        """Drain telemetry already in a worker's pipes before reaping it,
        so records a loser streamed before cancellation still merge."""
        for conn in (worker.conn, worker.hb_conn):
            while True:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                if isinstance(message, tuple) and message \
                        and message[0] in ("span", "heartbeat"):
                    handle_telemetry(worker, message)
                # a final verdict that lost the race is dropped

    def stop_worker(slot: _Slot, outcome: Optional[str] = None) -> None:
        worker = slot.worker
        if worker is None:
            return
        if obs.enabled():
            salvage_telemetry(worker)
        worker.reap()
        if obs.enabled() and not worker.root_reported:
            # the child never closed its root span (killed, hung,
            # cancelled): attribute its lifetime — including the
            # terminate/join we just paid for it — from our own clock
            remote.synthesize_task_record(
                started_at=worker.started_at,
                stopped_at=time.perf_counter(),
                slot=worker.spec.slot, engine=worker.spec.engine,
                method=worker.spec.method, attempt=worker.attempt,
                outcome=outcome or "stopped")
        slot.worker = None

    def schedule_retry(slot: _Slot) -> None:
        count("retries")
        delay = min(backoff_cap_s, backoff_base_s * (2 ** slot.attempt))
        slot.attempt += 1
        slot.restart_at = time.perf_counter() + delay

    def degrade_or_close(slot: _Slot) -> None:
        if slot.degrade():
            count("degradations")
            start_worker(slot)

    def settle(slot: _Slot, outcome: TaskOutcome) -> None:
        """Record a classified rung outcome and advance the slot."""
        nonlocal winner
        outcomes.append(outcome)
        if outcome.status == "ok":
            winner = outcome
            return
        if outcome.status == "partial":
            slot.evidence.append(outcome)
            slot.closed = True
            return
        if outcome.status in ("timeout", "stall"):
            count("timeouts" if outcome.status == "timeout" else "stalls")
            degrade_or_close(slot)
            return
        if outcome.status == "crash":
            count("crashes")
        else:
            count("errors")
        if isinstance(outcome.error, StateExplosionError):
            degrade_or_close(slot)  # deterministic blow-up: don't retry
        elif slot.attempt + 1 < slot.spec.max_attempts:
            schedule_retry(slot)
        else:
            degrade_or_close(slot)

    def receive(slot: _Slot) -> None:
        """Drain a ready worker connection: absorb telemetry messages,
        classify and settle on the final result (or on EOF = crash)."""
        worker = slot.worker
        assert worker is not None
        attempts = slot.attempt + 1
        while slot.worker is not None:
            try:
                if not worker.conn.poll(0):
                    return  # telemetry only so far; the task is running
                message = worker.conn.recv()
            except (EOFError, OSError):
                message = None
            if message is not None and isinstance(message, tuple) \
                    and message and message[0] in ("span", "heartbeat"):
                handle_telemetry(worker, message)
                continue
            elapsed = worker.elapsed()
            stop_worker(slot, outcome="crash" if message is None else None)
            if message is None:  # died before reporting
                exitcode = worker.process.exitcode
                error = WorkerCrashError(
                    "worker %s died without reporting (exit code %s,"
                    " attempt %d)" % (worker.spec.label(), exitcode,
                                      slot.attempt),
                    task=worker.spec.label(), exitcode=exitcode)
                settle(slot, TaskOutcome(worker.spec, "crash", error=error,
                                         attempts=attempts,
                                         elapsed_s=elapsed))
                return
            if message[0] == "ok":
                payload = message[1]
                status = "ok" if payload.get("definitive") else "partial"
                settle(slot, TaskOutcome(worker.spec, status,
                                         payload=payload, attempts=attempts,
                                         elapsed_s=elapsed))
                return
            _, name, text, attrs = message
            settle(slot, TaskOutcome(worker.spec, "error",
                                     error=_rebuild_error(name, text, attrs),
                                     attempts=attempts, elapsed_s=elapsed))
            return

    def drain_heartbeats(slot: _Slot) -> None:
        """Absorb everything pending on a worker's heartbeat channel."""
        worker = slot.worker
        if worker is None:
            return
        while True:
            try:
                if not worker.hb_conn.poll(0):
                    return
                message = worker.hb_conn.recv()
            except (EOFError, OSError):
                # channel closed (worker exiting); the result pipe
                # decides how the rung ends
                worker.hb_eof = True
                return
            handle_telemetry(worker, message)

    def expire(slot: _Slot) -> None:
        """Terminate a worker that overran its deadline."""
        worker = slot.worker
        assert worker is not None
        attempts = slot.attempt + 1
        elapsed = worker.elapsed()
        stop_worker(slot, outcome="timeout")
        error = EngineTimeoutError(
            "worker %s exceeded its %.3gs deadline"
            % (worker.spec.label(), worker.spec.deadline_s),
            task=worker.spec.label(), deadline_s=worker.spec.deadline_s)
        settle(slot, TaskOutcome(worker.spec, "timeout", error=error,
                                 attempts=attempts, elapsed_s=elapsed))

    def expire_stalled(slot: _Slot) -> None:
        """Terminate a worker whose heartbeat went silent (hung)."""
        worker = slot.worker
        assert worker is not None
        attempts = slot.attempt + 1
        elapsed = worker.elapsed()
        silent_s = time.perf_counter() - worker.last_beat
        stop_worker(slot, outcome="stall")
        error = EngineTimeoutError(
            "worker %s stalled: no heartbeat for %.3gs (interval %.3gs,"
            " deadline %.3gs away)"
            % (worker.spec.label(), silent_s, worker.spec.heartbeat_s,
               max(0.0, worker.deadline_at - time.perf_counter())),
            task=worker.spec.label(), deadline_s=worker.spec.deadline_s)
        settle(slot, TaskOutcome(worker.spec, "stall", error=error,
                                 attempts=attempts, elapsed_s=elapsed))

    try:
        for slot in slots:
            if not slot.closed:
                start_worker(slot)
        while winner is None:
            live = [s for s in slots if not s.closed]
            if not live:
                break
            now = time.perf_counter()
            # (re)start any worker whose backoff has elapsed
            for slot in live:
                if slot.worker is None and slot.restart_at is not None \
                        and now >= slot.restart_at:
                    start_worker(slot)
            # how long may we sleep before something needs attention?
            wakeups = []
            for s in live:
                if s.worker is not None:
                    wakeups.append(s.worker.deadline_at)
                    stall_at = s.worker.stall_at()
                    if stall_at is not None:
                        wakeups.append(stall_at)
                elif s.restart_at is not None:
                    wakeups.append(s.restart_at)
            if not wakeups:  # every live slot is settling; shouldn't linger
                break
            timeout = max(0.0, min(wakeups) - now)
            results = {s.worker.conn: s for s in live
                       if s.worker is not None}
            beats = {s.worker.hb_conn: s for s in live
                     if s.worker is not None and not s.worker.hb_eof}
            if results:
                ready = multiprocessing.connection.wait(
                    list(results) + list(beats), timeout)
                for conn in ready:
                    if conn in beats:
                        drain_heartbeats(beats[conn])
                    else:
                        receive(results[conn])
                    if winner is not None:
                        break
            else:
                time.sleep(min(timeout, 0.05))
            if winner is not None:
                break
            now = time.perf_counter()
            for slot in [s for s in slots if not s.closed]:
                worker = slot.worker
                if worker is None:
                    continue
                if now >= worker.deadline_at:
                    expire(slot)
                else:
                    stall_at = worker.stall_at()
                    if stall_at is not None and now >= stall_at:
                        expire_stalled(slot)
                if winner is not None:
                    break
    finally:
        # cancel every loser: no child process outlives the race
        for slot in slots:
            if slot.worker is not None:
                count("cancellations")
                stop_worker(slot, outcome="cancelled")

    return RaceResult(winner=winner, outcomes=outcomes, stats=stats,
                      elapsed_s=time.perf_counter() - started)


def run_task(spec: TaskSpec) -> dict:
    """Run one task in a supervised worker and return its payload.

    The blocking single-task form of the pool, exposed for callers (and
    tests) that want the classification *as exceptions*: raises
    :class:`~repro.errors.EngineTimeoutError` on deadline overrun,
    :class:`~repro.errors.WorkerCrashError` once crash retries are
    exhausted, and the reconstructed engine error for in-worker
    exceptions (retried like the race does before being raised).
    """
    result = race({spec.slot: [spec]})
    if result.winner is not None:
        return result.winner.payload
    last = result.outcomes[-1]
    if last.status == "partial":
        return last.payload
    raise last.error


def run_ladder(ladder: Sequence[TaskSpec]) -> TaskOutcome:
    """Run one degradation ladder to completion (no racing).

    Returns the winning outcome, or the last rung's outcome when every
    rung failed or finished with partial evidence.
    """
    result = race({ladder[0].slot: ladder})
    if result.winner is not None:
        return result.winner
    return result.outcomes[-1]
