"""Deterministic fault injection for the portfolio worker layer.

The retry / cancellation / degradation machinery of
:mod:`repro.portfolio.workers` only earns trust if it is exercised
directly, so this module provides a seedable hook that can make any
engine worker misbehave on demand:

* ``kill`` — the worker process dies instantly (``os._exit``), without
  reporting anything: the supervisor sees a
  :class:`~repro.errors.WorkerCrashError` and retries with backoff;
* ``delay`` — the worker sleeps past its deadline: the supervisor sees
  an :class:`~repro.errors.EngineTimeoutError` and degrades the slot to
  the next-cheaper engine;
* ``raise`` — the worker raises :class:`InjectedFault` mid-run: the
  supervisor records the error and retries;
* ``stall`` — the worker's heartbeat goes silent
  (:func:`repro.obs.remote.suppress_heartbeats`) while the task sleeps:
  the supervisor's stall detector fires well before the hard deadline
  and degrades the slot.

Faults are described by *rules* that match a task's slot name, engine,
method and attempt index, installed either programmatically
(:func:`install`) or through the ``REPRO_FAULTS`` environment variable
— the same syntax in both places::

    REPRO_FAULTS="kill:engine=sat,attempt=0;delay:method=bdd,seconds=9"

Each rule is ``action:key=value,...`` and rules are separated by ``;``.
Matching keys: ``slot``, ``engine``, ``method`` (exact string match),
``attempt`` (exact index) or ``max_attempt`` (fire while ``attempt <=
N``).  A ``p=0.25`` key makes the rule probabilistic; the decision is a
pure function of ``seed`` (default 0) and the task identity, so a
seeded run is bit-reproducible no matter how processes are scheduled.

Because worker processes are forked, programmatically installed rules
propagate into children automatically; the environment variable covers
spawn-based platforms and CI matrices.  :func:`fire` is called by the
worker wrapper at task start — engine code itself never sees the hook.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("kill", "delay", "raise", "stall")

#: Exit code used by the ``kill`` action (distinctive in ps output and
#: in :class:`~repro.errors.WorkerCrashError.exitcode`).
KILL_EXIT_CODE = 70


class InjectedFault(RuntimeError):
    """The exception thrown by the ``raise`` action.

    Deliberately *not* a :class:`~repro.errors.ReproError`: an injected
    fault models an arbitrary, unclassified engine bug, so it must take
    the supervisor's generic retry path, not any domain-specific one.
    """


class FaultSyntaxError(ValueError):
    """Raised by :func:`parse` for an unparseable rule string."""


@dataclass
class FaultRule:
    """One fault-injection rule (see the module docstring for syntax)."""

    action: str
    slot: Optional[str] = None
    engine: Optional[str] = None
    method: Optional[str] = None
    attempt: Optional[int] = None
    max_attempt: Optional[int] = None
    p: float = 1.0
    seed: int = 0
    seconds: float = 30.0

    def matches(self, slot: str, engine: str, method: str,
                attempt: int) -> bool:
        """True iff this rule fires for the given task identity."""
        if self.slot is not None and self.slot != slot:
            return False
        if self.engine is not None and self.engine != engine:
            return False
        if self.method is not None and self.method != method:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.max_attempt is not None and attempt > self.max_attempt:
            return False
        if self.p >= 1.0:
            return True
        # deterministic coin flip: a pure function of (seed, identity),
        # stable across processes and platforms (no str hash involved)
        key = "%d:%s:%s:%s:%d" % (self.seed, slot, engine, method, attempt)
        draw = zlib.crc32(key.encode("utf-8")) / 0xFFFFFFFF
        return draw < self.p

    def spec(self) -> str:
        """The rule re-serialised in :func:`parse` syntax."""
        pairs = []
        for key in ("slot", "engine", "method", "attempt", "max_attempt"):
            value = getattr(self, key)
            if value is not None:
                pairs.append("%s=%s" % (key, value))
        if self.p < 1.0:
            pairs.append("p=%g" % self.p)
            pairs.append("seed=%d" % self.seed)
        if self.action in ("delay", "stall"):
            pairs.append("seconds=%g" % self.seconds)
        return self.action + (":" + ",".join(pairs) if pairs else "")


def parse(text: str) -> List[FaultRule]:
    """Parse a ``REPRO_FAULTS`` string into a list of rules.

    Empty and whitespace-only strings parse to no rules.  Raises
    :class:`FaultSyntaxError` on unknown actions or keys so a typo'd CI
    matrix entry fails loudly instead of silently injecting nothing.
    """
    rules: List[FaultRule] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        action, _, spec = chunk.partition(":")
        action = action.strip()
        if action not in ACTIONS:
            raise FaultSyntaxError(
                "unknown fault action %r (expected one of %s) in %r"
                % (action, ", ".join(ACTIONS), chunk))
        rule = FaultRule(action=action)
        for pair in filter(None, (p.strip() for p in spec.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise FaultSyntaxError(
                    "expected key=value, got %r in %r" % (pair, chunk))
            key = key.strip()
            value = value.strip()
            try:
                if key in ("slot", "engine", "method"):
                    setattr(rule, key, value)
                elif key in ("attempt", "max_attempt", "seed"):
                    setattr(rule, key, int(value))
                elif key == "p":
                    rule.p = float(value)
                elif key == "seconds":
                    rule.seconds = float(value)
                else:
                    raise FaultSyntaxError(
                        "unknown fault key %r in %r" % (key, chunk))
            except ValueError as exc:
                if isinstance(exc, FaultSyntaxError):
                    raise
                raise FaultSyntaxError(
                    "bad value %r for key %r in %r" % (value, key, chunk))
        rules.append(rule)
    return rules


# -- the installed plan ------------------------------------------------- #

_installed: Optional[List[FaultRule]] = None
# cache of the last parsed environment value, so fire() costs one
# os.environ lookup and a string compare in the fault-free common case
_env_cache: tuple = ("", [])


def install(rules: Union[str, Sequence[FaultRule]]) -> List[FaultRule]:
    """Install a fault plan programmatically (overrides ``REPRO_FAULTS``).

    Accepts either a rule string in :func:`parse` syntax or a sequence of
    :class:`FaultRule` objects; returns the installed list.  The plan is
    process-global and inherited by forked workers.  Call :func:`clear`
    to remove it.
    """
    global _installed
    if isinstance(rules, str):
        rules = parse(rules)
    _installed = list(rules)
    return _installed


def clear() -> None:
    """Remove any programmatically installed fault plan."""
    global _installed
    _installed = None


def active_rules() -> List[FaultRule]:
    """The rules currently in force: the installed plan if any, else the
    parsed ``REPRO_FAULTS`` environment variable."""
    global _env_cache
    if _installed is not None:
        return _installed
    text = os.environ.get(ENV_VAR, "")
    if text != _env_cache[0]:
        _env_cache = (text, parse(text))
    return _env_cache[1]


def fire(slot: str, engine: str, method: str, attempt: int,
         inline: bool = False) -> Optional[str]:
    """Trigger the first matching fault for this task, if any.

    Called by the worker wrapper at task start.  In a worker process
    (``inline=False``) the actions are literal: ``kill`` exits the
    process, ``delay`` sleeps, ``raise`` raises.  Under the inline
    (process-free) execution mode ``kill`` and ``delay`` cannot take
    down or stall the caller's process, so they are translated into the
    errors the supervisor would have classified them as —
    :class:`~repro.errors.WorkerCrashError` and
    :class:`~repro.errors.EngineTimeoutError` — keeping the degradation
    semantics identical across modes.  Returns the action fired (after
    the delay) or ``None``.
    """
    for rule in active_rules():
        if not rule.matches(slot, engine, method, attempt):
            continue
        if rule.action == "kill":
            if inline:
                from ..errors import WorkerCrashError
                raise WorkerCrashError(
                    "injected kill of %s (inline mode)" % slot,
                    task=slot, exitcode=KILL_EXIT_CODE)
            os._exit(KILL_EXIT_CODE)
        if rule.action == "delay":
            if inline:
                from ..errors import EngineTimeoutError
                raise EngineTimeoutError(
                    "injected delay of %s (inline mode)" % slot,
                    task=slot, deadline_s=rule.seconds)
            time.sleep(rule.seconds)
            return "delay"
        if rule.action == "stall":
            if inline:
                from ..errors import EngineTimeoutError
                raise EngineTimeoutError(
                    "injected stall of %s (inline mode)" % slot,
                    task=slot, deadline_s=rule.seconds)
            from ..obs import remote
            remote.suppress_heartbeats()
            time.sleep(rule.seconds)
            return "stall"
        raise InjectedFault(
            "injected fault in %s (%s/%s, attempt %d)"
            % (slot, engine, method, attempt))
    return None
