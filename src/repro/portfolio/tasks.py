"""The normalised engine runners the portfolio races.

Each function here runs one engine/method combination for one query and
returns a plain-data *payload* dict — only strings, numbers, lists and
dicts, so the result survives the pickle trip back from a worker
process unchanged.  All runners for the same query speak one verdict
vocabulary (below), which is what makes first-answer-wins sound: any
winner reports the same verdict string the others would have.

========== =============================================== ==============
query      definitive verdicts                             partial verdict
========== =============================================== ==============
deadlock   ``deadlock`` / ``deadlock-free``                ``unknown``
reach      ``reached`` / ``unreachable``                   ``unknown``
csc        ``conflict`` / ``no-conflict``                  ``unknown``
consistency ``violation`` / ``consistent``                 ``unknown``
========== =============================================== ==============

Payload keys: ``verdict`` (vocabulary above), ``definitive`` (bool —
``False`` marks bounded evidence that must not win the race),
``method`` (the engine/method that produced it), plus method-specific
evidence: ``witness`` (firing sequence), ``dead_marking`` /
``final_marking`` (place → tokens), ``k`` and ``reason`` (k-induction),
``states`` (explicit exploration), ``evidence`` (one-line human
summary).

Runners never catch :class:`~repro.errors.StateExplosionError` or
domain errors — classification is the supervisor's job
(:mod:`repro.portfolio.workers`), and the structured attributes on the
exception carry the budget numbers it needs.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..stg.stg import STG

Model = Union[PetriNet, STG]


def _net_of(model: Model) -> PetriNet:
    return model.net if isinstance(model, STG) else model


def _marking_dict(marking: Marking) -> Dict[str, int]:
    return {p: n for p, n in marking.items()}


def _payload(verdict: str, definitive: bool, method: str,
             evidence: str, **extra) -> dict:
    payload = {"verdict": verdict, "definitive": definitive,
               "method": method, "evidence": evidence}
    payload.update(extra)
    return payload


# ---------------------------------------------------------------------- #
# deadlock
# ---------------------------------------------------------------------- #

def deadlock_explicit(model: Model, max_states: int) -> dict:
    """Exhaustive graph construction; definitive in both directions."""
    from ..ts.builder import build_reachability_graph

    ts = build_reachability_graph(model, max_states=max_states)
    dead = sorted((s for s in ts.states if not ts.successors(s)),
                  key=repr)
    if dead:
        return _payload(
            "deadlock", True, "explicit",
            "explicit exploration found %d dead marking(s) among %d"
            " states" % (len(dead), len(ts)),
            dead_marking=_marking_dict(dead[0]), states=len(ts))
    return _payload(
        "deadlock-free", True, "explicit",
        "explicit exploration of all %d states found no dead marking"
        % len(ts), states=len(ts))


def deadlock_bdd(model: Model) -> dict:
    """Symbolic fixpoint; definitive in both directions."""
    from ..bdd.queries import find_deadlock

    dead = find_deadlock(model)
    if dead is not None:
        return _payload(
            "deadlock", True, "bdd",
            "symbolic fixpoint found a dead marking",
            dead_marking=_marking_dict(dead))
    return _payload(
        "deadlock-free", True, "bdd",
        "symbolic fixpoint proved deadlock freedom")


def deadlock_kinduction(model: Model, max_k: int) -> dict:
    """k-induction: proof, replayed refutation, or explained Unknown."""
    from ..sat.kinduction import Proved, Refuted
    from ..sat.queries import prove_deadlock_free

    outcome = prove_deadlock_free(model, max_k=max_k)
    if isinstance(outcome, Proved):
        return _payload(
            "deadlock-free", True, "kinduction",
            "proved deadlock-free by %d-induction" % outcome.k,
            k=outcome.k)
    if isinstance(outcome, Refuted):
        witness = outcome.witness
        return _payload(
            "deadlock", True, "kinduction",
            "k-induction base case refuted at k=%d" % outcome.k,
            k=outcome.k, witness=list(witness.transitions),
            dead_marking=_marking_dict(witness.final_marking))
    return _payload(
        "unknown", False, "kinduction",
        "k-induction undecided at k=%d (%s)" % (outcome.k, outcome.reason),
        k=outcome.k, reason=outcome.reason)


def deadlock_bmc(model: Model, bound: int) -> dict:
    """Bounded search: a found witness is definitive, a miss is not."""
    from ..sat.queries import find_deadlock

    witness = find_deadlock(model, bound=bound)
    if witness is not None:
        return _payload(
            "deadlock", True, "bmc",
            "BMC found a deadlock trace of %d transitions" % len(witness),
            witness=list(witness.transitions),
            dead_marking=_marking_dict(witness.final_marking))
    return _payload(
        "unknown", False, "bmc",
        "no deadlock within %d steps (bounded)" % bound, k=bound)


# ---------------------------------------------------------------------- #
# reach
# ---------------------------------------------------------------------- #

def _target_marking(target: Dict[str, int]) -> Marking:
    return Marking(target)


def reach_explicit(model: Model, target: Dict[str, int],
                   max_states: int, cover: bool = False) -> dict:
    """Exhaustive membership test; definitive in both directions."""
    from ..ts.builder import build_reachability_graph

    goal = _target_marking(target)
    ts = build_reachability_graph(model, max_states=max_states)
    if cover:
        hit = next((s for s in ts.states if s.covers(goal)), None)
    else:
        hit = goal if goal in ts else None
    if hit is not None:
        return _payload(
            "reached", True, "explicit",
            "target %s among the %d reachable states"
            % ("covered" if cover else "present", len(ts)),
            final_marking=_marking_dict(hit), states=len(ts))
    return _payload(
        "unreachable", True, "explicit",
        "target absent from all %d reachable states" % len(ts),
        states=len(ts))


def reach_kinduction(model: Model, target: Dict[str, int],
                     max_k: int) -> dict:
    """k-induction unreachability proof (exact targets only)."""
    from ..sat.kinduction import Proved, Refuted
    from ..sat.queries import prove_unreachable

    outcome = prove_unreachable(model, _target_marking(target),
                                max_k=max_k)
    if isinstance(outcome, Proved):
        return _payload(
            "unreachable", True, "kinduction",
            "proved unreachable by %d-induction" % outcome.k, k=outcome.k)
    if isinstance(outcome, Refuted):
        witness = outcome.witness
        return _payload(
            "reached", True, "kinduction",
            "k-induction base case reached the target at k=%d" % outcome.k,
            k=outcome.k, witness=list(witness.transitions),
            final_marking=_marking_dict(witness.final_marking))
    return _payload(
        "unknown", False, "kinduction",
        "k-induction undecided at k=%d (%s)" % (outcome.k, outcome.reason),
        k=outcome.k, reason=outcome.reason)


def reach_bmc(model: Model, target: Dict[str, int], bound: int,
              cover: bool = False) -> dict:
    """Bounded search for a trace into the target."""
    from ..sat.queries import reach_marking

    witness = reach_marking(model, _target_marking(target), bound=bound,
                            partial=cover)
    if witness is not None:
        return _payload(
            "reached", True, "bmc",
            "BMC reached the target in %d transitions" % len(witness),
            witness=list(witness.transitions),
            final_marking=_marking_dict(witness.final_marking))
    return _payload(
        "unknown", False, "bmc",
        "target not reached within %d steps (bounded)" % bound, k=bound)


# ---------------------------------------------------------------------- #
# CSC
# ---------------------------------------------------------------------- #

def csc_explicit(stg: STG, max_states: int) -> dict:
    """State-graph CSC check; definitive in both directions."""
    from ..analysis.implementability import csc_conflicts
    from ..ts.state_graph import build_state_graph

    sg = build_state_graph(stg, max_states=max_states)
    conflicts = csc_conflicts(sg)
    if conflicts:
        return _payload(
            "conflict", True, "explicit",
            "state graph exposes %d CSC conflict pair(s)" % len(conflicts),
            conflicts=len(conflicts), states=len(sg))
    return _payload(
        "no-conflict", True, "explicit",
        "all %d state codes separate non-input excitation" % len(sg),
        states=len(sg))


def csc_bdd(stg: STG) -> dict:
    """Symbolic CSC characteristic function; definitive both ways."""
    from ..bdd.queries import SymbolicCSC

    analysis = SymbolicCSC(stg)
    if analysis.has_conflict():
        count = analysis.conflict_count()
        return _payload(
            "conflict", True, "bdd",
            "symbolic CSC function covers %d conflicting code(s)" % count,
            conflicts=count)
    return _payload(
        "no-conflict", True, "bdd",
        "symbolic CSC function is empty (no conflicting codes)")


def csc_sat(stg: STG, bound: int) -> dict:
    """Bounded two-copy search: a found conflict is definitive."""
    from ..sat.queries import csc_conflict

    conflict = csc_conflict(stg, bound=bound)
    if conflict is not None:
        return _payload(
            "conflict", True, "sat",
            "BMC pair search found a CSC conflict",
            witness=list(conflict.trace_a.transitions),
            witness_b=list(conflict.trace_b.transitions))
    return _payload(
        "unknown", False, "sat",
        "no CSC conflict within %d steps (bounded)" % bound, k=bound)


# ---------------------------------------------------------------------- #
# consistency
# ---------------------------------------------------------------------- #

def consistency_explicit(stg: STG, max_states: int) -> dict:
    """State-graph construction decides consistency completely (it also
    catches cross-path divergence no single trace can witness)."""
    from ..errors import ConsistencyError
    from ..ts.state_graph import build_state_graph

    try:
        sg = build_state_graph(stg, max_states=max_states)
    except ConsistencyError as exc:
        return _payload(
            "violation", True, "explicit",
            "state-graph coding failed: %s" % exc)
    return _payload(
        "consistent", True, "explicit",
        "consistent signal codes across all %d states" % len(sg),
        states=len(sg))


def consistency_sat(stg: STG, bound: int) -> dict:
    """Bounded single-trace search: a found violation is definitive."""
    from ..sat.queries import consistency_violation

    witness = consistency_violation(stg, bound=bound)
    if witness is not None:
        return _payload(
            "violation", True, "sat",
            "BMC found a same-direction double firing",
            witness=list(witness.transitions))
    return _payload(
        "unknown", False, "sat",
        "no single-trace violation within %d steps (bounded)" % bound,
        k=bound)
