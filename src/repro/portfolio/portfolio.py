"""Fault-tolerant portfolio checks: race the engines, trust no winner.

This is the orchestration layer over :mod:`repro.portfolio.workers`.
Each ``check_*`` entry point asks :func:`repro.ts.builder.choose_engine`
(``purpose="portfolio"``) which engines to race for the model at hand,
builds one *degradation ladder* per engine slot (preferred method first,
bounded fallback last), races the ladders in supervised worker
processes, and wraps the first definitive answer in a :class:`Verdict`.

The winner is then **cross-validated** before being reported:

* a witness trace is replayed through the token game
  (:mod:`repro.petri.token_game`) and its final state checked against
  the claimed property (``validator="token-game"``);
* a claimed dead marking is checked for enabled transitions
  (``validator="dead-marking"``);
* witness-free verdicts (proofs, empty fixpoints) are probed by a cheap
  bounded query on an *independent* engine — a probe that finds a
  counterexample within its small bound exposes the winner
  (``validator="independent:<method>"``; a bounded miss confirms
  nothing and disagrees with nothing).

A failed validation **downgrades the verdict to** ``"inconsistent"``
(``Verdict.flagged`` is set and both answers are kept in
``details``) — a disagreement between engines is a finding, never
silently resolved in either direction.  When no slot produces a
definitive answer the portfolio concedes ``"unknown"`` and reports the
partial evidence it gathered (bounded misses, final depths).

``inline=True`` runs the same ladders sequentially in-process — no
worker processes, same classification and degradation semantics (fault
injection included, see :func:`repro.portfolio.faults.fire`) — for
platforms or tests where forking is unwanted.

Telemetry: each race runs under a ``portfolio.race`` span carrying the
query, the slot schedule, the robustness counters (``attempts``,
``retries``, ``timeouts``, ``stalls``, ``crashes``, ``errors``,
``degradations``, ``cancellations``) and the final verdict.  In process
mode the workers' own span trees and heartbeat events stream back over
their pipes and are merged under the ``portfolio.race`` span with
slot/engine/attempt attribution (:mod:`repro.obs.remote`), so a
``--trace`` file attributes the race's wall-clock to named worker-side
engine spans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..budgets import DEFAULT_STATE_BOUND
from ..errors import (EngineTimeoutError, ModelError, StateExplosionError,
                      UnboundedError, WorkerCrashError)
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.token_game import enabled_transitions, fire_sequence
from ..obs.remote import DEFAULT_HEARTBEAT_S
from ..stg.stg import STG
from . import faults, tasks
from .workers import (DEFAULT_DEADLINE_S, RaceResult, TaskOutcome, TaskSpec,
                      race)

Model = Union[PetriNet, STG]

#: Default depth for SAT methods raced by the portfolio.
DEFAULT_MAX_K = 15

#: Default BMC bound for the cheapest ladder rung.
DEFAULT_BOUND = 30

#: Bound for the independent cross-validation probe: deliberately small —
#: the probe is a smoke test for gross engine disagreement, not a second
#: full verification run.
PROBE_BOUND = 6


@dataclass
class Verdict:
    """The portfolio's answer to one query, with its provenance.

    ``verdict`` uses the per-query vocabulary of
    :mod:`repro.portfolio.tasks` plus ``"inconsistent"`` (engines
    disagreed — see ``flagged``).  ``engine``/``method`` identify the
    winning rung, ``validator`` how the answer was cross-checked,
    ``attempts``/``degradations`` and the full ``stats`` dict how much
    fault tolerance was needed to get it, and ``details`` the winner's
    raw payload (witness, markings, depths) plus any disagreement
    evidence.
    """

    query: str
    verdict: str
    engine: str = "portfolio"
    method: str = ""
    definitive: bool = False
    flagged: bool = False
    evidence: str = ""
    witness: Optional[List[str]] = None
    validator: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 0
    degradations: int = 0
    stats: Dict[str, int] = field(default_factory=dict)
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        """True for the "good" outcome of the query (no deadlock, no
        conflict, consistent, and — for reach — target reached)."""
        return self.verdict in ("deadlock-free", "unreachable",
                                "no-conflict", "consistent", "reached")


def _net_of(model: Model) -> PetriNet:
    return model.net if isinstance(model, STG) else model


def _schedule(model: Model,
              engines: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """The slot order to race: caller override or the auto heuristic."""
    if engines:
        return tuple(engines)
    from ..ts.builder import choose_engine
    return choose_engine(model, purpose="portfolio")  # type: ignore


def _ladders(model: Model, query: str, schedule: Tuple[str, ...],
             max_states: int, max_k: int, bound: int, deadline_s: float,
             target: Optional[Dict[str, int]] = None,
             cover: bool = False,
             heartbeat_s: float = DEFAULT_HEARTBEAT_S
             ) -> Dict[str, Sequence[TaskSpec]]:
    """Build one degradation ladder per scheduled engine slot.

    Each ladder starts with the slot's most informative method and
    falls back to a bounded one, so a timeout or state explosion on the
    strong method still yields evidence.  Slots whose engine cannot
    answer the query at all (e.g. BDD consistency) are skipped.
    """

    def spec(slot: str, engine: str, method: str, fn, **kwargs) -> TaskSpec:
        return TaskSpec(slot=slot, engine=engine, method=method, fn=fn,
                        kwargs=kwargs, deadline_s=deadline_s,
                        heartbeat_s=heartbeat_s)

    ladders: Dict[str, Sequence[TaskSpec]] = {}
    for engine in schedule:
        slot = "explicit" if engine in ("compiled", "naive", "explicit") \
            else engine
        if slot in ladders:
            continue
        rungs: List[TaskSpec] = []
        if query == "deadlock":
            if slot == "sat":
                rungs = [spec(slot, "sat", "kinduction",
                              tasks.deadlock_kinduction, model=model,
                              max_k=max_k),
                         spec(slot, "sat", "bmc", tasks.deadlock_bmc,
                              model=model, bound=bound)]
            elif slot == "bdd":
                rungs = [spec(slot, "bdd", "bdd", tasks.deadlock_bdd,
                              model=model),
                         spec(slot, "sat", "bmc", tasks.deadlock_bmc,
                              model=model, bound=bound)]
            elif slot == "explicit":
                rungs = [spec(slot, engine, "explicit",
                              tasks.deadlock_explicit, model=model,
                              max_states=max_states),
                         spec(slot, "sat", "bmc", tasks.deadlock_bmc,
                              model=model, bound=bound)]
        elif query == "reach":
            if slot == "sat":
                rungs = [spec(slot, "sat", "kinduction",
                              tasks.reach_kinduction, model=model,
                              target=target, max_k=max_k),
                         spec(slot, "sat", "bmc", tasks.reach_bmc,
                              model=model, target=target, bound=bound,
                              cover=cover)]
                if cover:  # exact-marking induction can't prove covers
                    rungs = rungs[1:]
            elif slot == "explicit":
                rungs = [spec(slot, engine, "explicit",
                              tasks.reach_explicit, model=model,
                              target=target, max_states=max_states,
                              cover=cover),
                         spec(slot, "sat", "bmc", tasks.reach_bmc,
                              model=model, target=target, bound=bound,
                              cover=cover)]
            # the bdd slot has no reach query variant: skip it
        elif query == "csc":
            if slot == "sat":
                rungs = [spec(slot, "sat", "sat", tasks.csc_sat,
                              stg=model, bound=bound)]
            elif slot == "bdd":
                rungs = [spec(slot, "bdd", "bdd", tasks.csc_bdd,
                              stg=model),
                         spec(slot, "sat", "sat", tasks.csc_sat,
                              stg=model, bound=bound)]
            elif slot == "explicit":
                rungs = [spec(slot, engine, "explicit",
                              tasks.csc_explicit, stg=model,
                              max_states=max_states),
                         spec(slot, "sat", "sat", tasks.csc_sat,
                              stg=model, bound=bound)]
        elif query == "consistency":
            if slot == "sat":
                rungs = [spec(slot, "sat", "sat", tasks.consistency_sat,
                              stg=model, bound=bound)]
            elif slot == "explicit":
                rungs = [spec(slot, engine, "explicit",
                              tasks.consistency_explicit, stg=model,
                              max_states=max_states),
                         spec(slot, "sat", "sat", tasks.consistency_sat,
                              stg=model, bound=bound)]
            # the bdd slot has no consistency query variant: skip it
        else:
            raise ModelError("unknown portfolio query %r" % query)
        if rungs:
            ladders[slot] = rungs
    if not ladders:
        raise ModelError(
            "no engine in %r can answer the %r query" % (schedule, query))
    return ladders


# -- inline (process-free) execution ------------------------------------ #

def _race_inline(ladders: Dict[str, Sequence[TaskSpec]]) -> RaceResult:
    """Run the ladders sequentially in-process, mirroring :func:`race`.

    Same classification, retry and degradation semantics as the worker
    pool — injected ``kill``/``delay`` faults arrive pre-translated into
    :class:`WorkerCrashError`/:class:`EngineTimeoutError` by
    :func:`repro.portfolio.faults.fire` in inline mode — but slots run
    one after another (schedule order) instead of concurrently, and
    engine code runs under no deadline.
    """
    started = time.perf_counter()
    outcomes: List[TaskOutcome] = []
    stats = {"attempts": 0, "retries": 0, "timeouts": 0, "stalls": 0,
             "crashes": 0, "errors": 0, "degradations": 0,
             "cancellations": 0}

    def count(key: str, n: int = 1) -> None:
        stats[key] += n
        obs.add(key, n)

    winner: Optional[TaskOutcome] = None
    for ladder in ladders.values():
        if winner is not None:
            break
        rung = 0
        while rung < len(ladder) and winner is None:
            spec = ladder[rung]
            attempt = 0
            while True:
                count("attempts")
                t0 = time.perf_counter()
                failure: Optional[BaseException] = None
                status = "error"
                payload = None
                try:
                    faults.fire(spec.slot, spec.engine, spec.method,
                                attempt, inline=True)
                    payload = spec.fn(**spec.kwargs)
                except EngineTimeoutError as exc:
                    failure, status = exc, "timeout"
                except WorkerCrashError as exc:
                    failure, status = exc, "crash"
                except (StateExplosionError, UnboundedError,
                        Exception) as exc:
                    failure, status = exc, "error"
                elapsed = time.perf_counter() - t0
                if failure is None:
                    status = "ok" if payload.get("definitive") \
                        else "partial"
                    outcome = TaskOutcome(spec, status, payload=payload,
                                          attempts=attempt + 1,
                                          elapsed_s=elapsed)
                    outcomes.append(outcome)
                    if status == "ok":
                        winner = outcome
                    else:  # partial evidence closes the slot
                        rung = len(ladder)
                    break
                outcomes.append(TaskOutcome(spec, status, error=failure,
                                            attempts=attempt + 1,
                                            elapsed_s=elapsed))
                count({"timeout": "timeouts", "crash": "crashes"}
                      .get(status, "errors"))
                retryable = status in ("crash", "error") and \
                    not isinstance(failure, StateExplosionError)
                if retryable and attempt + 1 < spec.max_attempts:
                    count("retries")
                    attempt += 1
                    continue
                rung += 1  # degrade to the next-cheaper rung
                if rung < len(ladder):
                    count("degradations")
                break
    return RaceResult(winner=winner, outcomes=outcomes, stats=stats,
                      elapsed_s=time.perf_counter() - started)


# -- cross-validation --------------------------------------------------- #

def _replay(net: PetriNet, trace: Sequence[str]) -> Optional[Marking]:
    """Token-game replay; None when the trace is not fireable."""
    try:
        return fire_sequence(net, net.initial_marking, list(trace))
    except (ModelError, UnboundedError):
        return None


def _marking(target: Dict[str, int]) -> Marking:
    return Marking(target)


def _same_marking(a: Marking, b: Marking) -> bool:
    return a.covers(b) and b.covers(a)


def _validate_witness(model: Model, query: str, payload: dict,
                      cover: bool) -> Optional[bool]:
    """Replay the winner's witness; None when there is nothing to replay."""
    net = _net_of(model)
    verdict = payload["verdict"]
    witness = payload.get("witness")
    if witness is not None:
        final = _replay(net, witness)
        if final is None:
            return False
        if query == "deadlock" and verdict == "deadlock":
            return not enabled_transitions(net, final)
        if query == "reach" and verdict == "reached":
            goal = _marking(payload_target(payload))
            return final.covers(goal) if cover \
                else _same_marking(final, goal)
        if query == "csc" and verdict == "conflict":
            other = payload.get("witness_b")
            return other is None or _replay(net, other) is not None
        return True  # fireable trace; query-specific claim not replayable
    dead = payload.get("dead_marking")
    if query == "deadlock" and verdict == "deadlock" and dead is not None:
        return not enabled_transitions(net, _marking(dead))
    return None


def payload_target(payload: dict) -> Dict[str, int]:
    """The reach target recorded on a payload by the entry point."""
    return payload.get("target") or {}


#: For each (query, verdict) a *probe*: a cheap bounded task on an
#: independent method that could expose the winner by finding a
#: counterexample.  ``None`` verdicts carry their own witness instead.
def _probe(model: Model, query: str, verdict: str,
           target: Optional[Dict[str, int]], cover: bool
           ) -> Optional[Tuple[str, dict]]:
    """Run the independent probe; returns (probe_name, payload) or None."""
    if query == "deadlock" and verdict == "deadlock-free":
        return ("independent:bmc",
                tasks.deadlock_bmc(model, bound=PROBE_BOUND))
    if query == "reach" and verdict == "unreachable":
        return ("independent:bmc",
                tasks.reach_bmc(model, target or {}, bound=PROBE_BOUND,
                                cover=cover))
    if query == "csc" and verdict == "no-conflict":
        return ("independent:sat",
                tasks.csc_sat(model, bound=PROBE_BOUND))
    if query == "consistency" and verdict == "consistent":
        return ("independent:sat",
                tasks.consistency_sat(model, bound=PROBE_BOUND))
    return None


def _cross_validate(model: Model, query: str, winner: TaskOutcome,
                    verdict: Verdict, cover: bool) -> None:
    """Check the winner against independent evidence; downgrade on
    disagreement (mutates ``verdict`` in place)."""
    # verdict.details is the winner's payload augmented with the query
    # target by _assemble — the replay needs that target
    payload = verdict.details
    replayed = _validate_witness(model, query, payload, cover)
    if replayed is True:
        verdict.validator = "dead-marking" \
            if payload.get("witness") is None else "token-game"
        return
    if replayed is False:
        verdict.details["disagreement"] = (
            "witness from %s/%s does not replay to the claimed %s"
            % (winner.spec.engine, winner.spec.method, payload["verdict"]))
        verdict.verdict = "inconsistent"
        verdict.flagged = True
        verdict.validator = "token-game"
        return
    try:
        probed = _probe(model, query, payload["verdict"],
                        payload_target(payload), cover)
    except (StateExplosionError, UnboundedError, ModelError):
        probed = None  # the probe itself failed: nothing to compare
    if probed is None:
        return
    name, counter = probed
    verdict.validator = name
    if counter.get("definitive") and counter["verdict"] != \
            payload["verdict"]:
        verdict.details["disagreement"] = (
            "%s found %r within bound %d but %s/%s claimed %r"
            % (name, counter["verdict"], PROBE_BOUND, winner.spec.engine,
               winner.spec.method, payload["verdict"]))
        verdict.details["counter_evidence"] = counter
        verdict.verdict = "inconsistent"
        verdict.flagged = True


# -- the entry points --------------------------------------------------- #

def _check(model: Model, query: str, *,
           engines: Optional[Sequence[str]] = None,
           max_states: int = DEFAULT_STATE_BOUND,
           max_k: int = DEFAULT_MAX_K,
           bound: int = DEFAULT_BOUND,
           deadline_s: float = DEFAULT_DEADLINE_S,
           inline: bool = False,
           cross_validate: bool = True,
           target: Optional[Dict[str, int]] = None,
           cover: bool = False,
           heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> Verdict:
    schedule = _schedule(model, engines)
    ladders = _ladders(model, query, schedule, max_states, max_k, bound,
                       deadline_s, target=target, cover=cover,
                       heartbeat_s=heartbeat_s)
    with obs.span("portfolio.race", query=query,
                  slots=",".join(ladders),
                  mode="inline" if inline else "process") as span:
        result = _race_inline(ladders) if inline else race(ladders)
        verdict = _assemble(model, query, result, cross_validate, target,
                            cover)
        span.annotate(verdict=verdict.verdict, engine=verdict.engine,
                      method=verdict.method, flagged=verdict.flagged)
    return verdict


def _assemble(model: Model, query: str, result: RaceResult,
              cross_validate: bool, target: Optional[Dict[str, int]],
              cover: bool) -> Verdict:
    winner = result.winner
    if winner is None:
        partials = [o for o in result.outcomes if o.status == "partial"]
        evidence = "; ".join(o.payload["evidence"] for o in partials) \
            or "every engine slot failed before producing evidence"
        verdict = Verdict(query=query, verdict="unknown",
                          evidence=evidence, elapsed_s=result.elapsed_s,
                          attempts=result.stats["attempts"],
                          degradations=result.stats["degradations"],
                          stats=dict(result.stats))
        verdict.details["partial"] = [o.payload for o in partials]
        verdict.details["failures"] = [
            "%s: %s" % (o.spec.label(), o.error)
            for o in result.outcomes if o.error is not None]
        return verdict
    payload = dict(winner.payload or {})
    if target is not None:
        payload.setdefault("target", dict(target))
    verdict = Verdict(query=query, verdict=payload["verdict"],
                      engine=winner.spec.engine,
                      method=winner.spec.method, definitive=True,
                      evidence=payload.get("evidence", ""),
                      witness=payload.get("witness"),
                      elapsed_s=result.elapsed_s,
                      attempts=result.stats["attempts"],
                      degradations=result.stats["degradations"],
                      stats=dict(result.stats), details=payload)
    if cross_validate:
        # a named phase of the race span: witness replay plus the
        # independent probe, so the merged trace attributes the
        # post-race tail as validation work rather than a black hole
        with obs.span("portfolio.validate", query=query) as vspan:
            _cross_validate(model, query, winner, verdict, cover)
            vspan.annotate(validator=verdict.validator or "none",
                           flagged=verdict.flagged)
    return verdict


def check_deadlock(model: Model, **options) -> Verdict:
    """Race the engines on "is any dead marking reachable?".

    Returns a :class:`Verdict` whose ``verdict`` is ``"deadlock"``,
    ``"deadlock-free"``, ``"unknown"`` or ``"inconsistent"`` (truthy
    exactly when deadlock freedom was established).  Options —
    ``engines`` (slot override), ``max_states``, ``max_k``, ``bound``,
    ``deadline_s``, ``heartbeat_s``, ``inline``, ``cross_validate`` —
    are shared by all four checks, see :func:`_check`.
    """
    return _check(model, "deadlock", **options)


def check_reach(model: Model, target: Dict[str, int],
                cover: bool = False, **options) -> Verdict:
    """Race the engines on "is the target marking reachable?".

    ``target`` maps place names to token counts; with ``cover=True`` any
    reachable marking covering it counts (and unreachability proofs are
    skipped — only the explicit engine can then answer negatively).
    Verdicts: ``"reached"``, ``"unreachable"``, ``"unknown"``,
    ``"inconsistent"``.
    """
    return _check(model, "reach", target=dict(target), cover=cover,
                  **options)


def check_csc(stg: STG, **options) -> Verdict:
    """Race the engines on complete state coding of an STG.

    Verdicts: ``"conflict"``, ``"no-conflict"``, ``"unknown"``,
    ``"inconsistent"`` — truthy exactly when CSC holds.
    """
    return _check(stg, "csc", **options)


def check_consistency(stg: STG, **options) -> Verdict:
    """Race the engines on signal-transition consistency of an STG.

    Verdicts: ``"violation"``, ``"consistent"``, ``"unknown"``,
    ``"inconsistent"`` — truthy exactly when the STG is consistent.
    """
    return _check(stg, "consistency", **options)
