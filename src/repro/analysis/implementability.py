"""Implementability analysis of STGs (paper, Section 2.1).

An STG is implementable as a speed-independent circuit iff:

* the underlying net is **bounded** (we require 1-safe);
* the STG is **consistent** — rising and falling transitions of every
  signal alternate along every path;
* **complete state coding (CSC)** holds — no two states with the same
  binary code enable different non-input signals;
* the STG is **persistent** — (a) no non-input signal transition can be
  disabled by another transition (output hazards), and (b) no input
  transition can be disabled by a non-input transition (input hazards).
  Input-by-input disabling is allowed: that is environment choice
  (Section 1.5).

This module computes all of these on the explicit state graph and returns
a structured report.  For nets whose state graph is too large to build,
two query engines answer the CSC question alone without enumeration:
:func:`find_csc_conflict_sat` through the bounded-model-checking path of
:mod:`repro.sat` (a search, complete only up to its bound) and
:func:`find_csc_conflict_bdd` through the symbolic fixpoint of
:mod:`repro.bdd.queries` (an exact characteristic-function answer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..budgets import DEFAULT_STATE_BOUND
from ..errors import ConsistencyError, UnboundedError
from ..stg.signals import SignalEvent
from ..stg.stg import STG
from ..ts.state_graph import StateGraph, build_state_graph
from ..ts.transition_system import State


@dataclass(frozen=True)
class CSCConflict:
    """Two states sharing a binary code but enabling different non-input
    signals — the next-state function is ill-defined (Section 2.1)."""

    code: Tuple[int, ...]
    state_a: State
    state_b: State
    enabled_a: FrozenSetType = None  # type: ignore[assignment]
    enabled_b: FrozenSetType = None  # type: ignore[assignment]

    def __str__(self):
        return "CSC conflict at code %s between %r (%s) and %r (%s)" % (
            "".join(map(str, self.code)), self.state_a,
            sorted(self.enabled_a or ()), self.state_b,
            sorted(self.enabled_b or ()))


FrozenSetType = Optional[frozenset]


@dataclass(frozen=True)
class USCConflict:
    """Two distinct states sharing a binary code (Unique State Coding)."""

    code: Tuple[int, ...]
    state_a: State
    state_b: State


@dataclass(frozen=True)
class PersistencyViolation:
    """Event ``disabled`` was enabled in ``state`` but firing ``by``
    disabled it.  ``kind`` is "output" (hazard at a gate output) or
    "input" (hazard at a device input)."""

    state: State
    disabled: str   # event string, e.g. "LDS+"
    by: str         # event string of the disabling transition
    kind: str

    def __str__(self):
        return "%s persistency violation in %r: %s disabled by %s" % (
            self.kind, self.state, self.disabled, self.by)


@dataclass
class ImplementabilityReport:
    """Aggregate result of all implementability checks."""

    stg_name: str
    states: int = 0
    bounded: bool = False
    consistent: bool = False
    consistency_error: Optional[str] = None
    usc_conflicts: List[USCConflict] = field(default_factory=list)
    csc_conflicts: List[CSCConflict] = field(default_factory=list)
    persistency_violations: List[PersistencyViolation] = field(
        default_factory=list)

    @property
    def has_usc(self) -> bool:
        return self.consistent and not self.usc_conflicts

    @property
    def has_csc(self) -> bool:
        return self.consistent and not self.csc_conflicts

    @property
    def persistent(self) -> bool:
        return self.consistent and not self.persistency_violations

    @property
    def implementable(self) -> bool:
        """Speed-independent implementability: bounded, consistent, CSC and
        persistent (USC is not required — CSC suffices)."""
        return (self.bounded and self.consistent and self.has_csc
                and self.persistent)

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            "Implementability report for %s" % self.stg_name,
            "  states:      %d" % self.states,
            "  bounded:     %s" % self.bounded,
            "  consistent:  %s%s" % (
                self.consistent,
                "" if self.consistent else " (%s)" % self.consistency_error),
            "  USC:         %s (%d conflicts)" % (self.has_usc,
                                                  len(self.usc_conflicts)),
            "  CSC:         %s (%d conflicts)" % (self.has_csc,
                                                  len(self.csc_conflicts)),
            "  persistent:  %s (%d violations)" % (
                self.persistent, len(self.persistency_violations)),
            "  implementable as SI circuit: %s" % self.implementable,
        ]
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# individual checks on a built state graph
# ---------------------------------------------------------------------- #

def usc_conflicts(sg: StateGraph) -> List[USCConflict]:
    """All pairs of distinct states sharing a binary code."""
    result = []
    for code, states in sorted(sg.states_by_code().items()):
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                result.append(USCConflict(code, states[i], states[j]))
    return result


def csc_conflicts(sg: StateGraph) -> List[CSCConflict]:
    """All pairs of same-code states with different non-input excitation."""
    result = []
    for code, states in sorted(sg.states_by_code().items()):
        if len(states) < 2:
            continue
        signatures = [
            frozenset(sg.enabled_signals(s, noninput_only=True))
            for s in states
        ]
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                if signatures[i] != signatures[j]:
                    result.append(CSCConflict(code, states[i], states[j],
                                              signatures[i], signatures[j]))
    return result


def persistency_violations(sg: StateGraph) -> List[PersistencyViolation]:
    """All persistency violations (Section 2.1).

    An enabled event ``a`` (as a signal/direction pair) is disabled by
    firing ``b`` if no transition with ``a``'s signal and direction remains
    enabled afterwards.  Violations are classified:

    * ``a`` non-input: "output" violation (glitch at a gate output);
    * ``a`` input disabled by non-input ``b``: "input" violation;
    * ``a`` input disabled by input ``b``: allowed (environment choice).
    """
    stg = sg.stg
    result = []
    for state in sg.states:
        enabled_here = sg.enabled_signals(state)
        for tname in sg.ts.enabled(state):
            b = stg.event_of(tname)
            if b.is_dummy:
                continue
            successor = sg.ts.fire(state, tname)
            enabled_after = sg.enabled_signals(successor)
            for (sig, direction) in enabled_here:
                if sig == b.signal:
                    continue
                if (sig, direction) in enabled_after:
                    continue
                a_noninput = stg.type_of(sig).is_noninput
                b_noninput = stg.type_of(b.signal).is_noninput
                if a_noninput:
                    kind = "output"
                elif b_noninput:
                    kind = "input"
                else:
                    continue  # input choice: allowed
                result.append(PersistencyViolation(
                    state, sig + direction, str(b), kind))
    return result


def find_csc_conflict_sat(stg: STG, bound: int = 30):
    """Search for a CSC conflict without building the state graph.

    Delegates to :func:`repro.sat.queries.csc_conflict`: two bounded
    unrollings of the token game, same binary code (equal signal
    parities), different non-input excitation.  Returns the
    :class:`repro.sat.queries.SatCSCConflict` witness (with replayed
    traces to both states) or None if no conflict exists within the
    bound.  Complements :func:`csc_conflicts`, which needs the full
    :class:`~repro.ts.state_graph.StateGraph`.
    """
    from ..sat.queries import csc_conflict as _csc_conflict

    return _csc_conflict(stg, bound=bound)


def find_csc_conflict_bdd(stg: STG, place_order: str = "dfs"):
    """Symbolic CSC check: conflicting codes without a state graph.

    Delegates to :class:`repro.bdd.queries.SymbolicCSC`: the reachable
    (marking, signal-parity) pairs are computed as a BDD fixpoint and the
    characteristic function of the conflicting codes is extracted from
    it.  Returns the :class:`~repro.bdd.queries.SymbolicCSC` object —
    ``has_conflict()``, ``conflict_count()`` and ``conflict_parities()``
    answer without enumerating a single state.  Complements
    :func:`csc_conflicts` (explicit, needs the full state graph) and
    :func:`find_csc_conflict_sat` (bounded search with witness traces).
    """
    from ..bdd.queries import SymbolicCSC

    return SymbolicCSC(stg, place_order=place_order)


def check_implementability(stg: STG,
                           max_states: int = DEFAULT_STATE_BOUND,
                           engine: str = "auto") -> ImplementabilityReport:
    """Run the full battery of Section 2.1 checks and return a report.

    ``engine`` selects the reachability engine used to build the state
    graph — any of the graph-building members of
    :data:`repro.ts.builder.ENGINES` (``"auto"``, ``"compiled"``,
    ``"naive"``, ``"bdd"``); the query-only ``"sat"`` and
    ``"portfolio"`` engines cannot build the graph this report needs
    (see :func:`repro.ts.builder.build_reachability_graph`), use
    :func:`find_csc_conflict_sat` / :func:`find_csc_conflict_bdd` or
    the racing checks of :mod:`repro.portfolio` for single-question
    analyses instead.
    """
    report = ImplementabilityReport(stg_name=stg.name)
    with obs.span("analysis.implementability", stg=stg.name,
                  engine=engine) as span:
        try:
            sg = build_state_graph(stg, max_states=max_states,
                                   engine=engine)
        except UnboundedError as exc:
            report.bounded = False
            report.consistency_error = str(exc)
            span.annotate(verdict="unbounded")
            return report
        except ConsistencyError as exc:
            report.bounded = True
            report.consistent = False
            report.consistency_error = str(exc)
            span.annotate(verdict="inconsistent")
            return report
        report.bounded = True
        report.consistent = True
        report.states = len(sg)
        report.usc_conflicts = usc_conflicts(sg)
        report.csc_conflicts = csc_conflicts(sg)
        report.persistency_violations = persistency_violations(sg)
        span.add("states", report.states)
        span.add("usc_conflicts", len(report.usc_conflicts))
        span.add("csc_conflicts", len(report.csc_conflicts))
        span.add("persistency_violations",
                 len(report.persistency_violations))
        span.annotate(
            verdict="implementable" if report.implementable
            else "not-implementable")
    return report
