"""Partial-order reduction with stubborn sets (paper, Section 2.2).

Valmari's stubborn-set method explores only a subset of the enabled
transitions at each marking while preserving all deadlocks.  The closure
rules implemented here are the classic ones for ordinary nets:

* if ``t`` in the set is *enabled*, every transition in structural conflict
  with ``t`` (sharing an input place) joins the set;
* if ``t`` in the set is *disabled*, all producers of one insufficiently
  marked input place of ``t`` join the set (the "necessary enabling set").

The reduced state space contains every deadlock of the full one; the
benchmark suite measures the reduction factor on the scalable workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..budgets import DEFAULT_STATE_BOUND
from ..errors import StateExplosionError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.token_game import enabled_transitions, fire, is_enabled
from ..ts.transition_system import TransitionSystem


def stubborn_set(net: PetriNet, marking: Marking,
                 seed: Optional[str] = None) -> Set[str]:
    """Compute a stubborn set at ``marking``.

    Returns the empty set at a deadlock.  The seed (first transition) is
    the lexicographically smallest enabled transition unless given.
    """
    enabled = enabled_transitions(net, marking)
    if not enabled:
        return set()
    if seed is None:
        seed = enabled[0]
    stubborn: Set[str] = {seed}
    worklist: List[str] = [seed]
    while worklist:
        t = worklist.pop()
        if is_enabled(net, marking, t):
            # add all structural conflicts of t
            for p in net.pre(t):
                for rival in net.postset(p):
                    if rival not in stubborn:
                        stubborn.add(rival)
                        worklist.append(rival)
        else:
            # pick one insufficiently marked input place, add its producers
            scapegoat = None
            for p in sorted(net.pre(t)):
                if marking.get(p) < net.pre(t)[p]:
                    scapegoat = p
                    break
            if scapegoat is None:
                continue
            for producer in net.preset(scapegoat):
                if producer not in stubborn:
                    stubborn.add(producer)
                    worklist.append(producer)
    return stubborn


def reduced_reachability(net: PetriNet,
                         max_states: int = DEFAULT_STATE_BOUND) -> TransitionSystem:
    """Stubborn-set-reduced state space (deadlock preserving)."""
    initial = net.initial_marking
    ts = TransitionSystem(initial)
    stack = [initial]
    seen = {initial}
    while stack:
        marking = stack.pop()
        chosen = stubborn_set(net, marking)
        for t in sorted(chosen):
            if not is_enabled(net, marking, t):
                continue
            succ = fire(net, marking, t, check=False)
            ts.add_arc(marking, t, succ)
            if succ not in seen:
                if len(seen) >= max_states:
                    raise StateExplosionError(
                        "reduced reachability exceeded %d states" % max_states,
                        bound=max_states, states=len(seen)
                    )
                seen.add(succ)
                stack.append(succ)
    return ts


def deadlocks_reduced(net: PetriNet,
                      max_states: int = DEFAULT_STATE_BOUND) -> List[Marking]:
    """Deadlocks found in the stubborn-set-reduced state space.

    Stubborn-set theory guarantees this is exactly the set of reachable
    deadlocks of the full state space.
    """
    ts = reduced_reachability(net, max_states)
    return sorted(
        (m for m in ts.states if not ts.successors(m)),
        key=repr,
    )


def reduction_statistics(net: PetriNet,
                         max_states: int = DEFAULT_STATE_BOUND) -> Dict[str, int]:
    """Full vs reduced state/arc counts — the Section 2.2 comparison."""
    from ..ts.builder import build_reachability_graph

    full = build_reachability_graph(net, max_states=max_states,
                                    require_safe=False)
    reduced = reduced_reachability(net, max_states=max_states)
    return {
        "full_states": len(full),
        "full_arcs": full.arc_count(),
        "reduced_states": len(reduced),
        "reduced_arcs": reduced.arc_count(),
    }
