"""Analysis and verification of STG specifications (paper Section 2)."""

from .implementability import (
    CSCConflict,
    ImplementabilityReport,
    PersistencyViolation,
    USCConflict,
    check_implementability,
    csc_conflicts,
    find_csc_conflict_bdd,
    find_csc_conflict_sat,
    persistency_violations,
    usc_conflicts,
)
from .stubborn import (
    deadlocks_reduced,
    reduced_reachability,
    reduction_statistics,
    stubborn_set,
)

__all__ = [
    "CSCConflict", "ImplementabilityReport", "PersistencyViolation",
    "USCConflict", "check_implementability", "csc_conflicts",
    "find_csc_conflict_bdd", "find_csc_conflict_sat",
    "persistency_violations", "usc_conflicts",
    "deadlocks_reduced", "reduced_reachability", "reduction_statistics",
    "stubborn_set",
]
