"""Symbolic (BDD-based) reachability of safe Petri nets — the ``"bdd"``
backend of the unified engine framework (paper, Section 2.2).

This module is no longer a standalone demo: it is one of the engines
behind :func:`repro.ts.builder.build_reachability_graph` (``auto`` /
``compiled`` / ``naive`` / ``bdd`` / ``sat``).  It serves two roles:

* **query engine** — :class:`SymbolicReachability` answers questions
  about the state space (``count``, ``find_deadlock``,
  ``safety_violation``, membership) on the characteristic-function
  representation, without ever enumerating markings; the wrappers in
  :mod:`repro.bdd.queries` expose this per model.
* **graph engine** — :meth:`SymbolicReachability.to_transition_system`
  materialises the symbolic fixpoint into an explicit
  :class:`~repro.ts.transition_system.TransitionSystem` that is
  bit-identical (same states, same arcs, same insertion order) to the
  ``naive`` and ``compiled`` engines, which is what
  ``build_reachability_graph(engine="bdd")`` returns.

Two state encodings are provided, mirroring the paper's discussion:

* **naive** — one boolean variable per place ("can be too costly for
  large designs");
* **dense** — the SM-component encoding: each state-machine component of
  an SM cover carries exactly one token, so its marked place is encoded in
  ``ceil(log2(k))`` bits.  For the reduced READ/WRITE net of Figure 6 the
  characteristic function of the reachable markings becomes the constant 1
  — reproduced in the benchmark suite.

The traversal is a least fixpoint on the *frontier set* (only newly
reached markings are passed to the image computation).  The transition
relation is **partitioned**: one small relation per transition over just
the places it touches, so the image quantifies and renames only those
variables and untouched places pass through unchanged.  The monolithic
disjunction the paper describes ("iterative application of the transition
function ... until the fixed point is reached") is kept as
``relation="monolithic"`` for ablation studies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..budgets import DEFAULT_STATE_BOUND
from ..errors import ModelError, StateExplosionError, UnboundedError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.structure import DenseEncoding, SMComponent, sm_cover
from .bdd import BDD, FALSE, TRUE

#: Relation styles accepted by the symbolic engines.
RELATION_STYLES = ("partitioned", "monolithic")


def structural_place_order(net: PetriNet) -> List[str]:
    """Variable-ordering heuristic: DFS over the net graph from the
    initially marked places, so that tightly coupled places (e.g. the four
    places of one handshake) get adjacent BDD variables.  Variable order is
    the single biggest lever on BDD size (Bryant); the benchmark suite
    demonstrates the gap against the naive sorted order."""
    order: List[str] = []
    seen = set()
    roots = sorted(p for p in net.places if net.places[p].tokens) or \
        sorted(net.places)
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node in net.places:
            order.append(node)
        neighbours = sorted(net.postset(node)) + sorted(net.preset(node))
        stack.extend(reversed([n for n in neighbours if n not in seen]))
    for p in sorted(net.places):
        if p not in seen:
            order.append(p)
    return order


#: A partitioned-relation entry: transition name, relation BDD over the
#: touched current/next variables, the touched current variables to
#: quantify, and the primed-to-current rename map.
PartitionedRelation = Tuple[str, int, List[str], Dict[str, str]]


def marking_relation_parts(bdd: BDD, net: PetriNet, transition: str,
                           safe: bool = False) -> Tuple[List[int], List[str]]:
    """The marking part of one transition's relation over place variables.

    Returns ``(literals, touched_places)`` where the literals are the
    enabling cube over current variables plus the post/consumed updates
    over primed variables.  With ``safe=True`` the enabling cube also
    requires every output place outside the preset to be empty — the
    relation then models exactly the 1-safe token game (a would-be unsafe
    firing is simply disabled), which is what the safety decision
    procedure traverses.
    """
    pre = set(net.pre(transition))
    post = set(net.post(transition))
    parts = [bdd.var(p) for p in sorted(pre)]
    if safe:
        parts.extend(bdd.nvar(p) for p in sorted(post - pre))
    for p in sorted(pre | post):
        nxt = p + "'"
        parts.append(bdd.var(nxt) if p in post else bdd.nvar(nxt))
    return parts, sorted(pre | post)


def find_safety_clash(bdd: BDD, net: PetriNet, reached: int,
                      places: Sequence[str]
                      ) -> Optional[Tuple[str, Dict[str, int]]]:
    """First (transition, place-assignment) in ``reached`` whose firing
    would put a second token somewhere, or None.  ``reached`` must be the
    *safe-guarded* fixpoint (see :func:`marking_relation_parts`), so the
    returned marking is genuinely reachable in the real token game."""
    for t in sorted(net.transitions):
        pre = set(net.pre(t))
        extra = sorted(set(net.post(t)) - pre)
        if not extra:
            continue
        enabled = bdd.conj([bdd.var(p) for p in sorted(pre)])
        clash = bdd.apply_and(bdd.apply_and(reached, enabled),
                              bdd.disj([bdd.var(p) for p in extra]))
        if clash != FALSE:
            return t, bdd.pick(clash, places)
    return None


def raise_unsafe(net: PetriNet, transition: str, marking: Marking) -> None:
    """Raise :class:`UnboundedError` with the naive engine's message."""
    offenders = [p for p in sorted(set(net.post(transition)))
                 if marking.get(p) and p not in net.pre(transition)]
    raise UnboundedError(
        "firing %r from %r violates 1-safeness at %r"
        % (transition, marking, offenders))


def _frontier_fixpoint(bdd: BDD, init: int,
                       partitioned: Sequence[PartitionedRelation]) -> int:
    """Least fixpoint of the reachable set by frontier-set image steps.

    Each iteration computes ``Img(frontier) = ∨_t ∃touched_t . frontier ∧
    T_t`` (renamed back to current variables) and extends the reached set
    with it; only the genuinely new part becomes the next frontier.
    """
    reached = init
    frontier = init
    iterations = 0
    while frontier != FALSE:
        iterations += 1
        parts = []
        for _name, relation, current, rename_back in partitioned:
            part = bdd.and_exists(frontier, relation, current)
            if rename_back:
                part = bdd.rename(part, rename_back)
            parts.append(part)
        image = bdd.disj(parts)
        frontier = bdd.apply_and(image, bdd.apply_not(reached))
        reached = bdd.apply_or(reached, image)
    # one call per fixpoint: attaches to the enclosing traversal span
    # (no-op when the obs layer is disabled or no span is active)
    obs.add("image_iterations", iterations)
    return reached


def traced_traversal(name: str, bdd: BDD, compute: Callable[[], int],
                     **tags) -> int:
    """Run one symbolic traversal under an observability span.

    Wraps ``compute()`` in an :func:`repro.obs.span` named ``name`` and
    snapshots the manager's work counters around it: the per-traversal
    ``ite_lookups`` / ``ite_hits`` deltas, the resulting
    ``cache_hit_rate``, and the ``peak_nodes`` gauge (the node table
    only grows, so its size is the peak).  The fixpoint's
    ``image_iterations`` counter lands on the same span via
    :func:`repro.obs.add`.  The manager's :meth:`~repro.bdd.bdd.BDD.stats`
    doubles as the heartbeat progress provider while the traversal runs
    (live node counts for portfolio workers, see
    :mod:`repro.obs.remote`).  Disabled, this is a single boolean check
    plus the plain ``compute()`` call.
    """
    if not obs.enabled():
        return compute()
    lookups = bdd.ite_lookups
    hits = bdd.ite_hits
    with obs.span(name, **tags) as span:
        obs.push_progress(bdd.stats)
        try:
            result = compute()
        finally:
            obs.pop_progress()
        d_lookups = bdd.ite_lookups - lookups
        d_hits = bdd.ite_hits - hits
        span.add("ite_lookups", d_lookups)
        span.add("ite_hits", d_hits)
        span.set_gauge("cache_hit_rate",
                       d_hits / d_lookups if d_lookups else 0.0)
        span.set_gauge("peak_nodes", bdd.node_count())
        span.set_gauge("result_nodes", bdd.size(result))
    return result


class SymbolicReachability:
    """Symbolic reachability with the naive one-variable-per-place encoding.

    ``initial`` overrides the net's initial marking (it must be 1-safe and
    mark only known places); ``relation`` selects ``"partitioned"``
    (default) or ``"monolithic"`` image computation.
    """

    def __init__(self, net: PetriNet, place_order: str = "dfs",
                 initial: Optional[Marking] = None,
                 relation: str = "partitioned"):
        if not net.has_ordinary_arcs():
            raise ModelError("symbolic traversal requires arc weights of 1")
        if relation not in RELATION_STYLES:
            raise ModelError("unknown relation style %r (expected one of %s)"
                             % (relation, RELATION_STYLES))
        self.net = net
        self.relation = relation
        if initial is None:
            initial = net.initial_marking
        for p in initial.places():
            if p not in net.places:
                raise ModelError("unknown place %r in initial marking" % p)
        if not initial.is_safe():
            raise ModelError("symbolic traversal requires a 1-safe initial"
                             " marking")
        self.initial = initial
        if place_order == "dfs":
            self.places = structural_place_order(net)
        elif place_order == "sorted":
            self.places = sorted(net.places)
        else:
            raise ModelError("unknown place_order %r" % place_order)
        variables: List[str] = []
        for p in self.places:
            variables.append(p)          # current-state variable
            variables.append(p + "'")    # next-state variable
        self.bdd = BDD(variables)
        self._reached: Optional[int] = None
        self._partitioned: Optional[List[PartitionedRelation]] = None
        self._monolithic: Optional[int] = None
        self._violation: Optional[Tuple[str, Marking]] = None
        self._violation_known = False

    # -- encodings ------------------------------------------------------ #

    def marking_to_bdd(self, marking: Marking) -> int:
        """The characteristic function of a single safe marking."""
        return self.bdd.from_cube(
            {p: 1 if marking.get(p) else 0 for p in self.places}
        )

    def partitioned_relations(self) -> List[PartitionedRelation]:
        """Per-transition relations over just the touched places.

        Each entry is ``(name, T_t, touched_current, rename_back)`` where
        ``T_t = ∧_{p∈pre} x_p ∧ ∧_{p∈post} x'_p ∧ ∧_{p∈pre∖post} ¬x'_p``.
        Untouched places carry no frame constraint — the image computation
        leaves them alone, which is what makes the partitioned traversal
        cheap on nets whose transitions are local (the common case for
        handshake circuits).
        """
        if self._partitioned is not None:
            return self._partitioned
        self._partitioned = self._relations(safe=False)
        return self._partitioned

    def _relations(self, safe: bool) -> List[PartitionedRelation]:
        bdd = self.bdd
        result: List[PartitionedRelation] = []
        for t in sorted(self.net.transitions):
            parts, touched = marking_relation_parts(bdd, self.net, t,
                                                    safe=safe)
            rename_back = {p + "'": p for p in touched}
            result.append((t, bdd.conj(parts), touched, rename_back))
        return result

    def transition_relation(self) -> int:
        """Monolithic relation T(x, x') = ∨_t enabled_t(x) ∧ update_t(x, x')
        with explicit frame constraints for untouched places — the form the
        paper describes; kept for the relation-style ablation."""
        if self._monolithic is not None:
            return self._monolithic
        bdd = self.bdd
        relations = []
        for t, relation, touched, _rename in self.partitioned_relations():
            parts = [relation]
            touched_set = set(touched)
            for p in self.places:
                if p in touched_set:
                    continue
                # frame: x_p' == x_p
                same = bdd.apply_not(bdd.apply_xor(bdd.var(p),
                                                   bdd.var(p + "'")))
                parts.append(same)
            relations.append(bdd.conj(parts))
        self._monolithic = bdd.disj(relations)
        return self._monolithic

    # -- traversal ------------------------------------------------------ #

    def reachable(self) -> int:
        """BDD over the current-state variables of all reachable markings."""
        if self._reached is not None:
            return self._reached

        def compute() -> int:
            bdd = self.bdd
            init = self.marking_to_bdd(self.initial)
            if self.relation == "partitioned":
                return _frontier_fixpoint(bdd, init,
                                          self.partitioned_relations())
            relation = self.transition_relation()
            rename_back = {p + "'": p for p in self.places}
            monolithic = [("*", relation, list(self.places), rename_back)]
            return _frontier_fixpoint(bdd, init, monolithic)

        reached = traced_traversal(
            "bdd.fixpoint", self.bdd, compute, engine="bdd",
            net=self.net.name, encoding="naive", relation=self.relation,
            places=len(self.places))
        self._reached = reached
        return reached

    def count(self) -> int:
        """Number of reachable markings."""
        reached = self.reachable()
        # quantify away primed variables (they are unconstrained in R)
        primed = [p + "'" for p in self.places]
        core = self.bdd.exists(reached, primed)
        return self.bdd.satcount(core) >> len(primed)

    #: Query-style alias: the reachable-marking count without enumeration.
    reachable_count = count

    def bdd_size(self) -> int:
        """Node count of the reachable-set BDD."""
        return self.bdd.size(self.reachable())

    def contains(self, marking: Marking) -> bool:
        """True iff the marking is reachable (membership in the BDD)."""
        env = {p: 1 if marking.get(p) else 0 for p in self.places}
        for p in self.places:
            env[p + "'"] = 0
        return self.bdd.eval(self.reachable(), env) == TRUE

    def deadlocks(self) -> int:
        """BDD of reachable dead markings."""
        bdd = self.bdd
        enabled_any = bdd.disj([
            bdd.conj([bdd.var(p) for p in self.net.pre(t)])
            for t in sorted(self.net.transitions)
        ])
        return bdd.apply_and(self.reachable(), bdd.apply_not(enabled_any))

    # -- query variants (no materialisation) ---------------------------- #

    def _marking_of(self, assignment: Dict[str, int]) -> Marking:
        return Marking({p: 1 for p in self.places if assignment.get(p)})

    def find_deadlock(self) -> Optional[Marking]:
        """One reachable dead marking, or None if the net is deadlock-free.

        Raises :class:`UnboundedError` for non-1-safe nets (the capped
        symbolic semantics would silently misreport them otherwise).
        """
        self.assert_safe()
        dead = self.deadlocks()
        if dead == FALSE:
            return None
        return self._marking_of(self.bdd.pick(dead, self.places))

    def deadlock_markings(self) -> List[Marking]:
        """All reachable dead markings (enumerated from the deadlock BDD).

        Raises :class:`UnboundedError` for non-1-safe nets.
        """
        self.assert_safe()
        dead = self.deadlocks()
        return sorted((self._marking_of(a)
                       for a in self.bdd.sat_over(dead, self.places)),
                      key=lambda m: repr(m))

    def safety_violation(self) -> Optional[Tuple[str, Marking]]:
        """A 1-safeness violation witness, or None if the net is safe.

        Returns ``(transition, marking)`` where ``marking`` is reachable
        *in the real token game* and enables ``transition`` while some
        output place outside its preset is already marked — firing would
        put a second token there.  The traversal behind the answer uses
        the safe-guarded relations (unsafe firings are disabled instead
        of capped), so every visited marking is genuinely reachable; and
        since the first unsafe firing of any run happens from exactly
        such a marking, the test is an exact safety decision procedure.
        On a safe net the guarded fixpoint *is* the reachable set, so the
        extra traversal is reused rather than recomputed.
        """
        if self._violation_known:
            return self._violation
        bdd = self.bdd
        init = self.marking_to_bdd(self.initial)
        safe_reached = traced_traversal(
            "bdd.safety", bdd,
            lambda: _frontier_fixpoint(bdd, init,
                                       self._relations(safe=True)),
            engine="bdd", net=self.net.name)
        clash = find_safety_clash(bdd, self.net, safe_reached, self.places)
        if clash is None:
            self._violation = None
            if self._reached is None:
                # safe net: the guarded and unguarded fixpoints coincide
                self._reached = safe_reached
        else:
            t, assignment = clash
            self._violation = (t, self._marking_of(assignment))
        self._violation_known = True
        return self._violation

    def assert_safe(self) -> None:
        """Raise :class:`UnboundedError` (with the same witness message as
        the naive engine) unless the net is 1-safe from ``initial``."""
        violation = self.safety_violation()
        if violation is not None:
            raise_unsafe(self.net, *violation)

    # -- materialisation ------------------------------------------------ #

    def to_transition_system(self, max_states: int = DEFAULT_STATE_BOUND):
        """Materialise the symbolic fixpoint as an explicit
        :class:`~repro.ts.transition_system.TransitionSystem`.

        The symbolic phase decides the questions that make explicit
        enumeration safe to attempt — 1-safety (:class:`UnboundedError`
        with a witness otherwise) and the state budget
        (:class:`StateExplosionError` *before* any enumeration) — and the
        explicit phase then replays the token game in BFS order (states in
        discovery order, transitions in sorted name order per state),
        cross-checking every visited marking against the reachable BDD.
        The result is bit-identical to the ``naive`` and ``compiled``
        engines of :mod:`repro.ts.builder`.
        """
        from ..petri.token_game import enabled_transitions, fire
        from ..ts.transition_system import TransitionSystem

        self.assert_safe()
        total = self.count()
        if total > max_states:
            raise StateExplosionError(
                "reachability graph exceeded %d states (symbolic count: %d)"
                % (max_states, total), bound=max_states, states=total)
        reached = self.reachable()
        bdd = self.bdd
        net = self.net
        ts = TransitionSystem(self.initial)
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            next_frontier = []
            for marking in frontier:
                for t in enabled_transitions(net, marking):
                    succ = fire(net, marking, t, check=False)
                    ts.add_arc(marking, t, succ)
                    if succ not in seen:
                        env = {p: 1 if succ.get(p) else 0
                               for p in self.places}
                        if bdd.eval(reached, env) != TRUE:
                            raise ModelError(
                                "internal error: explicit replay reached"
                                " %r outside the symbolic fixpoint" % succ)
                        seen.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
        return ts


class DenseSymbolicReachability:
    """Symbolic reachability with the SM-component dense encoding (§2.2)."""

    def __init__(self, net: PetriNet,
                 cover: Optional[List[SMComponent]] = None,
                 relation: str = "partitioned"):
        if relation not in RELATION_STYLES:
            raise ModelError("unknown relation style %r (expected one of %s)"
                             % (relation, RELATION_STYLES))
        self.net = net
        self.relation = relation
        self.encoding = DenseEncoding(net, cover)
        variables: List[str] = []
        for v in self.encoding.variables:
            variables.append(v)
            variables.append(v + "'")
        self.bdd = BDD(variables)
        self._reached: Optional[int] = None
        self._partitioned: Optional[List[PartitionedRelation]] = None

    # -- encodings ------------------------------------------------------ #

    def _cube_to_bdd(self, cube: str, primed: bool) -> int:
        assignment = {}
        for bit, value in enumerate(cube):
            if value == "-":
                continue
            name = self.encoding.variables[bit] + ("'" if primed else "")
            assignment[name] = int(value)
        return self.bdd.from_cube(assignment)

    def marking_to_bdd(self, marking: Marking) -> int:
        """Characteristic function of a marking in the dense encoding."""
        return self._cube_to_bdd(self.encoding.encode(marking), primed=False)

    def partitioned_relations(self) -> List[PartitionedRelation]:
        """Per-transition relations over the dense variables.

        For each SM component the transition consumes from exactly one
        place and produces into exactly one place of the component; bits of
        untouched components are left unconstrained (the image computation
        passes them through, replacing the frame terms of the monolithic
        relation).
        """
        if self._partitioned is not None:
            return self._partitioned
        result: List[PartitionedRelation] = []
        for t in sorted(self.net.transitions):
            pre = set(self.net.pre(t))
            post = set(self.net.post(t))
            parts: List[int] = []
            touched_bits: Set[int] = set()
            for component, bits, codes in self.encoding.groups:
                pre_in = sorted(pre & component.places)
                post_in = sorted(post & component.places)
                if not pre_in and not post_in:
                    continue
                if len(pre_in) != 1 or len(post_in) != 1:
                    raise ModelError(
                        "transition %r does not cross component %r exactly"
                        " once" % (t, sorted(component.places)))
                touched_bits.update(bits)
                parts.append(self._bits_equal(bits, codes[pre_in[0]],
                                              primed=False))
                parts.append(self._bits_equal(bits, codes[post_in[0]],
                                              primed=True))
            touched = [self.encoding.variables[b] for b in
                       sorted(touched_bits)]
            rename_back = {v + "'": v for v in touched}
            result.append((t, self.bdd.conj(parts), touched, rename_back))
        self._partitioned = result
        return result

    def transition_relation(self) -> int:
        """Monolithic dense relation (per-transition disjuncts plus frame
        constraints for the bits of untouched components)."""
        bdd = self.bdd
        relations = []
        for t, relation, touched, _rename in self.partitioned_relations():
            parts = [relation]
            touched_set = set(touched)
            for v in self.encoding.variables:
                if v in touched_set:
                    continue
                same = bdd.apply_not(
                    bdd.apply_xor(bdd.var(v), bdd.var(v + "'")))
                parts.append(same)
            relations.append(bdd.conj(parts))
        return bdd.disj(relations)

    def _bits_equal(self, bits: Sequence[int], code: int, primed: bool) -> int:
        parts = []
        for offset, bit in enumerate(reversed(list(bits))):
            name = self.encoding.variables[bit] + ("'" if primed else "")
            value = (code >> offset) & 1
            parts.append(self.bdd.var(name) if value else self.bdd.nvar(name))
        return self.bdd.conj(parts)

    # -- traversal ------------------------------------------------------ #

    def reachable(self) -> int:
        """BDD of reachable codes over the dense current-state variables."""
        if self._reached is not None:
            return self._reached

        def compute() -> int:
            bdd = self.bdd
            init = self.marking_to_bdd(self.net.initial_marking)
            if self.relation == "partitioned":
                return _frontier_fixpoint(bdd, init,
                                          self.partitioned_relations())
            relation = self.transition_relation()
            rename_back = {v + "'": v for v in self.encoding.variables}
            monolithic = [("*", relation, list(self.encoding.variables),
                           rename_back)]
            return _frontier_fixpoint(bdd, init, monolithic)

        reached = traced_traversal(
            "bdd.fixpoint", self.bdd, compute, engine="bdd",
            net=self.net.name, encoding="dense", relation=self.relation,
            bits=self.encoding.width)
        self._reached = reached
        return reached

    def characteristic_is_constant_true(self) -> bool:
        """The paper's punchline for the reduced READ/WRITE net: with the
        dense encoding the characteristic function of the reachability set
        reduces to the constant 1."""
        primed = [v + "'" for v in self.encoding.variables]
        core = self.bdd.exists(self.reachable(), primed)
        return core == TRUE

    def count(self) -> int:
        """Number of reachable dense codes."""
        primed = [v + "'" for v in self.encoding.variables]
        core = self.bdd.exists(self.reachable(), primed)
        return self.bdd.satcount(core) >> len(primed)

    #: Query-style alias: the reachable-code count without enumeration.
    reachable_count = count

    def bdd_size(self) -> int:
        """Node count of the dense reachable-set BDD."""
        return self.bdd.size(self.reachable())


def symbolic_marking_count(net: PetriNet, encoding: str = "naive") -> int:
    """Convenience: number of reachable markings via symbolic traversal.

    Delegates to :func:`repro.bdd.queries.reachable_count` (so non-1-safe
    nets raise :class:`UnboundedError` rather than being silently
    miscounted).  Note that with the dense encoding the count is over
    *codes*; places sharing code bits may alias if the SM cover's
    components overlap.
    """
    from .queries import reachable_count

    return reachable_count(net, encoding=encoding)
