"""Symbolic (BDD-based) reachability analysis of safe Petri nets
(paper, Section 2.2).

Two state encodings are provided, mirroring the paper's discussion:

* **naive** — one boolean variable per place ("can be too costly for
  large designs");
* **dense** — the SM-component encoding: each state-machine component of
  an SM cover carries exactly one token, so its marked place is encoded in
  ``ceil(log2(k))`` bits.  For the reduced READ/WRITE net of Figure 6 the
  characteristic function of the reachable markings becomes the constant 1
  — reproduced in the benchmark suite.

The traversal is the standard least fixpoint with a monolithic transition
relation built as the disjunction of per-transition relations, exactly as
described in the paper ("starting from the initial marking by iterative
application of the transition function ... until the fixed point is
reached").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ModelError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.structure import DenseEncoding, SMComponent, sm_cover
from .bdd import BDD, FALSE, TRUE


def structural_place_order(net: PetriNet) -> List[str]:
    """Variable-ordering heuristic: DFS over the net graph from the
    initially marked places, so that tightly coupled places (e.g. the four
    places of one handshake) get adjacent BDD variables.  Variable order is
    the single biggest lever on BDD size (Bryant); the benchmark suite
    demonstrates the gap against the naive sorted order."""
    order: List[str] = []
    seen = set()
    roots = sorted(p for p in net.places if net.places[p].tokens) or \
        sorted(net.places)
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node in net.places:
            order.append(node)
        neighbours = sorted(net.postset(node)) + sorted(net.preset(node))
        stack.extend(reversed([n for n in neighbours if n not in seen]))
    for p in sorted(net.places):
        if p not in seen:
            order.append(p)
    return order


class SymbolicReachability:
    """Symbolic reachability with the naive one-variable-per-place encoding."""

    def __init__(self, net: PetriNet, place_order: str = "dfs"):
        if not net.has_ordinary_arcs():
            raise ModelError("symbolic traversal requires arc weights of 1")
        self.net = net
        if place_order == "dfs":
            self.places = structural_place_order(net)
        elif place_order == "sorted":
            self.places = sorted(net.places)
        else:
            raise ModelError("unknown place_order %r" % place_order)
        variables: List[str] = []
        for p in self.places:
            variables.append(p)          # current-state variable
            variables.append(p + "'")    # next-state variable
        self.bdd = BDD(variables)
        self._reached: Optional[int] = None

    # -- encodings ------------------------------------------------------ #

    def marking_to_bdd(self, marking: Marking) -> int:
        """The characteristic function of a single safe marking."""
        return self.bdd.from_cube(
            {p: 1 if marking.get(p) else 0 for p in self.places}
        )

    def transition_relation(self) -> int:
        """Monolithic relation T(x, x') = ∨_t enabled_t(x) ∧ update_t(x, x')."""
        bdd = self.bdd
        relations = []
        for t in sorted(self.net.transitions):
            pre = set(self.net.pre(t))
            post = set(self.net.post(t))
            parts: List[int] = []
            for p in pre:
                parts.append(bdd.var(p))
            for p in sorted(pre | post):
                nxt = p + "'"
                if p in post:
                    parts.append(bdd.var(nxt))
                else:
                    parts.append(bdd.nvar(nxt))
            for p in self.places:
                if p in pre or p in post:
                    continue
                # frame: x_p' == x_p
                same = bdd.apply_not(bdd.apply_xor(bdd.var(p),
                                                   bdd.var(p + "'")))
                parts.append(same)
            relations.append(bdd.conj(parts))
        return bdd.disj(relations)

    # -- traversal ------------------------------------------------------ #

    def reachable(self) -> int:
        """BDD over the current-state variables of all reachable markings."""
        if self._reached is not None:
            return self._reached
        bdd = self.bdd
        relation = self.transition_relation()
        current_vars = self.places
        rename_back = {p + "'": p for p in self.places}
        reached = self.marking_to_bdd(self.net.initial_marking)
        frontier = reached
        while True:
            image = bdd.and_exists(frontier, relation, current_vars)
            image = bdd.rename(image, rename_back)
            new_reached = bdd.apply_or(reached, image)
            if new_reached == reached:
                break
            frontier = bdd.apply_and(image, bdd.apply_not(reached))
            reached = new_reached
        self._reached = reached
        return reached

    def count(self) -> int:
        """Number of reachable markings."""
        reached = self.reachable()
        # quantify away primed variables (they are unconstrained in R)
        primed = [p + "'" for p in self.places]
        core = self.bdd.exists(reached, primed)
        return self.bdd.satcount(core) >> len(primed)

    def bdd_size(self) -> int:
        """Node count of the reachable-set BDD."""
        return self.bdd.size(self.reachable())

    def contains(self, marking: Marking) -> bool:
        """True iff the marking is reachable (membership in the BDD)."""
        env = {p: 1 if marking.get(p) else 0 for p in self.places}
        for p in self.places:
            env[p + "'"] = 0
        return self.bdd.eval(self.reachable(), env) == TRUE

    def deadlocks(self) -> int:
        """BDD of reachable dead markings."""
        bdd = self.bdd
        enabled_any = bdd.disj([
            bdd.conj([bdd.var(p) for p in self.net.pre(t)])
            for t in sorted(self.net.transitions)
        ])
        return bdd.apply_and(self.reachable(), bdd.apply_not(enabled_any))


class DenseSymbolicReachability:
    """Symbolic reachability with the SM-component dense encoding (§2.2)."""

    def __init__(self, net: PetriNet,
                 cover: Optional[List[SMComponent]] = None):
        self.net = net
        self.encoding = DenseEncoding(net, cover)
        variables: List[str] = []
        for v in self.encoding.variables:
            variables.append(v)
            variables.append(v + "'")
        self.bdd = BDD(variables)
        self._reached: Optional[int] = None

    # -- encodings ------------------------------------------------------ #

    def _cube_to_bdd(self, cube: str, primed: bool) -> int:
        assignment = {}
        for bit, value in enumerate(cube):
            if value == "-":
                continue
            name = self.encoding.variables[bit] + ("'" if primed else "")
            assignment[name] = int(value)
        return self.bdd.from_cube(assignment)

    def marking_to_bdd(self, marking: Marking) -> int:
        """Characteristic function of a marking in the dense encoding."""
        return self._cube_to_bdd(self.encoding.encode(marking), primed=False)

    def transition_relation(self) -> int:
        """Per-transition relations over the dense variables.

        For each SM component the transition consumes from exactly one
        place and produces into exactly one place of the component; bits of
        untouched components are framed.
        """
        bdd = self.bdd
        relations = []
        for t in sorted(self.net.transitions):
            pre = set(self.net.pre(t))
            post = set(self.net.post(t))
            parts: List[int] = []
            touched_bits: Set[int] = set()
            for component, bits, codes in self.encoding.groups:
                pre_in = sorted(pre & component.places)
                post_in = sorted(post & component.places)
                if not pre_in and not post_in:
                    continue
                if len(pre_in) != 1 or len(post_in) != 1:
                    raise ModelError(
                        "transition %r does not cross component %r exactly"
                        " once" % (t, sorted(component.places)))
                touched_bits.update(bits)
                parts.append(self._bits_equal(bits, codes[pre_in[0]],
                                              primed=False))
                parts.append(self._bits_equal(bits, codes[post_in[0]],
                                              primed=True))
            for bit, v in enumerate(self.encoding.variables):
                if bit in touched_bits:
                    continue
                same = bdd.apply_not(
                    bdd.apply_xor(bdd.var(v), bdd.var(v + "'")))
                parts.append(same)
            relations.append(bdd.conj(parts))
        return bdd.disj(relations)

    def _bits_equal(self, bits: Sequence[int], code: int, primed: bool) -> int:
        parts = []
        for offset, bit in enumerate(reversed(list(bits))):
            name = self.encoding.variables[bit] + ("'" if primed else "")
            value = (code >> offset) & 1
            parts.append(self.bdd.var(name) if value else self.bdd.nvar(name))
        return self.bdd.conj(parts)

    # -- traversal ------------------------------------------------------ #

    def reachable(self) -> int:
        """BDD of reachable codes over the dense current-state variables."""
        if self._reached is not None:
            return self._reached
        bdd = self.bdd
        relation = self.transition_relation()
        current_vars = list(self.encoding.variables)
        rename_back = {v + "'": v for v in self.encoding.variables}
        reached = self.marking_to_bdd(self.net.initial_marking)
        frontier = reached
        while True:
            image = bdd.and_exists(frontier, relation, current_vars)
            image = bdd.rename(image, rename_back)
            new_reached = bdd.apply_or(reached, image)
            if new_reached == reached:
                break
            frontier = bdd.apply_and(image, bdd.apply_not(reached))
            reached = new_reached
        self._reached = reached
        return reached

    def characteristic_is_constant_true(self) -> bool:
        """The paper's punchline for the reduced READ/WRITE net: with the
        dense encoding the characteristic function of the reachability set
        reduces to the constant 1."""
        primed = [v + "'" for v in self.encoding.variables]
        core = self.bdd.exists(self.reachable(), primed)
        return core == TRUE

    def count(self) -> int:
        """Number of reachable dense codes."""
        primed = [v + "'" for v in self.encoding.variables]
        core = self.bdd.exists(self.reachable(), primed)
        return self.bdd.satcount(core) >> len(primed)

    def bdd_size(self) -> int:
        """Node count of the dense reachable-set BDD."""
        return self.bdd.size(self.reachable())


def symbolic_marking_count(net: PetriNet, encoding: str = "naive") -> int:
    """Convenience: number of reachable markings via symbolic traversal.

    Note that with the dense encoding the count is over *codes*; places
    sharing code bits may alias if the SM cover's components overlap.
    """
    if encoding == "naive":
        return SymbolicReachability(net).count()
    if encoding == "dense":
        return DenseSymbolicReachability(net).count()
    raise ModelError("unknown encoding %r" % encoding)
