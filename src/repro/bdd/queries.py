"""Symbolic queries: answers about the state space without materialising it.

The graph-building engines of :mod:`repro.ts.builder` pay for every
marking; the functions here answer the common questions on the BDD
characteristic function instead, mirroring :mod:`repro.sat.queries` (the
bounded-model-checking query engine) with exact fixpoint semantics:

* :func:`reachable_count` — how many markings are reachable;
* :func:`find_deadlock` / :func:`has_deadlock` — reachable dead markings;
* :class:`SymbolicCSC` / :func:`csc_conflict_chf` — a *characteristic
  function* of the CSC-conflicting binary codes of an STG.

The CSC encoding borrows the parity trick of
:class:`repro.sat.encodings.STGEncoding`: the symbolic state is the
marking extended with one *parity* bit per signal (number of that
signal's transitions fired so far, mod 2).  Two reachable states carry
the same binary code iff their parity vectors coincide (code = initial
code XOR parity), so codes can be compared without knowing the initial
signal values — and the conflict characteristic function lives over the
parity variables alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .. import obs
from ..errors import ModelError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..stg.signals import FALL, RISE
from ..stg.stg import STG
from .bdd import BDD, FALSE
from .symbolic import (
    DenseSymbolicReachability,
    SymbolicReachability,
    _frontier_fixpoint,
    find_safety_clash,
    marking_relation_parts,
    raise_unsafe,
    structural_place_order,
    traced_traversal,
)

Model = Union[PetriNet, STG]


def _net_of(model: Model) -> PetriNet:
    return model.net if isinstance(model, STG) else model


def reachable_count(model: Model, encoding: str = "naive",
                    place_order: str = "dfs") -> int:
    """Number of reachable markings of a Petri net or STG, symbolically.

    ``encoding="naive"`` uses one BDD variable per place;
    ``encoding="dense"`` uses the SM-component encoding of Section 2.2
    (the count is then over dense *codes*).  No marking is ever
    enumerated, so the answer is available at sizes where the explicit
    engines blow their state budget.
    """
    net = _net_of(model)
    if encoding == "naive":
        sym = SymbolicReachability(net, place_order=place_order)
        sym.assert_safe()  # capped semantics would miscount unsafe nets
        return sym.count()
    if encoding == "dense":
        return DenseSymbolicReachability(net).count()
    raise ModelError("unknown encoding %r (expected 'naive' or 'dense')"
                     % encoding)


def find_deadlock(model: Model, place_order: str = "dfs"
                  ) -> Optional[Marking]:
    """One reachable dead marking, or None if the model is deadlock-free.

    Unlike :func:`repro.sat.queries.find_deadlock` this is a complete
    fixpoint answer, not a bounded search — a ``None`` here is a proof.
    """
    net = _net_of(model)
    return SymbolicReachability(net, place_order=place_order).find_deadlock()


def has_deadlock(model: Model) -> bool:
    """True iff some reachable marking enables no transition."""
    return find_deadlock(model) is not None


class SymbolicCSC:
    """Symbolic Complete State Coding check for an STG (Section 2.1).

    The symbolic state is ``(marking, parity)``: one BDD variable per
    place plus one per signal (the signal's transition-count parity).
    Transitions update the marking exactly as in
    :class:`~repro.bdd.symbolic.SymbolicReachability` and toggle the
    parity bit of their signal (dummy events toggle nothing).

    A CSC conflict exists iff some parity vector (equivalently: some
    binary code) is shared by two reachable states with different
    non-input excitation.  :meth:`conflict_chf` returns the
    characteristic function of exactly those parity vectors — the whole
    check runs on characteristic functions, with no state graph and no
    state enumeration.
    """

    #: Prefix of the per-signal parity variables in the BDD.
    PARITY_PREFIX = "code:"

    def __init__(self, stg: STG, place_order: str = "dfs"):
        net = stg.net
        if not net.has_ordinary_arcs():
            raise ModelError("symbolic CSC requires arc weights of 1")
        if not net.initial_marking.is_safe():
            raise ModelError("symbolic CSC requires a 1-safe initial marking")
        self.stg = stg
        self.net = net
        if place_order == "dfs":
            self.places = structural_place_order(net)
        elif place_order == "sorted":
            self.places = sorted(net.places)
        else:
            raise ModelError("unknown place_order %r" % place_order)
        self.signals: List[str] = list(stg.signals)
        self.parity_var: Dict[str, str] = {
            s: self.PARITY_PREFIX + s for s in self.signals
        }
        variables: List[str] = []
        for p in self.places:
            variables.append(p)
            variables.append(p + "'")
        for s in self.signals:
            v = self.parity_var[s]
            variables.append(v)
            variables.append(v + "'")
        self.bdd = BDD(variables)
        self._reached: Optional[int] = None
        self._chf: Optional[int] = None

    # -- traversal ------------------------------------------------------ #

    def _relations(self):
        """Safe-guarded marking relations extended with parity toggles."""
        bdd = self.bdd
        result = []
        for t in sorted(self.net.transitions):
            parts, touched = marking_relation_parts(bdd, self.net, t,
                                                    safe=True)
            event = self.stg.event_of(t)
            if not event.is_dummy:
                v = self.parity_var[event.signal]
                # toggle: parity' = NOT parity
                parts.append(bdd.apply_xor(bdd.var(v), bdd.var(v + "'")))
                touched.append(v)
            rename_back = {n + "'": n for n in touched}
            result.append((t, bdd.conj(parts), touched, rename_back))
        return result

    def reachable(self) -> int:
        """BDD of reachable ``(marking, parity)`` pairs (current vars).

        The traversal uses the safe-guarded relations, so it doubles as
        the safety decision procedure: a non-1-safe STG raises
        :class:`~repro.errors.UnboundedError` with a genuinely reachable
        witness (CSC is only defined on safe STGs).
        """
        if self._reached is not None:
            return self._reached
        init_cube = {p: 1 if self.net.initial_marking.get(p) else 0
                     for p in self.places}
        for s in self.signals:
            init_cube[self.parity_var[s]] = 0
        init = self.bdd.from_cube(init_cube)
        reached = traced_traversal(
            "bdd.fixpoint", self.bdd,
            lambda: _frontier_fixpoint(self.bdd, init, self._relations()),
            engine="bdd", net=self.net.name, query="csc",
            signals=len(self.signals))
        clash = find_safety_clash(self.bdd, self.net, reached, self.places)
        if clash is not None:
            t, assignment = clash
            raise_unsafe(self.net, t,
                         Marking({p: 1 for p, v in assignment.items() if v}))
        self._reached = reached
        return self._reached

    # -- the conflict characteristic function --------------------------- #

    def excitation(self, signal: str, direction: str) -> int:
        """BDD (over place variables) of markings exciting the event.

        A signal/direction pair is excited in a marking iff some
        transition labelled with it is enabled — the symbolic counterpart
        of :meth:`repro.ts.state_graph.StateGraph.enabled_signals`.
        """
        bdd = self.bdd
        parts = []
        for t in sorted(self.net.transitions):
            event = self.stg.event_of(t)
            if event.is_dummy or event.signal != signal \
                    or event.direction != direction:
                continue
            parts.append(bdd.conj([bdd.var(p)
                                   for p in sorted(self.net.pre(t))]))
        return bdd.disj(parts)

    def conflict_chf(self) -> int:
        """Characteristic function of the CSC-conflicting parity vectors.

        For each non-input signal/direction pair ``e`` and the reachable
        relation ``R(marking, parity)``, a parity vector ``v`` is
        conflicting iff some state with parity ``v`` excites ``e`` while
        another does not::

            chf(v) = ∨_e (∃m. R(m,v) ∧ E_e(m)) ∧ (∃m. R(m,v) ∧ ¬E_e(m))

        The STG has complete state coding iff the result is the constant
        0; otherwise each satisfying assignment is a binary code (relative
        to the initial one) witnessing a conflict.
        """
        if self._chf is not None:
            return self._chf
        bdd = self.bdd
        reached = self.reachable()
        with obs.span("bdd.csc", engine="bdd",
                      net=self.net.name) as span:
            chf = FALSE
            noninput = [s for s in self.signals
                        if self.stg.type_of(s).is_noninput]
            for signal in noninput:
                for direction in (RISE, FALL):
                    span.add("excitation_checks")
                    excited = self.excitation(signal, direction)
                    some = bdd.exists(bdd.apply_and(reached, excited),
                                      self.places)
                    none = bdd.exists(
                        bdd.apply_and(reached, bdd.apply_not(excited)),
                        self.places)
                    chf = bdd.apply_or(chf, bdd.apply_and(some, none))
            span.annotate(conflict=chf != FALSE)
            span.set_gauge("peak_nodes", bdd.node_count())
        self._chf = chf
        return chf

    def has_conflict(self) -> bool:
        """True iff the STG violates Complete State Coding."""
        return self.conflict_chf() != FALSE

    def conflict_count(self) -> int:
        """Number of distinct conflicting binary codes."""
        chf = self.conflict_chf()
        others = len(self.bdd.variables) - len(self.signals)
        return self.bdd.satcount(chf) >> others

    def conflict_parities(self) -> List[Tuple[int, ...]]:
        """The conflicting parity vectors, ordered by ``stg.signals``.

        Each vector XORed with the initial binary code gives a conflicting
        state code of the explicit check
        (:func:`repro.analysis.implementability.csc_conflicts`).
        """
        chf = self.conflict_chf()
        names = [self.parity_var[s] for s in self.signals]
        if chf == FALSE:
            return []
        return sorted(tuple(a[n] for n in names)
                      for a in self.bdd.sat_over(chf, names))


def csc_conflict_chf(stg: STG, place_order: str = "dfs") -> SymbolicCSC:
    """Symbolic CSC analysis of an STG (see :class:`SymbolicCSC`).

    Returns the analysis object so callers can inspect the characteristic
    function (:meth:`SymbolicCSC.conflict_chf`), count conflicting codes
    or enumerate them — all without building a state graph.
    """
    return SymbolicCSC(stg, place_order=place_order)


def has_csc_conflict(stg: STG) -> bool:
    """True iff the STG has a CSC conflict (symbolic fixpoint check)."""
    return SymbolicCSC(stg).has_conflict()
