"""ROBDD engine, symbolic traversal and symbolic queries (Section 2.2).

The package backs ``engine="bdd"`` of the unified engine framework
(:mod:`repro.ts.builder`) and the query layer of :mod:`repro.bdd.queries`
(``repro bdd-check`` on the command line).
"""

from .bdd import BDD, FALSE, TRUE
from .queries import (
    SymbolicCSC,
    csc_conflict_chf,
    find_deadlock,
    has_csc_conflict,
    has_deadlock,
    reachable_count,
)
from .symbolic import (
    RELATION_STYLES,
    structural_place_order,
    DenseSymbolicReachability,
    SymbolicReachability,
    symbolic_marking_count,
)

__all__ = [
    "BDD", "FALSE", "TRUE",
    "DenseSymbolicReachability", "RELATION_STYLES", "SymbolicCSC",
    "SymbolicReachability", "csc_conflict_chf", "find_deadlock",
    "has_csc_conflict", "has_deadlock", "reachable_count",
    "structural_place_order", "symbolic_marking_count",
]
