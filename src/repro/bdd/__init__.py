"""ROBDD engine and symbolic Petri-net reachability (paper Section 2.2)."""

from .bdd import BDD, FALSE, TRUE
from .symbolic import (
    structural_place_order,
    DenseSymbolicReachability,
    SymbolicReachability,
    symbolic_marking_count,
)

__all__ = [
    "BDD", "FALSE", "TRUE",
    "DenseSymbolicReachability", "SymbolicReachability", "structural_place_order",
    "symbolic_marking_count",
]
