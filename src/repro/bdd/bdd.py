"""A from-scratch Reduced Ordered Binary Decision Diagram package.

Section 2.2 of the paper relies on "symbolic BDD-based traversal of a
reachability graph [which] allows its implicit representation, generally
much more compact than an explicit enumeration of states".  This module
provides the substrate: hash-consed ROBDD nodes with the classic
operations (ite/apply, restrict, existential quantification, renaming,
satisfy-count/enumeration).

Node references are integers: 0 and 1 are the terminals; other ids index
into the manager's node table.  Variables are ordered by their index in
the manager's variable list.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ModelError

FALSE = 0
TRUE = 1


class BDD:
    """A BDD manager with a fixed variable order."""

    def __init__(self, variables: Sequence[str]):
        self.variables: List[str] = list(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ModelError("duplicate BDD variables")
        self.var_index: Dict[str, int] = {
            v: i for i, v in enumerate(self.variables)
        }
        # node table: id -> (level, low, high); ids 0/1 reserved
        self._nodes: List[Tuple[int, int, int]] = [
            (len(self.variables), -1, -1),
            (len(self.variables), -1, -1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._quant_cache: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        # work counters (read via stats()): non-terminal ite computations
        # and how many were answered from the memo cache
        self.ite_lookups = 0
        self.ite_hits = 0

    def stats(self) -> Dict[str, float]:
        """Work counters of the manager as a plain dict (stable keys).

        ``nodes`` is the total node-table size — nodes are never freed,
        so this *is* the peak; ``ite_lookups``/``ite_hits`` count
        non-terminal ``ite`` computations and their memo-cache hits, and
        ``cache_hit_rate`` is their ratio (0.0 before any lookup).  The
        observability layer snapshots these around every traversal.
        """
        return {
            "nodes": len(self._nodes),
            "ite_lookups": self.ite_lookups,
            "ite_hits": self.ite_hits,
            "cache_hit_rate": (self.ite_hits / self.ite_lookups
                               if self.ite_lookups else 0.0),
        }

    # ------------------------------------------------------------------ #
    # node construction
    # ------------------------------------------------------------------ #

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD for a single variable."""
        return self._mk(self.var_index[name], FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """The BDD for a negated variable."""
        return self._mk(self.var_index[name], TRUE, FALSE)

    def level(self, u: int) -> int:
        """Variable level of a node (terminals sit below all variables)."""
        return self._nodes[u][0]

    def low(self, u: int) -> int:
        """The 0-branch child of a node."""
        return self._nodes[u][1]

    def high(self, u: int) -> int:
        """The 1-branch child of a node."""
        return self._nodes[u][2]

    def node_count(self) -> int:
        """Total nodes allocated by the manager (a size measure)."""
        return len(self._nodes)

    def size(self, u: int) -> int:
        """Number of distinct nodes reachable from ``u`` (incl. terminals)."""
        seen = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n in seen or n <= 1:
                continue
            seen.add(n)
            stack.append(self.low(n))
            stack.append(self.high(n))
        return len(seen) + 2

    # ------------------------------------------------------------------ #
    # boolean operations (via ite)
    # ------------------------------------------------------------------ #

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + f'·h`` — the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        self.ite_lookups += 1
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.ite_hits += 1
            return cached
        level = min(self.level(f), self.level(g), self.level(h))

        def cof(u: int, branch: int) -> int:
            if self.level(u) != level:
                return u
            return self.high(u) if branch else self.low(u)

        result = self._mk(
            level,
            self.ite(cof(f, 0), cof(g, 0), cof(h, 0)),
            self.ite(cof(f, 1), cof(g, 1), cof(h, 1)),
        )
        self._ite_cache[key] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_not(self, f: int) -> int:
        """Complement."""
        return self.ite(f, FALSE, TRUE)

    def conj(self, operands: Sequence[int]) -> int:
        """Conjunction of many operands."""
        result = TRUE
        for f in operands:
            result = self.apply_and(result, f)
        return result

    def disj(self, operands: Sequence[int]) -> int:
        """Disjunction of many operands."""
        result = FALSE
        for f in operands:
            result = self.apply_or(result, f)
        return result

    # ------------------------------------------------------------------ #
    # cofactors and quantification
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, name: str, value: int) -> int:
        """Cofactor of ``f`` with variable set to ``value``."""
        target = self.var_index[name]

        cache: Dict[int, int] = {}

        def walk(u: int) -> int:
            if u <= 1 or self.level(u) > target:
                return u
            if u in cache:
                return cache[u]
            if self.level(u) == target:
                result = self.high(u) if value else self.low(u)
            else:
                result = self._mk(self.level(u), walk(self.low(u)),
                                  walk(self.high(u)))
            cache[u] = result
            return result

        return walk(f)

    def exists(self, f: int, names: Sequence[str]) -> int:
        """Existential quantification over the named variables."""
        levels = tuple(sorted(self.var_index[n] for n in names))
        if not levels:
            return f
        key = (f, levels)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached

        def walk(u: int) -> int:
            if u <= 1 or self.level(u) > levels[-1]:
                return u
            k = (u, levels)
            hit = self._quant_cache.get(k)
            if hit is not None:
                return hit
            lo = walk(self.low(u))
            hi = walk(self.high(u))
            if self.level(u) in levels:
                result = self.apply_or(lo, hi)
            else:
                result = self._mk(self.level(u), lo, hi)
            self._quant_cache[k] = result
            return result

        return walk(f)

    def rename(self, f: int, mapping: Dict[str, str]) -> int:
        """Substitute variables (must preserve relative order between the
        renamed variables, as in the standard current/next interleaving)."""
        pairs = {self.var_index[a]: self.var_index[b]
                 for a, b in mapping.items()}

        cache: Dict[int, int] = {}

        def walk(u: int) -> int:
            if u <= 1:
                return u
            if u in cache:
                return cache[u]
            level = pairs.get(self.level(u), self.level(u))
            result = self._mk(level, walk(self.low(u)), walk(self.high(u)))
            cache[u] = result
            return result

        return walk(f)

    def and_exists(self, f: int, g: int, names: Sequence[str]) -> int:
        """Relational product ``∃names . f ∧ g`` (no special optimisation —
        correctness first, the nets here are small)."""
        return self.exists(self.apply_and(f, g), names)

    # ------------------------------------------------------------------ #
    # evaluation and enumeration
    # ------------------------------------------------------------------ #

    def eval(self, f: int, env: Dict[str, int]) -> int:
        """Evaluate under a full assignment."""
        u = f
        while u > 1:
            name = self.variables[self.level(u)]
            u = self.high(u) if env[name] else self.low(u)
        return u

    def from_cube(self, assignment: Dict[str, int]) -> int:
        """Conjunction of literals."""
        result = TRUE
        for name in sorted(assignment, key=lambda n: -self.var_index[n]):
            lit = self.var(name) if assignment[name] else self.nvar(name)
            result = self.apply_and(lit, result)
        return result

    def satcount(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables
        (defaults to all manager variables)."""
        if nvars is None:
            nvars = len(self.variables)

        cache: Dict[int, int] = {}

        def walk(u: int) -> int:
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1 << (nvars - 0)  # adjusted below by level weighting
            raise AssertionError

        # weighted count: count(u) * 2^(level(u)) with terminals at nvars
        def count(u: int) -> int:
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1
            if u in cache:
                return cache[u]
            lo = count(self.low(u)) << (self.level(self.low(u))
                                        - self.level(u) - 1)
            hi = count(self.high(u)) << (self.level(self.high(u))
                                         - self.level(u) - 1)
            result = lo + hi
            cache[u] = result
            return result

        return count(f) << self.level(f) if f > 1 else (
            0 if f == FALSE else 1 << nvars)

    def pick(self, f: int, names: Optional[Sequence[str]] = None
             ) -> Dict[str, int]:
        """One satisfying assignment of a non-FALSE function.

        Walks a single path to the TRUE terminal, preferring the 1-branch;
        variables the path does not test are returned as 0.  When ``names``
        is given the result is restricted to (and padded over) exactly
        those variables.  Raises :class:`ModelError` on the constant-0
        function.
        """
        if f == FALSE:
            raise ModelError("cannot pick an assignment from the constant 0")
        assignment: Dict[str, int] = {}
        u = f
        while u > 1:
            name = self.variables[self.level(u)]
            if self.high(u) != FALSE:
                assignment[name] = 1
                u = self.high(u)
            else:
                assignment[name] = 0
                u = self.low(u)
        if names is None:
            return assignment
        return {n: assignment.get(n, 0) for n in names}

    def sat_over(self, f: int, names: Sequence[str]
                 ) -> Iterator[Dict[str, int]]:
        """Enumerate the satisfying assignments over a variable subset.

        ``f`` must depend on no variable outside ``names`` (quantify the
        rest away first); otherwise :class:`ModelError` is raised.  Unlike
        :meth:`sat_all`, the cost is proportional to the number of
        assignments over ``names`` only.
        """
        order = sorted(names, key=lambda n: self.var_index[n])
        levels = [self.var_index[n] for n in order]
        allowed = set(levels)

        def walk(u: int, i: int, partial: Dict[str, int]):
            if u == FALSE:
                return
            if u > 1 and self.level(u) not in allowed:
                raise ModelError(
                    "function depends on %r, outside the enumeration set"
                    % self.variables[self.level(u)])
            if i == len(order):
                yield dict(partial)
                return
            name, target = order[i], levels[i]
            if u > 1 and self.level(u) == target:
                branches = ((0, self.low(u)), (1, self.high(u)))
            else:
                branches = ((0, u), (1, u))
            for value, child in branches:
                partial[name] = value
                yield from walk(child, i + 1, partial)
            del partial[name]

        yield from walk(f, 0, {})

    def sat_all(self, f: int) -> Iterator[Dict[str, int]]:
        """Enumerate all satisfying full assignments."""
        n = len(self.variables)

        def walk(u: int, level: int, partial: Dict[str, int]):
            if u == FALSE:
                return
            if level == n:
                if u == TRUE:
                    yield dict(partial)
                return
            name = self.variables[level]
            if u > 1 and self.level(u) == level:
                branches = [(0, self.low(u)), (1, self.high(u))]
            else:
                branches = [(0, u), (1, u)]
            for value, child in branches:
                partial[name] = value
                yield from walk(child, level + 1, partial)
            del partial[name]

        yield from walk(f, 0, {})

    def is_tautology(self, f: int) -> bool:
        """True iff the function is the constant 1."""
        return f == TRUE
