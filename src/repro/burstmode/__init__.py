"""Burst-mode machines and fundamental-mode hazard-free synthesis
(paper Sections 3.3 and 6)."""

from .machine import BMTransition, Burst, BurstModeMachine, burst, format_burst
from .synthesis import (
    derive_transitions,
    simulate_fundamental_mode,
    synthesize_burst_mode,
)
from .library import concur_mixer_bm, selector_bm, simple_handshake_bm

__all__ = [
    "BMTransition", "Burst", "BurstModeMachine", "burst", "format_burst",
    "derive_transitions", "simulate_fundamental_mode",
    "synthesize_burst_mode",
    "concur_mixer_bm", "selector_bm", "simple_handshake_bm",
]
