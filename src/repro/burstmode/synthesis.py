"""Burst-mode synthesis with hazard-free two-level logic
(paper Sections 3.3 and 6; refs [22, 28]).

Strategy (the classic Huffman-style flow, restricted to *output-coded*
machines):

* the total state is the vector of input and output values; each abstract
  state must be uniquely identified by its entry code (machines needing
  extra state variables raise :class:`SynthesisError`);
* for every burst-mode arc and every output ``z``, the input burst induces
  a specified multiple-input-change transition of ``f_z`` from the state's
  entry code to the code with the inputs flipped — static if ``z`` is not
  in the output burst, dynamic otherwise;
* while the output burst settles (outputs flip one at a time, in any
  order), every intermediate code adds a single-point stability
  requirement;
* each ``f_z`` is minimized with the exact Nowick–Dill hazard-free
  minimizer; the resulting SOP is realised as one (complex) gate with
  output feedback, exactly like the Section 3 circuits.

A fundamental-mode simulator (:func:`simulate_fundamental_mode`) replays
every specified burst and checks that the circuit settles to the expected
total state.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from ..boolmin.cube import Cube
from ..boolmin.expr import from_cubes
from ..boolmin.hazardfree import (
    InputTransition,
    check_cover_hazard_free,
    minimize_hazard_free,
)
from ..synth.netlist import Gate, Netlist
from .machine import BurstModeMachine


def _variables(machine: BurstModeMachine) -> List[str]:
    return machine.inputs + machine.outputs


def _code(values: Dict[str, int], variables: Sequence[str]) -> Tuple[int, ...]:
    return tuple(values[v] for v in variables)


def derive_transitions(machine: BurstModeMachine
                       ) -> Dict[str, List[InputTransition]]:
    """The specified input transitions of each output's next-state
    function.

    Raises :class:`SynthesisError` if two abstract states share an entry
    code (the machine then needs dedicated state variables, which this
    output-coded flow does not add).
    """
    machine.validate()
    variables = _variables(machine)
    entry = machine.state_values()
    codes: Dict[Tuple[int, ...], str] = {}
    for state, values in entry.items():
        code = _code(values, variables)
        if code in codes and codes[code] != state:
            raise SynthesisError(
                "states %r and %r share entry code %s — the machine is not"
                " output-coded; insert state variables first"
                % (codes[code], state, code))
        codes[code] = state

    per_output: Dict[str, List[InputTransition]] = {
        z: [] for z in machine.outputs
    }
    for t in machine.transitions:
        start_values = dict(entry[t.source])
        mid_values = dict(start_values)
        for signal, direction in t.input_burst:
            mid_values[signal] = 1 if direction == "+" else 0
        start = _code(start_values, variables)
        mid = _code(mid_values, variables)
        flipped = {signal for signal, _ in t.output_burst}
        for z in machine.outputs:
            old = start_values[z]
            new = 1 - old if z in flipped else old
            per_output[z].append(InputTransition(start, mid, old, new))
        # output-burst settling: every interleaving prefix of the output
        # burst must be a stable point of every function
        for k in range(len(flipped) + 1):
            for subset in itertools.combinations(sorted(flipped), k):
                point_values = dict(mid_values)
                for signal in subset:
                    point_values[signal] = 1 - point_values[signal]
                point = _code(point_values, variables)
                for z in machine.outputs:
                    target = (1 - start_values[z]) if z in flipped \
                        else start_values[z]
                    per_output[z].append(
                        InputTransition(point, point, target, target))
    # every state entry code must be a stable point as well
    for state, values in entry.items():
        point = _code(values, variables)
        for z in machine.outputs:
            v = values[z]
            per_output[z].append(InputTransition(point, point, v, v))
    return per_output


def synthesize_burst_mode(machine: BurstModeMachine,
                          name: Optional[str] = None) -> Netlist:
    """Hazard-free two-level implementation of an output-coded burst-mode
    machine: one SOP gate (with output feedback) per output signal."""
    variables = _variables(machine)
    per_output = derive_transitions(machine)
    netlist = Netlist(name or (machine.name + "_bm"),
                      inputs=machine.inputs)
    for z in machine.outputs:
        cover = minimize_hazard_free(per_output[z], len(variables))
        problems = check_cover_hazard_free(cover, per_output[z])
        if problems:
            raise SynthesisError("cover for %r not hazard-free: %s"
                                 % (z, problems[:3]))
        netlist.add(Gate.comb(z, from_cubes(cover, variables)))
    netlist.validate()
    return netlist


def simulate_fundamental_mode(machine: BurstModeMachine,
                              netlist: Netlist,
                              max_settle: int = 50) -> List[str]:
    """Replay every reachable burst in fundamental mode.

    For each abstract state and outgoing arc: apply the input burst, let
    the gates settle (round-robin evaluation), and compare the settled
    outputs with the machine's target state.  Returns a list of
    discrepancy descriptions (empty = the circuit implements the machine).
    """
    entry = machine.state_values()
    problems: List[str] = []
    for state in sorted(machine.reachable_states()):
        for t in machine.outgoing(state):
            env = dict(entry[state])
            for signal, direction in t.input_burst:
                env[signal] = 1 if direction == "+" else 0
            settled = False
            for _ in range(max_settle):
                changed = False
                for z in machine.outputs:
                    new = netlist.gates[z].next_value(env)
                    if new != env[z]:
                        env[z] = new
                        changed = True
                if not changed:
                    settled = True
                    break
            if not settled:
                problems.append("oscillation after burst %s in state %s"
                                % (sorted(t.input_burst), state))
                continue
            expected = entry[t.target]
            for z in machine.outputs:
                if env[z] != expected[z]:
                    problems.append(
                        "state %s, burst %s: output %s settled to %d,"
                        " expected %d" % (state, sorted(t.input_burst),
                                          z, env[z], expected[z]))
    return problems
