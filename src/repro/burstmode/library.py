"""Example burst-mode machines."""

from __future__ import annotations

from .machine import BurstModeMachine


def simple_handshake_bm() -> BurstModeMachine:
    """A four-phase handshake converter: on ``req+`` raise ``ack``,
    on ``req-`` lower it.  Two states, output-coded."""
    m = BurstModeMachine("simple_handshake", inputs=["req"],
                         outputs=["ack"], initial_state="s0")
    m.add_transition("s0", ["req+"], ["ack+"], "s1")
    m.add_transition("s1", ["req-"], ["ack-"], "s0")
    return m


def concur_mixer_bm() -> BurstModeMachine:
    """A two-input burst collector: both ``a+`` and ``b+`` arrive (in any
    order — a genuine multiple-input change) and then ``y`` rises; both
    withdraw and ``y`` falls.  The C-element behaviour in burst-mode
    style.

    Instructive artifact: under the fundamental-mode assumption, firing
    ``y`` *during* the (single outgoing) burst is unobservable, so the
    minimizer may legally produce a cover such as ``y = b`` — a circuit
    that is **not** a speed-independent C-element.  This is exactly the
    paper's Section 3.3 caveat that fundamental mode "is often too
    restrictive and in particular is not satisfied for logic implementing
    signal functions in synthesis using STGs".
    """
    m = BurstModeMachine("concur_mixer", inputs=["a", "b"],
                         outputs=["y"], initial_state="s0")
    m.add_transition("s0", ["a+", "b+"], ["y+"], "s1")
    m.add_transition("s1", ["a-", "b-"], ["y-"], "s0")
    return m


def selector_bm() -> BurstModeMachine:
    """A moded request selector (output-coded, four total states).

    From idle, ``r+`` grants ``g1``; raising the mode input first routes
    the same request to ``g2``.  Distinct bursts leave each state (the
    maximal set property holds), and every abstract state is uniquely
    identified by its input/output code.
    """
    m = BurstModeMachine("selector", inputs=["r", "m"],
                         outputs=["g1", "g2"], initial_state="idle")
    m.add_transition("idle", ["r+"], ["g1+"], "granted1")
    m.add_transition("granted1", ["r-"], ["g1-"], "idle")
    m.add_transition("idle", ["m+"], [], "mode")
    m.add_transition("mode", ["r+"], ["g2+"], "granted2")
    m.add_transition("granted2", ["r-"], ["g2-"], "mode")
    m.add_transition("mode", ["m-"], [], "idle")
    return m
