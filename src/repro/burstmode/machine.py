"""Burst-mode machines (paper, Section 6, ref [28]).

"Burst-mode machines work under the so-called fundamental mode assumption,
i.e. after each burst of input events accepted by the system, the
environment allows the circuit to stabilize before reacting to the output
events.  This assumption is realistic for many applications and enables
the utilization of combinational logic minimization methods for
synchronous circuits with ad-hoc extensions to prevent hazardous
behavior."

A machine is a graph of abstract states; each arc carries an *input burst*
(a non-empty set of input signal edges) and an *output burst* (a possibly
empty set of output edges).  Well-formedness (checked by
:meth:`BurstModeMachine.validate`):

* signal values are consistent along every path (edges alternate);
* the **maximal set property**: no input burst leaving a state is a
  subset of another one leaving the same state (otherwise the machine
  could not tell whether the burst is complete);
* determinism: at most one arc per (state, input burst).

Synthesis (:func:`repro.burstmode.synthesis.synthesize_burst_mode`) uses
the hazard-free minimizer of :mod:`repro.boolmin.hazardfree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import ModelError

Burst = FrozenSet[Tuple[str, str]]  # {(signal, "+"|"-"), ...}


def burst(*edges: str) -> Burst:
    """Parse ``burst("a+", "b-")`` into a burst value."""
    result = set()
    for edge in edges:
        signal, direction = edge[:-1], edge[-1]
        if direction not in "+-" or not signal:
            raise ModelError("bad burst edge %r" % edge)
        result.add((signal, direction))
    return frozenset(result)


def format_burst(b: Burst) -> str:
    """Human-readable rendering of a burst."""
    return " ".join(sorted(s + d for s, d in b)) or "(empty)"


@dataclass(frozen=True)
class BMTransition:
    """A burst-mode arc: on ``input_burst``, emit ``output_burst`` and move."""

    source: str
    input_burst: Burst
    output_burst: Burst
    target: str


class BurstModeMachine:
    """A burst-mode specification."""

    def __init__(self, name: str, inputs: Iterable[str],
                 outputs: Iterable[str], initial_state: str,
                 initial_values: Optional[Dict[str, int]] = None):
        self.name = name
        self.inputs = sorted(inputs)
        self.outputs = sorted(outputs)
        self.initial_state = initial_state
        self.initial_values = {s: 0 for s in self.inputs + self.outputs}
        if initial_values:
            self.initial_values.update(initial_values)
        self.transitions: List[BMTransition] = []
        self.states: Set[str] = {initial_state}

    def add_transition(self, source: str, input_burst_edges: Iterable[str],
                       output_burst_edges: Iterable[str],
                       target: str) -> BMTransition:
        """Add an arc; bursts are given as edge strings (``"a+"``)."""
        t = BMTransition(source, burst(*input_burst_edges),
                         burst(*output_burst_edges), target)
        if not t.input_burst:
            raise ModelError("input burst of %s -> %s must be non-empty"
                             % (source, target))
        for signal, _ in t.input_burst:
            if signal not in self.inputs:
                raise ModelError("%r is not an input" % signal)
        for signal, _ in t.output_burst:
            if signal not in self.outputs:
                raise ModelError("%r is not an output" % signal)
        self.transitions.append(t)
        self.states.add(source)
        self.states.add(target)
        return t

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def outgoing(self, state: str) -> List[BMTransition]:
        """Arcs leaving a state."""
        return [t for t in self.transitions if t.source == state]

    def state_values(self) -> Dict[str, Dict[str, int]]:
        """Signal values on entry to each reachable state.

        Propagated from the initial state; raises :class:`ModelError` on
        inconsistency (a signal entering a state with two different
        values via different paths, or a burst edge with wrong polarity).
        """
        values: Dict[str, Dict[str, int]] = {
            self.initial_state: dict(self.initial_values)
        }
        worklist = [self.initial_state]
        while worklist:
            state = worklist.pop()
            env = values[state]
            for t in self.outgoing(state):
                after = dict(env)
                for signal, direction in sorted(t.input_burst | t.output_burst):
                    expected = 0 if direction == "+" else 1
                    if after[signal] != expected:
                        raise ModelError(
                            "polarity error: %s%s leaving state %s where"
                            " %s=%d" % (signal, direction, state, signal,
                                        after[signal]))
                    after[signal] = 1 - expected
                if t.target in values:
                    if values[t.target] != after:
                        raise ModelError(
                            "state %r entered with inconsistent values"
                            % t.target)
                else:
                    values[t.target] = after
                    worklist.append(t.target)
        return values

    def validate(self) -> None:
        """Check polarity consistency, the maximal set property and
        determinism."""
        self.state_values()
        for state in sorted(self.states):
            arcs = self.outgoing(state)
            for i, a in enumerate(arcs):
                for b in arcs[i + 1:]:
                    if a.input_burst == b.input_burst:
                        raise ModelError(
                            "state %r is nondeterministic on burst %s"
                            % (state, format_burst(a.input_burst)))
                    if a.input_burst < b.input_burst or \
                            b.input_burst < a.input_burst:
                        raise ModelError(
                            "maximal set property violated in state %r:"
                            " burst %s is a subset of %s"
                            % (state, format_burst(
                                min(a.input_burst, b.input_burst, key=len)),
                               format_burst(
                                max(a.input_burst, b.input_burst, key=len))))

    def reachable_states(self) -> Set[str]:
        """States reachable from the initial state."""
        return set(self.state_values())

    def __repr__(self):
        return "BurstModeMachine(%r, states=%d, transitions=%d)" % (
            self.name, len(self.states), len(self.transitions))
