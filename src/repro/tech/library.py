"""A restricted-fan-in gate library (paper, Section 3.4).

The paper's decomposition experiments target a "two inputs gate library":
this module models such a library — combinational cells with at most two
inputs (with optional input bubbles), plus the sequential cells used in
Figure 8 (C-element, RS latch).  Matching is semantic: a gate function is
canonicalised by truth table over its support and looked up.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from ..boolmin.expr import BoolExpr, all_assignments
from ..synth.netlist import Gate, GateKind, Netlist


@dataclass(frozen=True)
class Cell:
    """A library cell: name, input count, truth table (LSB = all-zero row)."""

    name: str
    ninputs: int
    table: int
    area: float = 1.0


def _table_of(fn, ninputs: int) -> int:
    table = 0
    for i in range(1 << ninputs):
        bits = [(i >> (ninputs - 1 - k)) & 1 for k in range(ninputs)]
        if fn(*bits):
            table |= 1 << i
    return table


TWO_INPUT_LIBRARY: List[Cell] = [
    Cell("buf", 1, _table_of(lambda a: a, 1), 0.5),
    Cell("inv", 1, _table_of(lambda a: 1 - a, 1), 0.5),
    Cell("and2", 2, _table_of(lambda a, b: a & b, 2)),
    Cell("or2", 2, _table_of(lambda a, b: a | b, 2)),
    Cell("nand2", 2, _table_of(lambda a, b: 1 - (a & b), 2)),
    Cell("nor2", 2, _table_of(lambda a, b: 1 - (a | b), 2)),
    Cell("and2b1", 2, _table_of(lambda a, b: a & (1 - b), 2)),
    Cell("or2b1", 2, _table_of(lambda a, b: a | (1 - b), 2)),
    Cell("xor2", 2, _table_of(lambda a, b: a ^ b, 2)),
    Cell("xnor2", 2, _table_of(lambda a, b: 1 - (a ^ b), 2)),
]
"""The paper's two-input combinational library (Figure 9)."""

SEQUENTIAL_CELLS = ["c2", "c2b1", "sr_latch"]
"""Sequential cells assumed available for Figure 8 style implementations."""


def match_combinational(expr: BoolExpr,
                        library: Sequence[Cell] = TWO_INPUT_LIBRARY
                        ) -> Optional[Tuple[Cell, Tuple[str, ...]]]:
    """Match an expression against the library.

    Returns ``(cell, input_signals)`` with inputs ordered to realise the
    function, or None if no cell implements it (support too large or shape
    missing).
    """
    support = sorted(expr.support())
    if len(support) > 2:
        return None
    for inputs in permutations(support):
        table = 0
        n = max(1, len(inputs))
        for i in range(1 << n):
            env = {name: (i >> (n - 1 - k)) & 1
                   for k, name in enumerate(inputs)}
            if not inputs:  # constant
                env = {}
            if expr.eval(env):
                table |= 1 << i
        for cell in library:
            if cell.ninputs == n and cell.table == table:
                return cell, tuple(inputs)
    return None


def map_netlist(netlist: Netlist,
                library: Sequence[Cell] = TWO_INPUT_LIBRARY
                ) -> Dict[str, str]:
    """Map every gate of a netlist to a cell name.

    Combinational gates map through :func:`match_combinational`;
    C-elements map to ``c2``/``c2b1``/generalized (``gc``), SR latches to
    ``sr_latch``.  Gates with more than two inputs map to ``"complex"`` —
    meaning decomposition (Section 3.4) is still required.
    """
    mapping: Dict[str, str] = {}
    for out in sorted(netlist.gates):
        gate = netlist.gates[out]
        if gate.kind == GateKind.COMB:
            hit = match_combinational(gate.expr, library)
            mapping[out] = hit[0].name if hit else "complex"
        elif gate.kind == GateKind.C_ELEMENT:
            ninputs = len(gate.inputs())
            mapping[out] = "c2" if ninputs <= 2 else "gc"
        else:
            mapping[out] = "sr_latch"
    return mapping


def is_fully_mapped(netlist: Netlist,
                    library: Sequence[Cell] = TWO_INPUT_LIBRARY) -> bool:
    """True iff no gate maps to ``"complex"``."""
    return "complex" not in map_netlist(netlist, library).values()
