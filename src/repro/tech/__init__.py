"""Decomposition and technology mapping into restricted-fan-in libraries
(paper Section 3.4)."""

from .library import (
    Cell,
    SEQUENTIAL_CELLS,
    TWO_INPUT_LIBRARY,
    is_fully_mapped,
    map_netlist,
    match_combinational,
)
from .decompose import algebraic_divisors, decompose

__all__ = [
    "Cell", "SEQUENTIAL_CELLS", "TWO_INPUT_LIBRARY", "is_fully_mapped",
    "map_netlist", "match_combinational",
    "algebraic_divisors", "decompose",
]
