"""Hazard-free logic decomposition into restricted fan-in gates
(paper, Section 3.4, ref [5]).

The method follows the paper's recipe:

* extract decomposition candidates by **algebraic factorization** of the
  minimized next-state functions (common-literal divisors);
* insert each candidate as a new internal signal;
* rewrite the remaining gates over the extended signal set, exploring
  **resubstitution** alternatives — this is what creates the *multiple
  acknowledgment* of Figure 9(a), where ``map0`` is read by both ``csc0``
  and ``D``;
* check every resulting netlist for speed independence with the
  circuit ⊗ environment composition and keep the first hazard-free one.

The search is bounded and deterministic; for paper-scale controllers it
terminates in well under a second.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..budgets import DECOMPOSE_STATE_BOUND
from ..errors import SynthesisError
from ..boolmin.cube import Cube
from ..boolmin.expr import And, BoolExpr, Not, Or, Var, from_cubes
from ..stg.stg import STG
from ..synth.complex_gate import synthesize_complex_gates
from ..synth.netlist import Gate, GateKind, Netlist
from ..synth.nextstate import derive_all_next_state_functions
from ..ts.state_graph import StateGraph, build_state_graph
from ..verify.composition import verify_circuit
from .library import TWO_INPUT_LIBRARY, is_fully_mapped


def _expr_literals(expr: BoolExpr) -> int:
    if isinstance(expr, Var):
        return 1
    if isinstance(expr, Not):
        return _expr_literals(expr.arg)
    if isinstance(expr, (And, Or)):
        return sum(_expr_literals(a) for a in expr.args)
    return 0


def algebraic_divisors(cubes: Sequence[Cube],
                       variables: Sequence[str]) -> List[BoolExpr]:
    """Candidate divisors of an SOP: for each literal appearing in several
    cubes, the co-factor sum (the paper's algebraic factorization seed).

    For ``csc0 = DSr csc0 + DSr LDTACK'`` the literal ``DSr`` yields the
    divisor ``csc0 + LDTACK'`` — the paper's ``map0``.
    """
    divisors: List[BoolExpr] = []
    seen: Set[str] = set()

    def propose(divisor: BoolExpr) -> None:
        key = divisor.to_str("python")
        if key not in seen and len(divisor.support()) >= 1:
            seen.add(key)
            divisors.append(divisor)

    n = len(variables)
    # common-literal cofactors (kernel seeds)
    for pos in range(n):
        for phase in (1, 0):
            matching = [c for c in cubes if c[pos] == phase]
            if len(matching) < 2:
                continue
            rest_cubes = []
            for c in matching:
                rest = list(c)
                rest[pos] = None
                rest_cubes.append(tuple(rest))
            propose(from_cubes(rest_cubes, variables))
    # AND-decomposition: each multi-literal cube is itself a candidate
    for c in cubes:
        if sum(1 for v in c if v is not None) >= 2:
            propose(from_cubes([c], variables))
    # OR-decomposition: each pair of cubes
    for i in range(len(cubes)):
        for j in range(i + 1, len(cubes)):
            propose(from_cubes([cubes[i], cubes[j]], variables))
    return divisors


def _reachable_extended_codes(sg: StateGraph,
                              defs: Dict[str, BoolExpr]) -> List[Dict[str, int]]:
    """Reachable assignments over spec signals plus defined internal
    decomposition signals (each evaluated from its defining function;
    definitions may reference each other acyclically or via spec signals
    and settle by iteration)."""
    rows: List[Dict[str, int]] = []
    for state in sg.states:
        env = {s: sg.value(state, s) for s in sg.signal_order}
        pending = dict(defs)
        for name in pending:
            env.setdefault(name, 0)
        for _ in range(len(pending) + 2):
            for name, expr in pending.items():
                env[name] = expr.eval(env)
        rows.append(env)
    return rows


def _candidate_exprs(target_rows: List[Tuple[Dict[str, int], int]],
                     signals: Sequence[str],
                     max_candidates: int = 8) -> List[BoolExpr]:
    """All fan-in-<=2 expressions matching the target on the care rows."""
    literals: List[BoolExpr] = []
    for s in signals:
        literals.append(Var(s))
        literals.append(Not(Var(s)))

    def matches(expr: BoolExpr) -> bool:
        return all(expr.eval(env) == value for env, value in target_rows)

    results: List[BoolExpr] = []
    for lit in literals:
        if matches(lit):
            results.append(lit)
    for a, b in itertools.combinations(literals, 2):
        if a.support() == b.support():
            continue
        for expr in (And.of(a, b), Or.of(a, b)):
            if matches(expr):
                results.append(expr)
        if len(results) >= max_candidates:
            break
    return results[:max_candidates]


def decompose(stg: STG, max_fanin: int = 2,
              temp_prefix: str = "map",
              max_netlists: int = 400,
              max_states: int = DECOMPOSE_STATE_BOUND) -> Netlist:
    """Decompose the complex-gate implementation of ``stg`` into gates of
    at most ``max_fanin`` literals, hazard-freely.

    The specification must already satisfy CSC.  Returns the first
    speed-independent decomposed netlist found; raises
    :class:`SynthesisError` if the bounded search fails.  Each candidate
    verification is budgeted by
    :data:`repro.budgets.DECOMPOSE_STATE_BOUND` states (pass
    ``max_states=`` to override).
    """
    if max_fanin != 2:
        raise SynthesisError("only two-input decomposition is implemented")
    sg = build_state_graph(stg)
    fns = derive_all_next_state_functions(sg)
    base = synthesize_complex_gates(sg, name=stg.name + "_decomposed")

    # which gates need decomposition?
    oversized = [z for z in sorted(base.gates)
                 if len(base.gates[z].expr.support() - {z}) > max_fanin
                 or _expr_literals(base.gates[z].expr) > max_fanin]
    if not oversized:
        return base

    # gather divisor candidates from all oversized functions
    divisors: List[BoolExpr] = []
    for z in oversized:
        cubes = fns[z].minimized_cubes()
        divisors.extend(algebraic_divisors(cubes, sg.signal_order))
    if not divisors:
        raise SynthesisError("no algebraic divisors found for %s" % oversized)

    attempts = 0
    diagnostics: List[str] = []
    for divisor in divisors:
        temp = "%s0" % temp_prefix
        defs = {temp: divisor}
        rows = _reachable_extended_codes(sg, defs)
        extended_signals = list(sg.signal_order) + [temp]

        # per-gate candidate expressions over the extended signal set
        per_gate: Dict[str, List[BoolExpr]] = {}
        feasible = True
        for z in sorted(base.gates):
            targets = [(env, fns[z].value(
                tuple(env[s] for s in sg.signal_order)) or 0)
                for env in rows]
            # next value of z on reachable states (f_z); None cannot occur
            targets = []
            for env in rows:
                value = fns[z].value(tuple(env[s] for s in sg.signal_order))
                targets.append((env, 0 if value is None else value))
            candidates = _candidate_exprs(targets, extended_signals)
            if not candidates:
                feasible = False
                diagnostics.append(
                    "divisor %s: no 2-input candidate for %s" % (divisor, z))
                break
            per_gate[z] = candidates
        if not feasible:
            continue
        # the divisor gate itself
        divisor_targets = [(env, env[temp]) for env in rows]
        divisor_candidates = _candidate_exprs(divisor_targets,
                                              list(sg.signal_order))
        if not divisor_candidates:
            diagnostics.append("divisor %s not realisable in 2 inputs"
                               % divisor)
            continue

        gate_names = sorted(per_gate)
        for combo in itertools.product(*(per_gate[z] for z in gate_names)):
            for divisor_expr in divisor_candidates[:2]:
                attempts += 1
                if attempts > max_netlists:
                    raise SynthesisError(
                        "decomposition search exceeded %d candidate netlists;"
                        " diagnostics: %s" % (max_netlists, diagnostics[:5]))
                netlist = Netlist(stg.name + "_decomposed",
                                  inputs=stg.inputs)
                netlist.add(Gate.comb(temp, divisor_expr))
                for z, expr in zip(gate_names, combo):
                    netlist.add(Gate.comb(z, expr))
                try:
                    netlist.validate()
                except SynthesisError:
                    continue
                report = verify_circuit(netlist, stg, max_states=max_states,
                                        stop_at_first=True)
                if report.ok:
                    return netlist
                diagnostics.append(
                    "candidate rejected (%d hazards, %d failures)"
                    % (len(report.hazards), len(report.failures)))
    raise SynthesisError(
        "no hazard-free two-input decomposition found after %d attempts; "
        "first diagnostics: %s" % (attempts, diagnostics[:5]))
