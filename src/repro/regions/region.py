"""Regions of transition systems (paper, Section 4, ref [8]).

A *region* is a set of states such that every event crosses its boundary
uniformly: all arcs of the event enter the set, or all exit it, or none
crosses it.  Regions correspond to places of a Petri net generating the
transition system; *excitation regions* correspond to transitions.

This module provides the region predicate, the gradient classification and
the minimal-region expansion search used by PN synthesis
(:mod:`repro.regions.synthesis`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..ts.transition_system import Event, State, TransitionSystem

ENTER = "enter"
EXIT = "exit"
NOCROSS = "nocross"


def event_gradient(ts: TransitionSystem, region: FrozenSet[State],
                   event: Event) -> Optional[str]:
    """Crossing classification of an event w.r.t. a state set.

    Returns ``ENTER``, ``EXIT`` or ``NOCROSS`` when uniform, None when the
    event violates the region condition.
    """
    n_enter = n_exit = n_in = n_out = 0
    for s, e, t in ts.arcs():
        if e != event:
            continue
        src = s in region
        dst = t in region
        if not src and dst:
            n_enter += 1
        elif src and not dst:
            n_exit += 1
        elif src and dst:
            n_in += 1
        else:
            n_out += 1
    if n_enter and not (n_exit or n_in or n_out):
        return ENTER
    if n_exit and not (n_enter or n_in or n_out):
        return EXIT
    if not n_enter and not n_exit:
        return NOCROSS
    return None


def is_region(ts: TransitionSystem, candidate: Iterable[State]) -> bool:
    """True iff the state set is a region (every event uniform)."""
    region = frozenset(candidate)
    return all(event_gradient(ts, region, e) is not None for e in ts.events)


def excitation_region(ts: TransitionSystem, event: Event) -> FrozenSet[State]:
    """States in which the event is enabled (``ER(e)``)."""
    return frozenset(ts.states_with_event(event))


def _violation_fixes(ts: TransitionSystem, region: FrozenSet[State],
                     event: Event) -> List[FrozenSet[State]]:
    """Minimal ways to grow ``region`` towards legality for one event.

    Three strategies (each may be impossible):

    * make the event non-crossing: absorb sources of entering arcs and
      targets of exiting arcs;
    * make it entering: absorb targets of outside arcs (only if no arc
      exits or lies inside);
    * make it exiting: absorb sources of outside arcs (only if no arc
      enters or lies inside).
    """
    entering: List[Tuple[State, State]] = []
    exiting: List[Tuple[State, State]] = []
    inside: List[Tuple[State, State]] = []
    outside: List[Tuple[State, State]] = []
    for s, e, t in ts.arcs():
        if e != event:
            continue
        src, dst = s in region, t in region
        if not src and dst:
            entering.append((s, t))
        elif src and not dst:
            exiting.append((s, t))
        elif src and dst:
            inside.append((s, t))
        else:
            outside.append((s, t))

    fixes: List[FrozenSet[State]] = []
    # non-crossing
    grow = {s for s, _ in entering} | {t for _, t in exiting}
    if grow:
        fixes.append(region | grow)
    # all-entering
    if not exiting and not inside and entering:
        grow = {t for _, t in outside}
        if grow:
            fixes.append(region | grow)
    # all-exiting
    if not entering and not inside and exiting:
        grow = {s for s, _ in outside}
        if grow:
            fixes.append(region | grow)
    return [f for f in fixes if f != region]


def minimal_regions_containing(ts: TransitionSystem,
                               seed: Iterable[State],
                               limit: int = 100_000) -> List[FrozenSet[State]]:
    """All minimal regions containing ``seed`` (expansion search).

    Starting from the seed, repeatedly pick a violating event and branch on
    the legalization strategies; legal sets that are proper subsets of the
    state space are collected and filtered for minimality.
    """
    all_states = frozenset(ts.states)
    start = frozenset(seed)
    results: List[FrozenSet[State]] = []
    seen: Set[FrozenSet[State]] = set()
    stack: List[FrozenSet[State]] = [start]
    visited = 0
    while stack:
        candidate = stack.pop()
        if candidate in seen or candidate == all_states:
            continue
        seen.add(candidate)
        visited += 1
        if visited > limit:
            break
        violating = None
        for e in sorted(ts.events):
            if event_gradient(ts, candidate, e) is None:
                violating = e
                break
        if violating is None:
            results.append(candidate)
            continue
        stack.extend(_violation_fixes(ts, candidate, violating))
    minimal: List[FrozenSet[State]] = []
    for r in sorted(results, key=len):
        if not any(m < r for m in minimal):
            minimal.append(r)
    return minimal


def all_minimal_preregions(ts: TransitionSystem) -> Dict[Event, List[FrozenSet[State]]]:
    """Minimal pre-regions of every event.

    A pre-region of ``e`` is a region that ``e`` exits; every minimal
    pre-region contains ``ER(e)``, so the expansion starts there.
    """
    result: Dict[Event, List[FrozenSet[State]]] = {}
    for event in sorted(ts.events):
        er = excitation_region(ts, event)
        regions = minimal_regions_containing(ts, er)
        result[event] = [
            r for r in regions
            if event_gradient(ts, r, event) == EXIT
        ]
    return result


def excitation_closure_holds(ts: TransitionSystem,
                             preregions: Optional[Dict[Event, List[FrozenSet[State]]]] = None
                             ) -> Tuple[bool, Dict[Event, FrozenSet[State]]]:
    """Excitation closure: for every event, the intersection of its
    pre-regions equals its excitation region.

    Returns ``(holds, {event: intersection})``.
    """
    if preregions is None:
        preregions = all_minimal_preregions(ts)
    holds = True
    intersections: Dict[Event, FrozenSet[State]] = {}
    for event in sorted(ts.events):
        regions = preregions.get(event, [])
        if not regions:
            holds = False
            intersections[event] = frozenset(ts.states)
            continue
        inter = frozenset(ts.states)
        for r in regions:
            inter &= r
        intersections[event] = inter
        if inter != excitation_region(ts, event):
            holds = False
    return holds, intersections
