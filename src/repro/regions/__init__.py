"""Region theory: regions of transition systems and PN synthesis /
back-annotation (paper Section 4)."""

from .region import (
    ENTER,
    EXIT,
    NOCROSS,
    all_minimal_preregions,
    event_gradient,
    excitation_closure_holds,
    excitation_region,
    is_region,
    minimal_regions_containing,
)
from .synthesis import extract_stg, synthesize_net

__all__ = [
    "ENTER", "EXIT", "NOCROSS",
    "all_minimal_preregions", "event_gradient", "excitation_closure_holds",
    "excitation_region", "is_region", "minimal_regions_containing",
    "extract_stg", "synthesize_net",
]
