"""Petri-net synthesis from state-based models (paper, Section 4, ref [8]).

"At any step of the design process a PN corresponding to the current TS
can be extracted and back-annotated to the designer" — Figure 10(a) shows
the STG extracted for the two-input-gate circuit of Figure 9(a).

The construction is the classical region-based one:

* transitions = events of the TS;
* places = minimal pre-regions of the events (an irredundant subset);
* arcs: region -> event when the event exits the region, event -> region
  when it enters;
* initially marked places = regions containing the initial state.

For excitation-closed transition systems the synthesized net's
reachability graph is bisimilar to the input TS; this is asserted by the
test suite on the paper's examples.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from ..petri.net import PetriNet
from ..stg.signals import SignalEvent, SignalType
from ..stg.stg import STG
from ..ts.transition_system import Event, State, TransitionSystem
from .region import (
    ENTER,
    EXIT,
    all_minimal_preregions,
    event_gradient,
    excitation_closure_holds,
    excitation_region,
)


def synthesize_net(ts: TransitionSystem,
                   require_excitation_closure: bool = True
                   ) -> Tuple[PetriNet, Dict[str, FrozenSet[State]]]:
    """Synthesize a Petri net whose reachability graph generates ``ts``.

    Returns ``(net, place_map)`` where ``place_map`` maps place names to
    the region (state set) they denote.  Raises
    :class:`~repro.errors.SynthesisError` if excitation closure fails and
    ``require_excitation_closure`` is set (label splitting is out of scope;
    the condition holds for all the paper's examples).
    """
    preregions = all_minimal_preregions(ts)
    for event in sorted(ts.events):
        if not preregions[event]:
            raise SynthesisError("event %r has no pre-region" % event)
    holds, intersections = excitation_closure_holds(ts, preregions)
    if require_excitation_closure and not holds:
        offenders = [e for e in sorted(ts.events)
                     if intersections[e] != excitation_region(ts, e)]
        raise SynthesisError(
            "excitation closure fails for events %s — label splitting "
            "required" % offenders)

    # collect candidate places, deduplicated
    regions: List[FrozenSet[State]] = []
    seen: Set[FrozenSet[State]] = set()
    for event in sorted(ts.events):
        for r in preregions[event]:
            if r not in seen:
                seen.add(r)
                regions.append(r)

    # irredundancy: greedily drop regions whose removal preserves the
    # excitation closure of every event
    def closure_ok(chosen: Sequence[FrozenSet[State]]) -> bool:
        for event in sorted(ts.events):
            pre = [r for r in chosen
                   if event_gradient(ts, r, event) == EXIT]
            if not pre:
                return False
            inter = frozenset(ts.states)
            for r in pre:
                inter &= r
            if inter != excitation_region(ts, event):
                return False
        return True

    if holds:
        for r in sorted(regions, key=lambda r: (-len(r), sorted(map(repr, r)))):
            trial = [x for x in regions if x != r]
            if trial and closure_ok(trial):
                regions = trial

    net = PetriNet("synthesized")
    place_map: Dict[str, FrozenSet[State]] = {}
    for i, r in enumerate(regions):
        name = "r%d" % i
        net.add_place(name, tokens=1 if ts.initial in r else 0)
        place_map[name] = r
    for event in sorted(ts.events):
        net.add_transition(event)
    for name, r in place_map.items():
        for event in sorted(ts.events):
            gradient = event_gradient(ts, r, event)
            if gradient == EXIT:
                net.add_arc(name, event)
            elif gradient == ENTER:
                net.add_arc(event, name)
    return net, place_map


def extract_stg(ts: TransitionSystem, signal_types: Dict[str, SignalType],
                name: str = "extracted") -> STG:
    """Back-annotate a TS whose events are signal-event strings into an STG.

    ``signal_types`` classifies each signal (input/output/internal).  The
    paper's Figure 10(a) is obtained by applying this to the state graph of
    the decomposed circuit of Figure 9(a).
    """
    net, _ = synthesize_net(ts)
    stg = STG(name)
    for signal, kind in signal_types.items():
        stg.declare_signal(signal, kind)
    for t in sorted(net.transitions):
        SignalEvent.parse(t)  # validates the event syntax
    stg.net = net.copy(name)
    for t in stg.net.transitions:
        stg.net.transitions[t].label = SignalEvent.parse(t)
    for t in stg.net.transitions:
        signal = stg.net.transitions[t].label.signal
        if signal not in stg.signal_types:
            raise SynthesisError("event %r uses unclassified signal %r"
                                 % (t, signal))
    stg.validate()
    return stg
