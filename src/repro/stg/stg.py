"""Signal Transition Graphs: Petri nets whose transitions are interpreted
as rising/falling edges of circuit signals (paper, Section 1).

An :class:`STG` owns a :class:`~repro.petri.net.PetriNet` and a signal
declaration (inputs / outputs / internal / dummy).  Transition names follow
the event syntax ``sig+``, ``sig-``, ``sig+/k``; the attached label is the
parsed :class:`~repro.stg.signals.SignalEvent`.

Structural editing operations used by synthesis live here as well:

* :meth:`STG.insert_signal` — insert a new internal signal's rising/falling
  transitions "right before" chosen events (the paper's csc0 insertion,
  Section 3.1);
* :meth:`STG.add_ordering_arc` — concurrency reduction / timing arc: a
  fresh place ordering one event after another (Sections 2.1 and 5);
* :meth:`STG.retarget_trigger` — replace one trigger of an event by another
  (the paper's Figure 11(b) optimisation: "start enabling of LDS- right
  after DSr- instead of D-").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ModelError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from .signals import FALL, RISE, SignalEvent, SignalType


class STG:
    """A Signal Transition Graph."""

    def __init__(self, name: str = "stg",
                 inputs: Iterable[str] = (),
                 outputs: Iterable[str] = (),
                 internal: Iterable[str] = (),
                 dummy: Iterable[str] = ()):
        self.name = name
        self.net = PetriNet(name)
        self.signal_types: Dict[str, SignalType] = {}
        for s in inputs:
            self.declare_signal(s, SignalType.INPUT)
        for s in outputs:
            self.declare_signal(s, SignalType.OUTPUT)
        for s in internal:
            self.declare_signal(s, SignalType.INTERNAL)
        for s in dummy:
            self.declare_signal(s, SignalType.DUMMY)
        self._place_counter = 0

    # ------------------------------------------------------------------ #
    # declarations and construction
    # ------------------------------------------------------------------ #

    def declare_signal(self, signal: str, kind: SignalType) -> None:
        """Declare (or re-classify) a signal."""
        self.signal_types[signal] = kind

    @property
    def signals(self) -> List[str]:
        """All declared signal names, sorted."""
        return sorted(self.signal_types)

    def signals_of_type(self, *kinds: SignalType) -> List[str]:
        """Declared signals of the given kinds, sorted."""
        return sorted(s for s, k in self.signal_types.items() if k in kinds)

    @property
    def inputs(self) -> List[str]:
        return self.signals_of_type(SignalType.INPUT)

    @property
    def outputs(self) -> List[str]:
        return self.signals_of_type(SignalType.OUTPUT)

    @property
    def internal(self) -> List[str]:
        return self.signals_of_type(SignalType.INTERNAL)

    @property
    def noninput_signals(self) -> List[str]:
        """Signals the circuit must implement (outputs + internal)."""
        return self.signals_of_type(SignalType.OUTPUT, SignalType.INTERNAL)

    def type_of(self, signal: str) -> SignalType:
        """Classification of a declared signal."""
        if signal not in self.signal_types:
            raise ModelError("undeclared signal %r" % signal)
        return self.signal_types[signal]

    def is_input_event(self, transition: str) -> bool:
        """True if the transition's signal is an input."""
        event = self.event_of(transition)
        return self.type_of(event.signal) == SignalType.INPUT

    def add_event(self, event) -> str:
        """Add a transition for a signal event (string or SignalEvent).

        Returns the transition name (the canonical event string).
        """
        if not isinstance(event, SignalEvent):
            event = SignalEvent.parse(str(event))
        if event.signal not in self.signal_types:
            raise ModelError("undeclared signal %r in event %s"
                             % (event.signal, event))
        name = str(event)
        self.net.add_transition(name, event)
        return name

    def fresh_place(self, prefix: str = "p") -> str:
        """Add a place with a fresh generated name."""
        while True:
            name = "%s_%d" % (prefix, self._place_counter)
            self._place_counter += 1
            if name not in self.net:
                return name

    def add_place(self, name: Optional[str] = None, tokens: int = 0) -> str:
        """Add an (optionally named) place."""
        if name is None:
            name = self.fresh_place()
            self.net.add_place(name, tokens)
        else:
            self.net.add_place(name, tokens)
        return name

    def connect(self, source: str, target: str) -> str:
        """Connect two transitions through a fresh implicit place (the
        `arc between two transitions` drawing convention of the paper),
        or add a direct arc if one endpoint is a place.

        Returns the name of the place carrying the connection.
        """
        src_is_t = source in self.net.transitions
        dst_is_t = target in self.net.transitions
        if src_is_t and dst_is_t:
            name = "<%s,%s>" % (source, target)
            suffix = 1
            while name in self.net:
                name = "<%s,%s>~%d" % (source, target, suffix)
                suffix += 1
            place = self.add_place(name)
            self.net.add_arc(source, place)
            self.net.add_arc(place, target)
            return place
        self.net.add_arc(source, target)
        return source if not src_is_t else target

    def event_of(self, transition: str) -> SignalEvent:
        """The SignalEvent labelling a transition."""
        label = self.net.label_of(transition)
        if not isinstance(label, SignalEvent):
            raise ModelError("transition %r has no signal label" % transition)
        return label

    def transitions_of(self, signal: str,
                       direction: Optional[str] = None) -> List[str]:
        """All transitions of a signal (optionally only one direction)."""
        result = []
        for t in self.net.transitions:
            ev = self.event_of(t)
            if ev.signal == signal and (direction is None or
                                        ev.direction == direction):
                result.append(t)
        return sorted(result)

    @property
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    def set_initial_marking(self, marking) -> None:
        """Replace the initial marking (delegates to the net)."""
        self.net.set_initial_marking(marking)

    # ------------------------------------------------------------------ #
    # transformations used by synthesis and timing optimisation
    # ------------------------------------------------------------------ #

    def insert_signal(self, signal: str,
                      rise_before: Sequence[str],
                      fall_before: Sequence[str],
                      kind: SignalType = SignalType.INTERNAL) -> "STG":
        """Insert a new signal with ``signal+`` right before each event in
        ``rise_before`` and ``signal-`` right before each in ``fall_before``.

        "Right before event t" means: the new transition takes over *all*
        input places of ``t`` and feeds ``t`` through a fresh place — the
        insertion used for csc0 in Section 3.1 of the paper.  Returns a new
        STG; the original is untouched.
        """
        result = self.copy()
        result.declare_signal(signal, kind)
        for instance, (direction, targets) in enumerate(
                [(RISE, rise_before), (FALL, fall_before)]):
            for k, target in enumerate(targets):
                if target not in result.net.transitions:
                    raise ModelError("unknown event %r" % target)
                event = SignalEvent(signal, direction, k)
                new_t = result.add_event(event)
                pre = dict(result.net.pre(target))
                for place, w in pre.items():
                    # move the arc place -> target to place -> new_t
                    result._remove_arc(place, target)
                    result.net.add_arc(place, new_t, w)
                bridge = result.add_place()
                result.net.add_arc(new_t, bridge)
                result.net.add_arc(bridge, target)
        return result

    def _remove_arc(self, place: str, transition: str) -> None:
        """Remove a single place->transition arc (internal helper)."""
        pre = self.net.pre(transition)
        if place not in pre:
            raise ModelError("no arc %r -> %r" % (place, transition))
        del pre[place]
        del self.net._place_out[place][transition]

    def _remove_arc_tp(self, transition: str, place: str) -> None:
        """Remove a single transition->place arc (internal helper)."""
        post = self.net.post(transition)
        if place not in post:
            raise ModelError("no arc %r -> %r" % (transition, place))
        del post[place]
        del self.net._place_in[place][transition]

    def add_ordering_arc(self, first: str, second: str,
                         initially_marked: Optional[bool] = None) -> "STG":
        """Concurrency reduction: add a fresh place forcing ``first`` to fire
        before ``second`` in every cycle.

        If ``initially_marked`` is None, the place is marked iff the events
        would otherwise deadlock — callers typically pass an explicit value.
        Used both for state-encoding by concurrency reduction (Section 2.1)
        and for timing-assumption pruning (Section 5).  Returns a new STG.
        """
        result = self.copy()
        for t in (first, second):
            if t not in result.net.transitions:
                raise ModelError("unknown event %r" % t)
        marked = bool(initially_marked) if initially_marked is not None else False
        place = result.add_place("<%s<%s>" % (first, second))
        result.net.places[place].tokens = 1 if marked else 0
        result.net.add_arc(first, place)
        result.net.add_arc(place, second)
        return result

    def retarget_trigger(self, event: str, old_trigger: str,
                         new_trigger: str) -> "STG":
        """Replace the causal arc ``old_trigger -> event`` by
        ``new_trigger -> event`` (through fresh places).

        This is the Figure 11(b) transformation: enabling an event earlier
        under an exported timing requirement.  Returns a new STG.
        """
        result = self.copy()
        # find the place connecting old_trigger to event
        connecting = None
        for place in result.net.pre(event):
            if old_trigger in result.net.preset(place):
                connecting = place
                break
        if connecting is None:
            raise ModelError("no causal place %r -> %r" % (old_trigger, event))
        if len(result.net.preset(connecting)) != 1 or \
                len(result.net.postset(connecting)) != 1:
            raise ModelError(
                "connecting place %r is shared; retarget not supported"
                % connecting
            )
        tokens = result.net.places[connecting].tokens
        result.net.remove_place(connecting)
        place = result.add_place("<%s,%s>" % (new_trigger, event), tokens)
        result.net.add_arc(new_trigger, place)
        result.net.add_arc(place, event)
        return result

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def copy(self, name: Optional[str] = None) -> "STG":
        """Deep copy (signal declarations and net structure)."""
        other = STG(name if name is not None else self.name)
        other.signal_types = dict(self.signal_types)
        other.net = self.net.copy(other.name)
        other._place_counter = self._place_counter
        return other

    def rename_signals(self, mapping: Dict[str, str],
                       name: Optional[str] = None) -> "STG":
        """A copy with signals renamed according to ``mapping``.

        Transition names are rewritten to the new canonical event strings;
        implicit place names (``<a+,b->``) are rewritten consistently.
        Used to instantiate library controllers several times (e.g. two
        pipeline stages) before composition.
        """
        for old, new in mapping.items():
            if old not in self.signal_types:
                raise ModelError("unknown signal %r" % old)
            if new in self.signal_types and new not in mapping:
                raise ModelError("rename target %r already exists" % new)
        other = STG(name if name is not None else self.name)
        for signal, kind in self.signal_types.items():
            other.declare_signal(mapping.get(signal, signal), kind)

        def rename_event(event: SignalEvent) -> SignalEvent:
            return SignalEvent(mapping.get(event.signal, event.signal),
                               event.direction, event.instance)

        tname_map = {}
        for t in self.net.transitions:
            new_event = rename_event(self.event_of(t))
            tname_map[t] = str(new_event)
        pname_map = {}
        for p in self.net.places:
            new_name = p
            for old_t, new_t in tname_map.items():
                new_name = new_name.replace("<%s," % old_t, "<%s," % new_t)
                new_name = new_name.replace(",%s>" % old_t, ",%s>" % new_t)
            pname_map[p] = new_name
        for p, place in self.net.places.items():
            other.net.add_place(pname_map[p], place.tokens)
        for t in self.net.transitions:
            other.net.add_transition(tname_map[t],
                                     rename_event(self.event_of(t)))
        for src, dst, w in self.net.arcs():
            new_src = tname_map.get(src, pname_map.get(src, src))
            new_dst = tname_map.get(dst, pname_map.get(dst, dst))
            other.net.add_arc(new_src, new_dst, w)
        other._place_counter = self._place_counter
        other.validate()
        return other

    def mirror(self, name: Optional[str] = None) -> "STG":
        """The environment's view: inputs and outputs swapped.

        The mirror of a specification describes the *environment* process
        the circuit talks to — the basis of Dill's conformance relation
        (paper ref [10]).  Internal and dummy signals are unchanged.
        """
        other = self.copy(name if name is not None else self.name + "_mirror")
        for signal, kind in list(other.signal_types.items()):
            if kind == SignalType.INPUT:
                other.signal_types[signal] = SignalType.OUTPUT
            elif kind == SignalType.OUTPUT:
                other.signal_types[signal] = SignalType.INPUT
        return other

    def validate(self) -> None:
        """Check that every transition is labelled with a declared signal."""
        for t in self.net.transitions:
            event = self.event_of(t)
            if event.signal not in self.signal_types:
                raise ModelError("transition %r uses undeclared signal %r"
                                 % (t, event.signal))

    def __repr__(self):
        return "STG(%r, in=%s, out=%s, int=%s, %r)" % (
            self.name, self.inputs, self.outputs, self.internal, self.net)
