"""Dummy (λ) transition contraction.

Syntax-directed translation (:mod:`repro.procalg`) introduces unlabelled
fork/join transitions.  Before state-based synthesis these are contracted
away so that every remaining transition is a signal edge.

The contraction is the classic *secure transition contraction*: a dummy
``t`` with input places ``P`` and output places ``Q`` is replaced by the
product places ``{(p, q) | p in P, q in Q}``, each inheriting the other
arcs of ``p`` and ``q`` and the token sum ``M(p) + M(q)``.  The operation
preserves the signal behaviour when it is *secure*:

* every input place's only consumer is ``t``  (type-1), or
* every output place's only producer is ``t`` (type-2).

Dummies that are not secure (or carry weighted/self-loop arcs) raise
:class:`~repro.errors.ModelError`.
"""

from __future__ import annotations

from typing import List

from ..errors import ModelError
from .signals import SignalEvent, SignalType
from .stg import STG


def _dummy_transitions(stg: STG) -> List[str]:
    result = []
    for t in stg.net.transitions:
        label = stg.net.label_of(t)
        if isinstance(label, SignalEvent) and label.is_dummy:
            result.append(t)
    return sorted(result)


def _contract_one(stg: STG, t: str) -> None:
    net = stg.net
    pre = dict(net.pre(t))
    post = dict(net.post(t))
    if any(w != 1 for w in list(pre.values()) + list(post.values())):
        raise ModelError("weighted dummy %r cannot be contracted" % t)
    if set(pre) & set(post):
        raise ModelError("self-loop dummy %r cannot be contracted" % t)
    if not pre or not post:
        raise ModelError("dangling dummy %r cannot be contracted" % t)
    type1 = all(set(net.postset(p)) == {t} for p in pre)
    type2 = all(set(net.preset(q)) == {t} for q in post)
    if not (type1 or type2):
        raise ModelError("dummy %r is not secure; contraction would change"
                         " behaviour" % t)

    inputs = {p: (dict(net.preset(p)), dict(net.postset(p)),
                  net.places[p].tokens) for p in pre}
    outputs = {q: (dict(net.preset(q)), dict(net.postset(q)),
                   net.places[q].tokens) for q in post}
    net.remove_transition(t)
    for p in inputs:
        net.remove_place(p)
    for q in outputs:
        net.remove_place(q)
    for p, (p_in, p_out, p_tokens) in inputs.items():
        for q, (q_in, q_out, q_tokens) in outputs.items():
            name = "%s*%s" % (p, q)
            suffix = 1
            while name in net:
                name = "%s*%s~%d" % (p, q, suffix)
                suffix += 1
            net.add_place(name, tokens=p_tokens + q_tokens)
            for u, w in p_in.items():
                if u != t:
                    net.add_arc(u, name, w)
            for u, w in q_in.items():
                if u != t:
                    net.add_arc(u, name, w)
            for u, w in p_out.items():
                if u != t:
                    net.add_arc(name, u, w)
            for u, w in q_out.items():
                if u != t:
                    net.add_arc(name, u, w)


def contract_dummy_transitions(stg: STG, cleanup: bool = True) -> STG:
    """Return a copy of the STG with all dummy transitions contracted.

    Dummies are contracted in an order that prefers currently-secure ones;
    raises :class:`ModelError` if some dummy never becomes secure.

    Product places created by fork/join contraction can be behaviourally
    redundant (and even non-safe while redundant); with ``cleanup`` (the
    default) implicit places are removed afterwards, restoring a minimal
    safe net with the same signal behaviour.
    """
    result = stg.copy(stg.name + "_contracted")
    had_dummies = bool(_dummy_transitions(result))
    while True:
        dummies = _dummy_transitions(result)
        if not dummies:
            break
        contracted = False
        errors = []
        for t in dummies:
            try:
                _contract_one(result, t)
                contracted = True
                break
            except ModelError as exc:
                errors.append(str(exc))
        if not contracted:
            raise ModelError("; ".join(errors))
    result.signal_types = {
        s: k for s, k in result.signal_types.items()
        if k != SignalType.DUMMY
    }
    if cleanup and had_dummies:
        from ..petri.reductions import remove_implicit_places

        result.net = remove_implicit_places(result.net)
    return result
