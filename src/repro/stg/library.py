"""Bundled STG specifications.

Contains the paper's running examples — the VME bus controller READ cycle
(Figure 3) and the combined READ/WRITE controller with choice (Figure 5) —
plus a set of constructed controllers and scalable generators used by the
test and benchmark suites.

Place naming for the READ cycle follows the paper's Figure 3 topology:

====  =======================  ==============================
p0    LDTACK- -> LDS+          marked initially
p1    DTACK- -> DSr+           marked initially
p2    DSr+  -> LDS+
p3    LDS+  -> LDTACK+
p4    LDTACK+ -> D+
p5    D+    -> DTACK+
p6    DTACK+ -> DSr-
p7    DSr-  -> D-
p8    D-    -> DTACK-
p9    D-    -> LDS-
p10   LDS-  -> LDTACK-
====  =======================  ==============================

This yields exactly the 14-state reachability graph of Figure 4 with
initial code ``0*0.00.0`` in signal order <DSr, DTACK, LDTACK, LDS, D>.
"""

from __future__ import annotations

from typing import List

from .gformat import parse_g
from .stg import STG
from .signals import SignalType

VME_READ_G = """
.model vme_read
.inputs DSr LDTACK
.outputs LDS D DTACK
.graph
p0 LDS+
p1 DSr+
DSr+ p2
p2 LDS+
LDS+ p3
p3 LDTACK+
LDTACK+ p4
p4 D+
D+ p5
p5 DTACK+
DTACK+ p6
p6 DSr-
DSr- p7
p7 D-
D- p8 p9
p8 DTACK-
p9 LDS-
DTACK- p1
LDS- p10
p10 LDTACK-
LDTACK- p0
.marking { p0 p1 }
.end
"""

VME_READ_WRITE_G = """
.model vme_read_write
.inputs DSr DSw LDTACK
.outputs LDS D DTACK
.graph
p0 DSr+ DSw+
DSr+ LDS+/1
p3 LDS+/1 LDS+/2
LDS+/1 LDTACK+/1
LDTACK+/1 D+/1
D+/1 DTACK+/1
DTACK+/1 DSr-
DSr- D-/1
D-/1 p1 p2
DSw+ D+/2
D+/2 LDS+/2
LDS+/2 LDTACK+/2
LDTACK+/2 D-/2
D-/2 DTACK+/2
DTACK+/2 DSw-
DSw- p1 p2
p1 DTACK-
DTACK- p0
p2 LDS-
LDS- LDTACK-
LDTACK- p3
.marking { p0 p3 }
.end
"""


def vme_read() -> STG:
    """The paper's READ-cycle STG (Figure 3): a live safe marked graph
    whose state graph (Figure 4) has 14 states and one CSC conflict."""
    return parse_g(VME_READ_G)


def vme_read_write() -> STG:
    """The paper's READ/WRITE STG (Figure 5): choice place ``p0`` selects a
    read or a write transaction; ``p1``/``p2`` merge the branches."""
    return parse_g(VME_READ_WRITE_G)


def vme_read_csc() -> STG:
    """READ cycle with the paper's csc0 insertion already applied:
    ``csc0+`` right before ``LDS+`` and ``csc0-`` right before ``D-``
    (Section 3.1, Figure 7).  Satisfies CSC."""
    return vme_read().insert_signal("csc0", rise_before=["LDS+"],
                                    fall_before=["D-"])


def latch_controller() -> STG:
    """A simple fully sequential 4-phase latch (buffer) controller.

    Inputs ``Rin`` (request in) and ``Aout`` (ack from the downstream
    stage); outputs ``Ain`` and ``Rout``.  One handshake on each side per
    data item, strictly interleaved — 8 states, CSC satisfied.
    """
    text = """
.model latch_controller
.inputs Rin Aout
.outputs Ain Rout
.graph
Rin+ Rout+
Rout+ Aout+
Aout+ Ain+
Ain+ Rin-
Rin- Rout-
Rout- Aout-
Aout- Ain-
Ain- Rin+
.marking { <Ain-,Rin+> }
.end
"""
    return parse_g(text)


def concurrent_latch_controller() -> STG:
    """A latch controller with input/output handshakes partially decoupled.

    After ``Aout+`` the controller acknowledges the input (``Ain+``) while
    resetting the output request concurrently.  This controller has a CSC
    conflict and is used to exercise the encoding machinery on something
    other than the VME example.
    """
    text = """
.model concurrent_latch_controller
.inputs Rin Aout
.outputs Ain Rout
.graph
Rin+ Rout+
p0 Rout+
Rout+ Aout+
Aout+ Ain+ Rout-
Rout- Aout-
Ain+ Rin-
Rin- Ain-
Aout- p0
Ain- Rin+
.marking { p0 <Ain-,Rin+> }
.end
"""
    return parse_g(text)


def handshake_arbiter_free_choice() -> STG:
    """Environment chooses between two request channels (free choice).

    Inputs ``r1``/``r2`` are mutually exclusive requests; the controller
    answers on ``a1``/``a2``.  Exercises input choice (Section 1.5) without
    needing arbitration.
    """
    text = """
.model handshake_choice
.inputs r1 r2
.outputs a1 a2
.graph
p0 r1+ r2+
r1+ a1+
a1+ r1-
r1- a1-
a1- p0
r2+ a2+
a2+ r2-
r2- a2-
a2- p0
.marking { p0 }
.end
"""
    return parse_g(text)


def parallel_handshakes(n: int) -> STG:
    """``n`` completely independent four-phase handshakes.

    Each channel cycles ``r_i+ a_i+ r_i- a_i-``; all channels are mutually
    concurrent, so the state graph has ``4**n`` states.  The scalable
    workload for the state-explosion experiments of Section 2.2.
    """
    stg = STG("parallel_handshakes_%d" % n)
    for i in range(n):
        r, a = "r%d" % i, "a%d" % i
        stg.declare_signal(r, SignalType.INPUT)
        stg.declare_signal(a, SignalType.OUTPUT)
        events = [stg.add_event(e) for e in (r + "+", a + "+", r + "-", a + "-")]
        for j in range(4):
            place = stg.connect(events[j], events[(j + 1) % 4])
            if j == 3:
                stg.net.places[place].tokens = 1
    return stg


def pipeline_ring(n: int, tokens: int = 1) -> STG:
    """A ring of ``n`` pipeline-stage events forming a marked graph.

    Event ``t_i`` models stage ``i`` transferring a data item (labelled as
    an alternating handshake on signal ``s_i``); ``tokens`` items circulate.
    Used by the timing/performance benchmarks: the cycle time is the total
    ring delay divided by the token count.
    """
    if not 0 < tokens <= n:
        raise ValueError("tokens must be in 1..n")
    stg = STG("pipeline_ring_%d_%d" % (n, tokens))
    events: List[str] = []
    for i in range(n):
        s = "s%d" % i
        stg.declare_signal(s, SignalType.OUTPUT)
        events.append(stg.add_event(s + ("+" if i % 2 == 0 else "-")))
    for i in range(n):
        place = stg.connect(events[i], events[(i + 1) % n])
        if i >= n - tokens:
            stg.net.places[place].tokens = 1
    return stg


def sequencer(n: int) -> STG:
    """A purely sequential n-phase cycle: ``x0+ x1+ ... x0- x1- ...``.

    Every signal is an output; the state graph is a simple cycle of
    ``2 * n`` states.  Useful as a CSC-clean synthesis smoke test.
    """
    stg = STG("sequencer_%d" % n)
    names = ["x%d" % i for i in range(n)]
    for s in names:
        stg.declare_signal(s, SignalType.OUTPUT)
    events = [stg.add_event(s + "+") for s in names]
    events += [stg.add_event(s + "-") for s in names]
    for i, e in enumerate(events):
        place = stg.connect(e, events[(i + 1) % len(events)])
        if i == len(events) - 1:
            stg.net.places[place].tokens = 1
    return stg


def muller_pipeline(n: int) -> STG:
    """An ``n``-stage Muller pipeline control (a classic SI structure).

    Signals: input request ``c0`` (the environment) and stage outputs
    ``c1 .. cn``; the last stage's acknowledgement loops back to the
    environment.  Stage ``i`` fires when its predecessor has new data and
    its successor has consumed the old one — the marked-graph STG::

        c(i-1)+ -> ci+ -> c(i-1)-  and  ci+ -> c(i+1)+ ...

    Synthesis recovers the textbook result: every stage is a two-input
    C-element of its neighbours (the set function ``c(i-1)·c(i+1)'`` and
    reset ``c(i-1)'·c(i+1)`` for the middle stages).
    """
    if n < 1:
        raise ValueError("need at least one stage")
    stg = STG("muller_pipeline_%d" % n)
    stg.declare_signal("c0", SignalType.INPUT)
    for i in range(1, n + 1):
        stg.declare_signal("c%d" % i, SignalType.OUTPUT)
    for i in range(n + 1):
        stg.add_event("c%d+" % i)
        stg.add_event("c%d-" % i)
    for i in range(n):
        # forward propagation: ci+ -> c(i+1)+, ci- -> c(i+1)-
        stg.connect("c%d+" % i, "c%d+" % (i + 1))
        stg.connect("c%d-" % i, "c%d-" % (i + 1))
        # backward acknowledgement: c(i+1)+ -> ci-, c(i+1)- -> ci+
        stg.connect("c%d+" % (i + 1), "c%d-" % i)
        place = stg.connect("c%d-" % (i + 1), "c%d+" % i)
        stg.net.places[place].tokens = 1
    return stg


def mutex_controller() -> STG:
    """Two clients arbitrating for one resource (paper, Sections 1.5/2.1).

    Requests ``r1``/``r2`` may arrive concurrently; grants ``a1``/``a2``
    compete for the single resource place, so the two grant transitions
    disable each other — an *output choice*.  The specification is
    therefore non-persistent and "cannot be implemented without hazards
    unless special mutual exclusion elements (arbiters) are used"; the
    matching implementation is built with
    :meth:`repro.synth.netlist.Gate.mutex_pair`.
    """
    text = """
.model mutex_controller
.inputs r1 r2
.outputs a1 a2
.graph
res a1+ a2+
r1+ a1+
a1+ r1-
r1- a1-
a1- res
a1- r1+
r2+ a2+
a2+ r2-
r2- a2-
a2- res
a2- r2+
.marking { res <a1-,r1+> <a2-,r2+> }
.end
"""
    return parse_g(text)


ALL_EXAMPLES = {
    "vme_read": vme_read,
    "vme_read_write": vme_read_write,
    "vme_read_csc": vme_read_csc,
    "latch_controller": latch_controller,
    "concurrent_latch_controller": concurrent_latch_controller,
    "handshake_arbiter_free_choice": handshake_arbiter_free_choice,
    "mutex_controller": mutex_controller,
}
"""Name -> constructor map of the fixed-size bundled examples."""
