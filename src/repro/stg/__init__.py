"""Signal Transition Graphs: model, .g format I/O, bundled examples,
waveform rendering (paper Section 1)."""

from .signals import FALL, RISE, SignalEvent, SignalType
from .stg import STG
from .gformat import load_g, parse_g, save_g, write_g
from .library import (
    ALL_EXAMPLES,
    concurrent_latch_controller,
    handshake_arbiter_free_choice,
    latch_controller,
    muller_pipeline,
    mutex_controller,
    parallel_handshakes,
    pipeline_ring,
    sequencer,
    vme_read,
    vme_read_csc,
    vme_read_write,
)
from .contraction import contract_dummy_transitions
from .waveform import canonical_trace, render_waveforms

__all__ = [
    "FALL", "RISE", "SignalEvent", "SignalType", "STG",
    "load_g", "parse_g", "save_g", "write_g",
    "ALL_EXAMPLES", "concurrent_latch_controller",
    "handshake_arbiter_free_choice", "latch_controller", "muller_pipeline", "mutex_controller",
    "parallel_handshakes", "pipeline_ring", "sequencer",
    "vme_read", "vme_read_csc", "vme_read_write",
    "canonical_trace", "render_waveforms", "contract_dummy_transitions",
]
