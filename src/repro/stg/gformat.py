"""Reader/writer for the ``.g`` (astg) STG interchange format.

This is the textual format used by petrify/SIS and the asynchronous
benchmark suites::

    .model vme_read
    .inputs DSr LDTACK
    .outputs LDS D DTACK
    .graph
    DSr+ LDS+
    LDS+ LDTACK+
    p0 DSr+
    .marking { p0 <LDS-,LDTACK-> }
    .end

In the ``.graph`` section each line lists a source node followed by its
successors.  A token of event syntax (``sig+``, ``sig-``, ``sig+/2``) is a
transition; anything else is a place.  An arc between two transitions goes
through an *implicit place* named ``<src,dst>``, which is how such places
are referenced in the ``.marking`` line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..errors import ParseError
from .signals import SignalEvent, SignalType, _EVENT_RE
from .stg import STG


def _is_event_token(token: str) -> bool:
    return bool(_EVENT_RE.match(token))


def parse_g(text: str, name: Optional[str] = None) -> STG:
    """Parse a ``.g`` description into an :class:`STG`."""
    model_name = name or "stg"
    inputs: List[str] = []
    outputs: List[str] = []
    internal: List[str] = []
    dummy: List[str] = []
    graph_lines: List[List[str]] = []
    marking_tokens: List[str] = []
    in_graph = False

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".model") or line.startswith(".name"):
            parts = line.split()
            if len(parts) > 1:
                model_name = parts[1] if name is None else model_name
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".internal"):
            internal.extend(line.split()[1:])
        elif line.startswith(".dummy"):
            dummy.extend(line.split()[1:])
        elif line.startswith(".graph"):
            in_graph = True
        elif line.startswith(".marking"):
            in_graph = False
            m = re.search(r"\{(.*)\}", line)
            if not m:
                raise ParseError("malformed .marking line: %r" % raw)
            # implicit place tokens <a,b> must survive whitespace splitting
            body = m.group(1)
            marking_tokens = re.findall(r"<[^>]*>|[^\s<>]+", body)
        elif line.startswith(".end"):
            in_graph = False
        elif line.startswith("."):
            # tolerate unknown dot-directives (.capacity, .slowenv, ...)
            continue
        elif in_graph:
            graph_lines.append(line.split())

    stg = STG(model_name, inputs=inputs, outputs=outputs,
              internal=internal, dummy=dummy)

    # first pass: create transitions (and auto-declare signals referenced
    # in the graph but not declared — classified as internal, matching
    # petrify's behaviour for .g files written by tools)
    tokens = [tok for line in graph_lines for tok in line]
    for tok in tokens:
        if _is_event_token(tok):
            event = SignalEvent.parse(tok)
            if event.signal not in stg.signal_types:
                stg.declare_signal(event.signal, SignalType.INTERNAL)
            if str(event) not in stg.net.transitions:
                stg.add_event(event)
    # explicit places
    for tok in tokens:
        if not _is_event_token(tok) and tok not in stg.net.places:
            stg.add_place(tok)

    # second pass: arcs
    for line in graph_lines:
        src = line[0]
        for dst in line[1:]:
            src_name = str(SignalEvent.parse(src)) if _is_event_token(src) else src
            dst_name = str(SignalEvent.parse(dst)) if _is_event_token(dst) else dst
            stg.connect(src_name, dst_name)

    # marking
    marked: Dict[str, int] = {}
    for tok in marking_tokens:
        if tok.startswith("<"):
            inner = tok[1:-1]
            try:
                a, b = inner.split(",")
            except ValueError:
                raise ParseError("malformed implicit place token %r" % tok)
            a = str(SignalEvent.parse(a)) if _is_event_token(a) else a
            b = str(SignalEvent.parse(b)) if _is_event_token(b) else b
            pname = "<%s,%s>" % (a, b)
            if pname not in stg.net.places:
                raise ParseError("marking references unknown implicit place %r"
                                 % pname)
            marked[pname] = marked.get(pname, 0) + 1
        else:
            if tok not in stg.net.places:
                raise ParseError("marking references unknown place %r" % tok)
            marked[tok] = marked.get(tok, 0) + 1
    stg.set_initial_marking(marked)
    stg.validate()
    return stg


def write_g(stg: STG) -> str:
    """Serialise an :class:`STG` to ``.g`` text.

    Implicit places (single producer, single consumer, auto-named
    ``<a,b>``) are written as direct transition-to-transition arcs.
    """
    lines = [".model %s" % stg.name]
    if stg.inputs:
        lines.append(".inputs %s" % " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs %s" % " ".join(stg.outputs))
    if stg.internal:
        lines.append(".internal %s" % " ".join(stg.internal))
    dummies = stg.signals_of_type(SignalType.DUMMY)
    if dummies:
        lines.append(".dummy %s" % " ".join(dummies))
    lines.append(".graph")

    implicit = {}
    for p in stg.net.places:
        pres = stg.net.preset(p)
        posts = stg.net.postset(p)
        if (p.startswith("<") and len(pres) == 1 and len(posts) == 1
                and list(pres.values()) == [1] and list(posts.values()) == [1]):
            implicit[p] = (next(iter(pres)), next(iter(posts)))

    emitted = set()
    for t in sorted(stg.net.transitions):
        targets = []
        for p in sorted(stg.net.postset(t)):
            if p in implicit:
                targets.append(implicit[p][1])
                emitted.add((t, p))
            else:
                targets.append(p)
        if targets:
            lines.append("%s %s" % (t, " ".join(targets)))
    for p in sorted(stg.net.places):
        if p in implicit:
            continue
        succs = sorted(stg.net.postset(p))
        if succs:
            lines.append("%s %s" % (p, " ".join(succs)))

    tokens = []
    for p, n in stg.initial_marking.items():
        tokens.extend([p] * n)
    lines.append(".marking { %s }" % " ".join(sorted(tokens)))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def load_g(path: str) -> STG:
    """Read a ``.g`` file from disk."""
    with open(path) as f:
        return parse_g(f.read())


def save_g(stg: STG, path: str) -> None:
    """Write an STG to a ``.g`` file."""
    with open(path, "w") as f:
        f.write(write_g(stg))
