"""Signals and signal events for Signal Transition Graphs.

An STG interprets Petri-net transitions as *signal transitions*: rising
(``a+``) and falling (``a-``) edges of interface or internal signals
(paper, Section 1.1).  A signal is classified as:

* ``INPUT`` — driven by the environment (e.g. DSr, LDTACK);
* ``OUTPUT`` — driven by the circuit and observed at the interface
  (e.g. LDS, D, DTACK);
* ``INTERNAL`` — driven by the circuit but invisible at the interface
  (e.g. state-coding signals such as csc0, decomposition signals map0);
* ``DUMMY`` — an unlabelled event (λ), used by some transformations.

Non-input means OUTPUT or INTERNAL — the signals logic synthesis must
implement.
"""

from __future__ import annotations

import enum
import re
from typing import Optional, Tuple

from ..errors import ParseError


class SignalType(enum.Enum):
    """Classification of a signal with respect to the circuit boundary."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"

    @property
    def is_noninput(self) -> bool:
        """True for signals the circuit must implement (output/internal)."""
        return self in (SignalType.OUTPUT, SignalType.INTERNAL)


RISE = "+"
FALL = "-"

_EVENT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_\[\].]*)([+\-~])(?:/(\d+))?$")


class SignalEvent:
    """A signal transition label: signal name, direction, instance index.

    The instance index distinguishes multiple occurrences of the same signal
    transition in one STG (e.g. ``LDS+/1`` and ``LDS+/2`` in the READ/WRITE
    specification of Figure 5).  Instance 0 is printed without the suffix.
    ``direction`` is ``"+"`` (rising), ``"-"`` (falling), or ``"~"`` for a
    dummy event.
    """

    __slots__ = ("signal", "direction", "instance", "_hash")

    def __init__(self, signal: str, direction: str, instance: int = 0):
        if direction not in (RISE, FALL, "~"):
            raise ParseError("bad direction %r for signal %r" % (direction, signal))
        self.signal = signal
        self.direction = direction
        self.instance = instance
        # events are interned in sets/dicts all over the region machinery;
        # hash once at construction (the object is immutable)
        self._hash = hash((signal, direction, instance))

    @classmethod
    def parse(cls, text: str) -> "SignalEvent":
        """Parse ``name+``, ``name-``, ``name+/2`` etc."""
        m = _EVENT_RE.match(text.strip())
        if not m:
            raise ParseError("cannot parse signal event %r" % text)
        name, direction, instance = m.groups()
        return cls(name, direction, int(instance) if instance else 0)

    @property
    def is_rising(self) -> bool:
        return self.direction == RISE

    @property
    def is_falling(self) -> bool:
        return self.direction == FALL

    @property
    def is_dummy(self) -> bool:
        return self.direction == "~"

    def base(self) -> Tuple[str, str]:
        """The (signal, direction) pair without the instance index."""
        return (self.signal, self.direction)

    def opposite(self, instance: Optional[int] = None) -> "SignalEvent":
        """The complementary transition (``a+`` for ``a-`` and vice versa)."""
        flipped = FALL if self.direction == RISE else RISE
        return SignalEvent(self.signal, flipped,
                           self.instance if instance is None else instance)

    def __eq__(self, other) -> bool:
        return (isinstance(other, SignalEvent)
                and self.signal == other.signal
                and self.direction == other.direction
                and self.instance == other.instance)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self):
        suffix = "/%d" % self.instance if self.instance else ""
        return "%s%s%s" % (self.signal, self.direction, suffix)

    def __repr__(self):
        return "SignalEvent(%s)" % self

    def sort_key(self):
        """Deterministic ordering key (signal, direction, instance)."""
        return (self.signal, self.direction, self.instance)
