"""ASCII waveform (timing-diagram) rendering.

The paper motivates STGs as "a formalization of timing diagrams"
(Section 1.1, Figure 2).  This module closes the loop: given an STG and a
firing trace, it renders the classic waveform picture so the READ-cycle
diagram of Figure 2 can be regenerated from the formal model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ModelError
from .signals import SignalEvent
from .stg import STG
from ..petri.token_game import enabled_transitions, fire

HIGH = "‾"  # overline
LOW = "_"
RISE_CHAR = "/"
FALL_CHAR = "\\"


def canonical_trace(stg: STG, max_steps: int = 10_000) -> List[str]:
    """A firing sequence that returns to the initial marking.

    Deterministic depth-first search for the lexicographically smallest
    cycle through the reachability graph back to the initial marking.
    """
    initial = stg.initial_marking
    seen = {initial}
    path: List[str] = []

    def dfs(marking) -> bool:
        if len(path) > max_steps:
            return False
        for t in enabled_transitions(stg.net, marking):
            succ = fire(stg.net, marking, t, check=False)
            path.append(t)
            if succ == initial:
                return True
            if succ not in seen:
                seen.add(succ)
                if dfs(succ):
                    return True
            path.pop()
        return False

    if not dfs(initial):
        raise ModelError("no cycle back to the initial marking found")
    return path


def render_waveforms(stg: STG, trace: Optional[Sequence[str]] = None,
                     initial_values: Optional[Dict[str, int]] = None,
                     width: int = 4) -> str:
    """Render signal waveforms over a firing trace.

    Each event occupies ``width`` columns; rising edges are drawn ``/``,
    falling edges ``\\``, stable phases with ``_`` (low) and an overline
    (high).  ``initial_values`` defaults to all-zero, which is correct for
    specifications whose first transition of every signal is rising (such
    as the VME examples); otherwise pass the code from
    :func:`repro.ts.state_graph.build_state_graph`.
    """
    if trace is None:
        trace = canonical_trace(stg)
    values = {s: 0 for s in stg.signals}
    if initial_values:
        values.update(initial_values)
    rows: Dict[str, List[str]] = {s: [] for s in stg.signals}
    header: List[str] = []

    def emit_stable():
        for s in stg.signals:
            rows[s].append((HIGH if values[s] else LOW) * width)

    emit_stable()
    header.append(" " * width)
    for t in trace:
        event = stg.event_of(t)
        for s in stg.signals:
            if s == event.signal and not event.is_dummy:
                edge = RISE_CHAR if event.is_rising else FALL_CHAR
                rows[s].append(edge)
            else:
                rows[s].append(HIGH if values[s] else LOW)
        if not event.is_dummy:
            values[event.signal] = 1 if event.is_rising else 0
        header.append(str(event).ljust(width + 1)[: width + 1])
        emit_stable()

    name_width = max(len(s) for s in stg.signals) if stg.signals else 0
    lines = [" " * (name_width + 2) + "".join(header)]
    for s in stg.signals:
        lines.append("%s  %s" % (s.rjust(name_width), "".join(rows[s])))
    return "\n".join(lines)
