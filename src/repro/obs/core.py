"""Spans, counters and gauges — the instrumentation core.

The design is span-centric: every instrumented operation opens a
:func:`span` (a context manager timed with :func:`time.perf_counter`),
and all numeric observations — typed :class:`Counter` increments and
:class:`Gauge` snapshots — attach to the innermost active span.  When
the layer is disabled (the default), :func:`span` hands back one shared
:class:`NullSpan` whose every method is a ``pass``, so the hot paths pay
a single function call and an attribute read per operation; the engine
benchmark matrix bounds that overhead at under 2 % (see
``EXPERIMENTS.md``).

Switching is global and explicit: the ``REPRO_TRACE`` environment
variable (``1``/``true``/``yes``/``on``) arms the layer at import time,
:func:`enable` / :func:`disable` flip it at run time, and the
:func:`tracing` context manager scopes it for tests and the CLI —
enabling, attaching an in-memory :class:`~repro.obs.sinks.MemorySink`,
and restoring the previous state on exit.

Completed spans are dispatched to every registered sink as plain-dict
records (see :mod:`repro.obs.schema` for the exact shape), innermost
first, so a sink sees a child before its parent — the natural order for
streaming JSONL.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Union

Number = Union[int, float]

#: Environment variable that arms the layer at import time.
ENV_VAR = "REPRO_TRACE"

_TRUTHY = ("1", "true", "yes", "on")

_enabled: bool = os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY
_sinks: List[Any] = []
_stack: List["Span"] = []
_seq: int = 0
#: perf_counter origin: span start times are reported relative to this.
#: Forked worker processes inherit the parent's origin, so their record
#: timestamps land on the same axis as the parent's (perf_counter is
#: CLOCK_MONOTONIC on Linux — system-wide, not per-process).
_origin: float = time.perf_counter()
_progress: List[Callable[[], Dict[str, Number]]] = []


def enabled() -> bool:
    """True iff the instrumentation layer is currently armed.

    The single switch every instrumented hot path keys off — set from
    the ``REPRO_TRACE`` environment variable at import time and flipped
    at run time by :func:`enable` / :func:`disable`.
    """
    return _enabled


def enable(on: bool = True) -> None:
    """Arm (or, with ``on=False``, disarm) the instrumentation layer."""
    global _enabled
    _enabled = bool(on)


def disable() -> None:
    """Disarm the instrumentation layer (spans become no-ops again)."""
    enable(False)


def add_sink(sink: Any) -> Any:
    """Register a sink; every completed span record is handed to its
    ``handle(record)`` method.  Returns the sink for chaining."""
    _sinks.append(sink)
    return sink


def remove_sink(sink: Any) -> None:
    """Unregister a sink previously added with :func:`add_sink`."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def active_sinks() -> List[Any]:
    """The currently registered sinks (a copy).

    Named to avoid shadowing the :mod:`repro.obs.sinks` submodule on the
    package namespace.
    """
    return list(_sinks)


def reset() -> None:
    """Restore the module to its pristine state (tests only).

    Disarms the layer unless ``REPRO_TRACE`` is set, drops all sinks and
    any active span stack, and rewinds the record sequence counter.
    """
    global _enabled, _seq
    _enabled = os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY
    del _sinks[:]
    del _stack[:]
    del _progress[:]
    _seq = 0


def current() -> Optional["Span"]:
    """The innermost active span, or None outside any span."""
    return _stack[-1] if _stack else None


def next_seq() -> int:
    """Allocate the next record sequence number.

    Spans take one automatically on entry; :mod:`repro.obs.remote` takes
    them when re-basing worker records into the parent trace, so every
    record of a merged trace keeps a unique ``seq``.
    """
    global _seq
    seq = _seq
    _seq += 1
    return seq


def rel_time(at: Optional[float] = None) -> float:
    """A ``perf_counter`` instant (default: now) relative to the trace
    origin — the time axis every record's ``start_s`` is reported on."""
    return (time.perf_counter() if at is None else at) - _origin


def dispatch(record: Dict[str, Any]) -> None:
    """Hand one completed record to every registered sink.

    Spans dispatch themselves on exit; :mod:`repro.obs.remote` uses this
    to inject re-based worker records into the parent's sinks.
    """
    for sink in _sinks:
        sink.handle(record)


def push_progress(fn: Callable[[], Dict[str, Number]]) -> None:
    """Install ``fn`` as the innermost progress provider.

    A provider is a cheap zero-argument callable returning a dict of
    numeric progress figures (e.g. ``Solver.stats`` or ``BDD.stats``).
    The worker heartbeat thread (:mod:`repro.obs.remote`) samples the
    innermost provider to annotate each heartbeat with live engine
    progress.  Providers nest: engines push on entry and pop on exit, so
    the sample always reflects the deepest running computation.
    """
    _progress.append(fn)


def pop_progress() -> None:
    """Remove the innermost progress provider (no-op when none)."""
    if _progress:
        _progress.pop()


def sample_progress() -> Optional[Dict[str, Number]]:
    """One numeric snapshot from the innermost progress provider.

    Returns None when no provider is installed or the provider fails —
    heartbeats must never die because an engine was mid-mutation.  Only
    numeric values survive the sample (the heartbeat record stores them
    as gauges).
    """
    if not _progress:
        return None
    try:
        values = _progress[-1]()
    except Exception:
        return None
    if not isinstance(values, dict):
        return None
    return {k: v for k, v in values.items()
            if isinstance(k, str) and not isinstance(v, bool)
            and isinstance(v, (int, float))}


class Counter:
    """A named monotonically increasing tally bound to one span."""

    __slots__ = ("span", "name")

    def __init__(self, span: "Span", name: str):
        self.span = span
        self.name = name

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        c = self.span.counters
        c[self.name] = c.get(self.name, 0) + n

    @property
    def value(self) -> Number:
        """Current tally (0 before the first increment)."""
        return self.span.counters.get(self.name, 0)


class Gauge:
    """A named last-value-wins measurement bound to one span."""

    __slots__ = ("span", "name")

    def __init__(self, span: "Span", name: str):
        self.span = span
        self.name = name

    def set(self, value: Number) -> None:
        """Record the gauge's current value (overwrites the previous)."""
        self.span.gauges[self.name] = value

    @property
    def value(self) -> Optional[Number]:
        """Last recorded value, or None if never set."""
        return self.span.gauges.get(self.name)


class Span:
    """One timed, named, tagged unit of work.

    Use as a context manager (normally via the module-level
    :func:`span` helper, which returns a :class:`NullSpan` when the
    layer is disabled)::

        with obs.span("engine.build", engine="compiled") as sp:
            sp.add("states", 1024)
            sp.set_gauge("peak_nodes", 2171)

    On exit the span is converted to a plain-dict record
    (:meth:`to_record`) and dispatched to every registered sink.
    """

    __slots__ = ("name", "tags", "counters", "gauges", "start",
                 "duration", "parent", "depth", "seq", "error")

    def __init__(self, name: str, **tags: Any):
        self.name = name
        self.tags: Dict[str, Any] = tags
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.start: float = 0.0
        self.duration: float = 0.0
        self.parent: Optional[str] = None
        self.depth: int = 0
        self.seq: int = 0
        self.error: Optional[str] = None

    # -- observation API ------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """A typed :class:`Counter` handle for ``name`` on this span."""
        return Counter(self, name)

    def gauge(self, name: str) -> Gauge:
        """A typed :class:`Gauge` handle for ``name`` on this span."""
        return Gauge(self, name)

    def add(self, name: str, n: Number = 1) -> None:
        """Increment counter ``name`` by ``n`` (shorthand)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (shorthand)."""
        self.gauges[name] = value

    def annotate(self, **tags: Any) -> None:
        """Merge extra tags into the span (e.g. a verdict known only at
        the end of the operation)."""
        self.tags.update(tags)

    def elapsed(self) -> float:
        """Seconds since the span was entered (its duration once closed)."""
        if self.duration:
            return self.duration
        return time.perf_counter() - _origin - self.start

    # -- lifecycle ------------------------------------------------------ #

    def __enter__(self) -> "Span":
        parent = _stack[-1] if _stack else None
        if parent is not None:
            self.parent = parent.name
            self.depth = parent.depth + 1
        self.seq = next_seq()
        _stack.append(self)
        self.start = time.perf_counter() - _origin
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - _origin - self.start
        if exc_type is not None:
            self.error = exc_type.__name__
        if _stack and _stack[-1] is self:
            _stack.pop()
        dispatch(self.to_record())
        return None

    def to_record(self) -> Dict[str, Any]:
        """The span as a plain dict following the ``repro-trace/1``
        schema of :mod:`repro.obs.schema` (one JSONL line per span)."""
        from .schema import TRACE_SCHEMA

        record: Dict[str, Any] = {
            "schema": TRACE_SCHEMA,
            "event": "span",
            "name": self.name,
            "seq": self.seq,
            "depth": self.depth,
            "parent": self.parent,
            "start_s": self.start,
            "duration_s": self.duration,
            "tags": dict(self.tags),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        return "Span(%r, depth=%d, counters=%r)" % (
            self.name, self.depth, self.counters)


class NullSpan:
    """The shared do-nothing span handed out while the layer is disabled.

    Every method is a no-op; :meth:`elapsed` still measures nothing
    (returns 0.0) so callers never need an ``enabled()`` guard of their
    own.  A single instance (:data:`NULL_SPAN`) is reused for every
    disabled :func:`span` call.
    """

    __slots__ = ()

    #: Shared empty mapping: reads see no counters, and instrumentation
    #: code must go through add()/set_gauge() (which discard) anyway.
    counters: Dict[str, Number] = {}
    gauges: Dict[str, Number] = {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def counter(self, name: str) -> "NullCounter":
        """A do-nothing counter handle."""
        return NULL_COUNTER

    def gauge(self, name: str) -> "NullGauge":
        """A do-nothing gauge handle."""
        return NULL_GAUGE

    def add(self, name: str, n: Number = 1) -> None:
        """Discard the increment."""

    def set_gauge(self, name: str, value: Number) -> None:
        """Discard the measurement."""

    def annotate(self, **tags: Any) -> None:
        """Discard the tags."""

    def elapsed(self) -> float:
        """Always 0.0 — nothing is timed while disabled."""
        return 0.0

    def __repr__(self):
        return "NullSpan()"


class NullCounter:
    """Counter handle of :class:`NullSpan`: increments are discarded."""

    __slots__ = ()

    def inc(self, n: Number = 1) -> None:
        """Discard the increment."""

    @property
    def value(self) -> Number:
        """Always 0."""
        return 0


class NullGauge:
    """Gauge handle of :class:`NullSpan`: measurements are discarded."""

    __slots__ = ()

    def set(self, value: Number) -> None:
        """Discard the measurement."""

    @property
    def value(self) -> Optional[Number]:
        """Always None."""
        return None


#: The shared disabled-path singletons.
NULL_SPAN = NullSpan()
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()


def span(name: str, **tags: Any) -> Union[Span, NullSpan]:
    """Open a span (the one instrumentation entry point).

    Returns a live :class:`Span` when the layer is enabled and the
    shared :data:`NULL_SPAN` otherwise, so call sites read identically
    either way::

        with obs.span("sat.solve", net=net.name) as sp:
            ...
            sp.add("conflicts", delta)
    """
    if not _enabled:
        return NULL_SPAN
    return Span(name, **tags)


def add(name: str, n: Number = 1) -> None:
    """Increment counter ``name`` on the innermost active span.

    A no-op when the layer is disabled or no span is active — used by
    helpers (e.g. the BDD fixpoint loop) that observe work without
    owning a span.
    """
    if _enabled and _stack:
        _stack[-1].add(name, n)


def set_gauge(name: str, value: Number) -> None:
    """Set gauge ``name`` on the innermost active span (no-op when
    disabled or outside any span)."""
    if _enabled and _stack:
        _stack[-1].set_gauge(name, value)


class tracing:
    """Context manager: arm the layer with a fresh memory sink attached.

    ``with tracing() as sink:`` enables the layer, registers (and on
    exit removes) a :class:`~repro.obs.sinks.MemorySink` — or any sink
    passed explicitly — and restores the previous enabled state::

        with obs.tracing() as sink:
            build_reachability_graph(net)
        assert sink.counter_total("states")

    The workhorse of the test suite and the CLI's ``--stats`` path.
    """

    def __init__(self, sink: Optional[Any] = None):
        if sink is None:
            from .sinks import MemorySink

            sink = MemorySink()
        self.sink = sink
        self._was_enabled = False

    def __enter__(self) -> Any:
        """Enable the layer, attach the sink, return the sink."""
        self._was_enabled = _enabled
        enable(True)
        add_sink(self.sink)
        return self.sink

    def __exit__(self, exc_type, exc, tb) -> None:
        """Detach the sink and restore the previous enabled state."""
        remove_sink(self.sink)
        enable(self._was_enabled)
        return None
