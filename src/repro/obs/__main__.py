"""Trace-schema lint: ``python -m repro.obs TRACE.jsonl [...]``.

Module-entry-point alias of ``repro obs lint`` — both run the same
:func:`main` below.  Validates each file against the ``repro-trace/1``
JSONL schema (:func:`repro.obs.schema.validate_trace_file`) and prints
every problem found.  Exit code 0 iff all files are valid — the CI
trace lint step fails the build on malformed instrumentation output.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from .schema import validate_trace_file


def main(argv: Optional[List[str]] = None) -> int:
    """Lint the given JSONL trace files; returns the exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs TRACE.jsonl [TRACE.jsonl ...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        problems = validate_trace_file(path)
        if problems:
            failed = True
            for p in problems:
                print("%s: %s" % (path, p))
        else:
            print("%s: ok" % path)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
