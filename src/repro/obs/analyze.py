"""Turn recorded telemetry into decisions: reports, diffs, regressions.

Everything :mod:`repro.obs` writes — JSONL traces (``repro-trace/1``)
and benchmark artifacts (``repro-bench/*``) — is consumed here, behind
the ``repro obs`` CLI family:

* :func:`render_report` — reconstruct the span tree of a trace and
  render it as a text flamegraph: one line per span with total and
  *self* time (total minus direct span children), percent of its root,
  and a proportional bar; heartbeat events are folded into a per-parent
  summary line.
* :func:`render_diff` — two traces side by side, aggregated per span
  name: call counts, total seconds and the delta, largest movers first.
* :func:`compare_bench` — ``BENCH_<suite>.json`` documents against the
  committed ``benchmarks/baselines.json``, with noise-aware thresholds:
  a benchmark regresses only when its mean exceeds the baseline mean by
  more than ``max(rel_tol · base, sigma · σ_combined, min_abs_s)``, so
  recorded stddev — not wishful thinking — sets the bar.
* :func:`make_baseline` — distil benchmark documents into a new
  baseline (``repro-bench-baseline/1``), the thing CI compares against.

Span trees are rebuilt from *intervals* (``start_s`` + ``duration_s``),
not from record order: merged traces interleave parent-side and
worker-side records whose sequence numbers reflect arrival, while all
timestamps share one CLOCK_MONOTONIC axis (see :mod:`repro.obs.remote`)
— containment is the ground truth.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence

from .schema import (validate_baseline, validate_bench_report,
                     validate_trace_record)
from .sinks import MemorySink
from . import sinks as _sinks

Record = Dict[str, Any]

#: Interval-containment slack (seconds) for tree reconstruction: spans
#: on one monotonic clock nest exactly; the epsilon only absorbs float
#: rounding in serialised timestamps.
EPS_S = 1e-6

#: Default relative regression threshold (fraction of the baseline mean).
DEFAULT_REL_TOL = 0.15

#: Default noise threshold in combined standard deviations.
DEFAULT_SIGMA = 3.0

#: Absolute floor (seconds) below which mean movements never count.
DEFAULT_MIN_ABS_S = 0.001


def read_trace(path: str) -> List[Record]:
    """Parse a JSONL trace file into a list of records.

    Raises ``ValueError`` naming the offending line for non-JSON input;
    schema problems are the lint's job (``repro obs lint``), not this
    loader's.
    """
    records: List[Record] = []
    with open(path) as fp:
        for number, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                raise ValueError("%s:%d: blank line in trace" % (path, number))
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError("%s:%d: not JSON (%s)" % (path, number, exc))
            if not isinstance(record, dict):
                raise ValueError("%s:%d: record is not an object"
                                 % (path, number))
            records.append(record)
    return records


class SpanNode:
    """One span (or event) of a reconstructed trace tree."""

    __slots__ = ("record", "children")

    def __init__(self, record: Record):
        self.record = record
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        """The span name."""
        return self.record.get("name", "?")

    @property
    def start_s(self) -> float:
        """Start instant on the trace's time axis."""
        return float(self.record.get("start_s", 0.0))

    @property
    def duration_s(self) -> float:
        """Total (wall-clock) duration; 0 for events."""
        return float(self.record.get("duration_s", 0.0))

    @property
    def end_s(self) -> float:
        """End instant on the trace's time axis."""
        return self.start_s + self.duration_s

    @property
    def is_event(self) -> bool:
        """True for instantaneous records (heartbeats)."""
        return self.record.get("event") != "span"

    def self_s(self) -> float:
        """Self time: duration minus the direct span children's."""
        covered = sum(c.duration_s for c in self.children if not c.is_event)
        return max(0.0, self.duration_s - covered)

    def walk(self):
        """Yield (depth, node) over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def __repr__(self):
        return "SpanNode(%r, %d children)" % (self.name, len(self.children))


def _contains(parent: SpanNode, node: SpanNode) -> bool:
    """True when ``node``'s interval nests inside ``parent``'s."""
    return (node.start_s >= parent.start_s - EPS_S
            and node.end_s <= parent.end_s + EPS_S)


def _deeper(parent: SpanNode, node: SpanNode) -> bool:
    """True when the records' ``depth`` fields permit nesting.

    Merged portfolio traces contain racing sibling spans whose intervals
    genuinely overlap (a cancelled loser's span covers the whole race,
    including the winner's) — interval containment alone would nest
    them.  The recorded lexical depth breaks the tie: a child must be
    strictly deeper than its parent.  Records without an integer depth
    fall back to containment only.
    """
    pd, nd = parent.record.get("depth"), node.record.get("depth")
    if isinstance(pd, int) and isinstance(nd, int):
        return nd > pd
    return True


def build_tree(records: Sequence[Record]) -> List[SpanNode]:
    """Reconstruct the span forest of a trace by interval containment.

    Records are ordered by start time (ties: longer span first, so a
    parent precedes the children sharing its start instant) and each is
    attached to the innermost already-placed span whose interval
    contains it *and* whose recorded depth is strictly smaller
    (:func:`_deeper` — racing siblings in a merged trace may overlap in
    time but never in depth).  Returns the root nodes in start order.
    """
    ordered = sorted((SpanNode(r) for r in records),
                     key=lambda n: (n.start_s, -n.duration_s,
                                    n.record.get("seq", 0)))
    roots: List[SpanNode] = []
    placed: List[SpanNode] = []
    for node in ordered:
        parent: Optional[SpanNode] = None
        # innermost candidate = latest-starting (then shortest) placed
        # span, which is the last match in start order
        for cand in reversed(placed):
            if _contains(cand, node) and _deeper(cand, node):
                parent = cand
                break
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
        if not node.is_event:
            placed.append(node)
    return roots


def _tag_suffix(record: Record) -> str:
    """The most informative tags of a record, rendered compactly."""
    tags = record.get("tags") or {}
    keys = ("slot", "engine", "method", "attempt", "verdict", "outcome",
            "net", "query", "result", "error")
    parts = ["%s=%s" % (k, tags[k]) for k in keys if k in tags]
    if record.get("error") and "error" not in tags:
        parts.append("error=%s" % record["error"])
    return " [%s]" % " ".join(parts) if parts else ""


def _heartbeat_line(indent: str, beats: List[SpanNode]) -> str:
    """One summary line for a parent's heartbeat children."""
    last = beats[-1].record.get("gauges") or {}
    suffix = ""
    if last:
        suffix = ", last: " + _sinks._format_values(last)
    return "%9s %9s %6s  %s* %d heartbeat%s%s" % (
        "", "", "", indent, len(beats), "s" if len(beats) != 1 else "",
        suffix)


def render_report(records: Sequence[Record], width: int = 30) -> str:
    """The text flamegraph of a trace: one line per span.

    Columns: total seconds, self seconds (total minus direct span
    children), percent of the enclosing root, then an indented name with
    a proportional bar.  Heartbeat runs collapse to a summary line under
    their parent.  An aggregate per-span-name table
    (:func:`repro.obs.sinks.report`) follows the tree.
    """
    spans = [r for r in records if r.get("event") == "span"]
    if not spans:
        return "(no spans in trace)"
    roots = build_tree(records)
    lines = ["%9s %9s %6s  %s" % ("total(s)", "self(s)", "root%", "span")]
    for root in roots:
        if root.is_event:
            continue
        scale = root.duration_s or 1.0
        for depth, node in root.walk():
            if node.is_event:
                continue
            indent = "  " * depth
            share = node.duration_s / scale
            bar = "#" * max(1, int(round(share * 20)))
            lines.append("%9.4f %9.4f %5.1f%%  %s%s %s%s" % (
                node.duration_s, node.self_s(), share * 100.0, indent,
                node.name, bar, _tag_suffix(node.record)))
            beats = [c for c in node.children if c.is_event]
            if beats:
                lines.append(_heartbeat_line(indent + "  ", beats))
    lines.append("")
    lines.append(_sinks.report(spans))
    return "\n".join(lines)


def _totals(records: Sequence[Record]) -> Dict[str, Dict[str, float]]:
    """Per-span-name calls and total seconds of a trace."""
    sink = MemorySink()
    for r in records:
        if r.get("event") == "span":
            sink.handle(r)
    return {name: {"calls": agg["calls"], "time_s": agg["time_s"]}
            for name, agg in sink.stats().items()}


def render_diff(a_records: Sequence[Record],
                b_records: Sequence[Record],
                a_label: str = "a", b_label: str = "b") -> str:
    """Two traces compared per span name, largest time movers first.

    Shows call counts and total seconds from each trace plus the
    absolute and relative delta; spans present in only one trace show a
    ``-`` on the other side.
    """
    a = _totals(a_records)
    b = _totals(b_records)
    names = sorted(set(a) | set(b),
                   key=lambda n: -abs(b.get(n, {}).get("time_s", 0.0)
                                      - a.get(n, {}).get("time_s", 0.0)))
    lines = ["%-32s %7s %7s %10s %10s %10s %8s" % (
        "span", "calls:" + a_label, "calls:" + b_label,
        a_label + "(s)", b_label + "(s)", "delta(s)", "delta")]
    for name in names:
        ra, rb = a.get(name), b.get(name)
        ta = ra["time_s"] if ra else 0.0
        tb = rb["time_s"] if rb else 0.0
        delta = tb - ta
        pct = "%+7.1f%%" % (100.0 * delta / ta) if ta > 0 else "     new" \
            if rb and not ra else "    gone" if ra and not rb else "       -"
        lines.append("%-32s %7s %7s %10.4f %10.4f %+10.4f %8s" % (
            name,
            ra["calls"] if ra else "-", rb["calls"] if rb else "-",
            ta, tb, delta, pct))
    return "\n".join(lines)


def coverage(records: Sequence[Record], name: str = "portfolio.race"
             ) -> float:
    """Fraction of a span's wall-clock covered by its child spans.

    Finds the first span named ``name`` in the reconstructed tree and
    measures the union of its direct span children's intervals (clipped
    to the parent) against the parent's duration — the "no black hole"
    figure: for a merged portfolio trace, how much of the race is
    attributed to named worker-side (or parent-side probe) spans.
    Returns 0.0 when the span is missing or has zero duration.
    """
    target: Optional[SpanNode] = None
    for root in build_tree(records):
        for _depth, node in root.walk():
            if node.name == name and not node.is_event:
                target = node
                break
        if target is not None:
            break
    if target is None or target.duration_s <= 0:
        return 0.0
    intervals = sorted(
        (max(c.start_s, target.start_s), min(c.end_s, target.end_s))
        for c in target.children if not c.is_event)
    covered = 0.0
    cursor = target.start_s
    for lo, hi in intervals:
        lo = max(lo, cursor)
        if hi > lo:
            covered += hi - lo
            cursor = hi
    return covered / target.duration_s


# -- benchmark regression ------------------------------------------------ #

def load_bench_file(path: str) -> Record:
    """Load and validate one ``BENCH_<suite>.json`` document."""
    with open(path) as fp:
        doc = json.load(fp)
    problems = validate_bench_report(doc)
    if problems:
        raise ValueError("%s: %s" % (path, "; ".join(problems)))
    return doc


def load_baseline(path: str) -> Record:
    """Load and validate a ``benchmarks/baselines.json`` document."""
    with open(path) as fp:
        doc = json.load(fp)
    problems = validate_baseline(doc)
    if problems:
        raise ValueError("%s: %s" % (path, "; ".join(problems)))
    return doc


def make_baseline(docs: Sequence[Record]) -> Record:
    """Distil benchmark documents into a ``repro-bench-baseline/1`` doc.

    Later documents win on suite collisions (pass files oldest-first
    when merging histories).
    """
    suites: Dict[str, Dict[str, Any]] = {}
    for doc in docs:
        rows = suites.setdefault(doc["suite"], {})
        for row in doc.get("benchmarks", []):
            entry = {"mean_s": row["mean_s"], "stddev_s": row["stddev_s"],
                     "rounds": row["rounds"]}
            if row.get("group") is not None:
                entry["group"] = row["group"]
            rows[row["name"]] = entry
    from .schema import BASELINE_SCHEMA

    return {"schema": BASELINE_SCHEMA, "suites": suites}


def compare_bench(docs: Sequence[Record], baseline: Record,
                  rel_tol: float = DEFAULT_REL_TOL,
                  sigma: float = DEFAULT_SIGMA,
                  min_abs_s: float = DEFAULT_MIN_ABS_S
                  ) -> List[Dict[str, Any]]:
    """Judge benchmark documents against a baseline, noise-aware.

    Returns one entry per benchmark row with ``status`` in ``"ok"``,
    ``"regression"``, ``"improvement"`` or ``"new"`` (no baseline to
    compare against).  The margin around the baseline mean is
    ``max(rel_tol · base_mean, sigma · sqrt(σ_base² + σ_new²),
    min_abs_s)`` — a mean must move beyond recorded noise *and* beyond
    the relative/absolute floors to count in either direction.
    """
    suites = baseline.get("suites", {})
    entries: List[Dict[str, Any]] = []
    for doc in docs:
        suite = doc.get("suite", "?")
        base_rows = suites.get(suite, {})
        for row in doc.get("benchmarks", []):
            name = row["name"]
            entry: Dict[str, Any] = {
                "suite": suite, "name": name, "mean_s": row["mean_s"],
                "stddev_s": row["stddev_s"],
            }
            base = base_rows.get(name)
            if base is None:
                entry.update(status="new", base_mean_s=None, margin_s=None)
            else:
                margin = max(rel_tol * base["mean_s"],
                             sigma * math.sqrt(base["stddev_s"] ** 2
                                               + row["stddev_s"] ** 2),
                             min_abs_s)
                if row["mean_s"] > base["mean_s"] + margin:
                    status = "regression"
                elif row["mean_s"] < base["mean_s"] - margin:
                    status = "improvement"
                else:
                    status = "ok"
                entry.update(status=status, base_mean_s=base["mean_s"],
                             margin_s=margin)
            entries.append(entry)
    return entries


def render_regress(entries: Sequence[Dict[str, Any]]) -> str:
    """The regression table for :func:`compare_bench` entries, worst
    first, with a one-line verdict at the bottom."""
    order = {"regression": 0, "improvement": 1, "new": 2, "ok": 3}
    ranked = sorted(entries, key=lambda e: (order.get(e["status"], 9),
                                            e["suite"], e["name"]))
    lines = ["%-52s %11s %11s %11s  %s" % (
        "benchmark", "base(s)", "now(s)", "margin(s)", "status")]
    for e in ranked:
        base = "%11.6f" % e["base_mean_s"] if e["base_mean_s"] is not None \
            else "          -"
        margin = "%11.6f" % e["margin_s"] if e["margin_s"] is not None \
            else "          -"
        lines.append("%-52s %s %11.6f %s  %s" % (
            "%s::%s" % (e["suite"], e["name"]), base, e["mean_s"], margin,
            e["status"]))
    regressions = [e for e in ranked if e["status"] == "regression"]
    lines.append("")
    if regressions:
        lines.append("REGRESSION: %d of %d benchmarks slower than baseline"
                     " beyond noise" % (len(regressions), len(ranked)))
    else:
        lines.append("ok: %d benchmarks within thresholds" % len(ranked))
    return "\n".join(lines)


def lint_records(records: Sequence[Record]) -> List[str]:
    """Schema problems of in-memory trace records (empty == valid)."""
    problems: List[str] = []
    for i, record in enumerate(records):
        problems.extend("record %d: %s" % (i, p)
                        for p in validate_trace_record(record))
    return problems
