"""Where completed span records go: memory, JSONL, or a human table.

Three consumers cover the subsystem's use cases:

* :class:`MemorySink` — an in-process list of records with aggregation
  helpers; what the test suite and the CLI's ``--stats`` flag use.
* :class:`JsonlSink` — one JSON document per line, written as spans
  close (children before parents), following the ``repro-trace/1``
  schema of :mod:`repro.obs.schema`; what ``--trace FILE`` writes and
  what the CI trace lint validates.
* :func:`report` — a fixed-width table aggregating records by span
  name; the human-readable run report.

A sink is anything with a ``handle(record)`` method — the records are
plain dicts, so custom sinks need no imports from this package.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

Record = Dict[str, Any]


class MemorySink:
    """Collects span records in a list, with aggregation helpers."""

    def __init__(self):
        self.records: List[Record] = []

    def handle(self, record: Record) -> None:
        """Store one completed span record."""
        self.records.append(record)

    def clear(self) -> None:
        """Drop every stored record."""
        del self.records[:]

    def __len__(self) -> int:
        return len(self.records)

    def spans(self, name: Optional[str] = None) -> List[Record]:
        """All records, or just those whose span name equals ``name``."""
        if name is None:
            return list(self.records)
        return [r for r in self.records if r["name"] == name]

    def counter_total(self, counter: str,
                      span: Optional[str] = None) -> Union[int, float]:
        """Sum of one counter across all records (optionally one span
        name) — 0 if the counter never fired."""
        total = 0
        for r in self.records:
            if span is not None and r["name"] != span:
                continue
            total += r["counters"].get(counter, 0)
        return total

    def last_gauge(self, gauge: str,
                   span: Optional[str] = None) -> Optional[Union[int, float]]:
        """Most recent value of a gauge (optionally per span name)."""
        value = None
        for r in self.records:
            if span is not None and r["name"] != span:
                continue
            if gauge in r["gauges"]:
                value = r["gauges"][gauge]
        return value

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name aggregate: calls, total time, summed counters
        and last-wins gauges — the ``stats`` object of the CLI's
        machine-readable run report (stable keys, see
        :data:`repro.obs.schema.REPORT_SCHEMA`)."""
        out: Dict[str, Dict[str, Any]] = {}
        for r in self.records:
            agg = out.setdefault(r["name"], {
                "calls": 0, "time_s": 0.0, "counters": {}, "gauges": {},
            })
            agg["calls"] += 1
            agg["time_s"] += r["duration_s"]
            for k, v in r["counters"].items():
                agg["counters"][k] = agg["counters"].get(k, 0) + v
            agg["gauges"].update(r["gauges"])
        return out

    def __repr__(self):
        return "MemorySink(%d records)" % len(self.records)


class JsonlSink:
    """Streams every span record as one JSON line to a file or stream.

    Accepts a path (opened for writing, closed by :meth:`close`) or any
    writable text stream (left open).  Keys are sorted so the output is
    byte-stable for identical runs.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            # line-buffered: every record reaches the OS as it is
            # written, so a killed or crashed process leaves a complete
            # prefix on disk rather than whatever happened to fill a
            # block buffer
            self._fp: IO[str] = open(target, "w", buffering=1)
            self._owns = True
        else:
            self._fp = target
            self._owns = False

    def handle(self, record: Record) -> None:
        """Serialise one record as a JSON line (flushed immediately, so
        a crashed run still leaves a valid prefix)."""
        self._fp.write(json.dumps(record, sort_keys=True) + "\n")
        self._fp.flush()

    def close(self) -> None:
        """Close the underlying file if this sink opened it."""
        if self._owns:
            self._fp.close()

    def __enter__(self) -> "JsonlSink":
        """Support ``with JsonlSink(path) as sink:`` usage."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close on scope exit."""
        self.close()

    def __repr__(self):
        return "JsonlSink(%r)" % getattr(self._fp, "name", self._fp)


def _format_values(values: Dict[str, Any]) -> str:
    """``k=v`` pairs in sorted key order, floats compacted."""
    parts = []
    for k in sorted(values):
        v = values[k]
        if isinstance(v, float):
            parts.append("%s=%.4g" % (k, v))
        else:
            parts.append("%s=%s" % (k, v))
    return " ".join(parts)


def report(source: Union[MemorySink, List[Record]]) -> str:
    """A fixed-width human-readable table of a run's spans.

    Aggregates records by span name (calls, total seconds, summed
    counters, last gauges), ordered by total time descending — the thing
    ``repro ... --stats`` prints::

        span                        calls   time(s)  observations
        engine.build                    1    0.0123  arcs=44 states=14 ...
    """
    if isinstance(source, MemorySink):
        stats = source.stats()
    else:
        sink = MemorySink()
        for r in source:
            sink.handle(r)
        stats = sink.stats()
    if not stats:
        return "(no spans recorded)"
    lines = ["%-32s %5s %9s  %s" % ("span", "calls", "time(s)",
                                    "observations")]
    for name in sorted(stats, key=lambda n: -stats[n]["time_s"]):
        agg = stats[name]
        values = dict(agg["counters"])
        values.update(agg["gauges"])
        lines.append("%-32s %5d %9.4f  %s" % (
            name, agg["calls"], agg["time_s"], _format_values(values)))
    return "\n".join(lines)
