"""The machine-readable schemas and their validators.

Two document shapes leave the subsystem, both versioned by a literal
``schema`` tag so downstream consumers (the portfolio scheduler, the CI
trace lint, external tooling) can reject what they don't understand:

**Trace records** (``repro-trace/1``) — one JSON object per line of a
``--trace`` JSONL file, one per completed span::

    {"schema": "repro-trace/1", "event": "span", "name": "engine.build",
     "seq": 3, "depth": 0, "parent": null,
     "start_s": 0.0012, "duration_s": 0.0401,
     "tags": {"engine": "compiled", "net": "muller_pipeline_6"},
     "counters": {"states": 1304, "arcs": 3968},
     "gauges": {"states_per_sec": 32500.1}}

Worker heartbeats (:mod:`repro.obs.remote`) share the record shape with
``"event": "heartbeat"`` and ``duration_s`` 0 — an instantaneous
liveness/progress sample rather than a timed interval.  Both events are
``repro-trace/1``; the addition is backward compatible because every
field keeps its meaning.

**Run reports** (``repro-run-report/1``) — the single document printed
by ``repro sat-check --json`` / ``repro bdd-check --json``: command,
verdict, result details, and the per-span aggregate produced by
:meth:`repro.obs.sinks.MemorySink.stats`.

**Benchmark reports** (``repro-bench/2``) — the ``BENCH_<suite>.json``
document written by ``benchmarks/conftest.py`` after a timed run: suite
name, a ``meta`` block aligning the run with history (git commit, UTC
timestamp, python and platform), and one row per benchmark with mean,
stddev and round count.  Version 1 (no ``meta``) is still accepted by
the validator so older artifacts keep linting clean.

**Bench baselines** (``repro-bench-baseline/1``) — the committed
``benchmarks/baselines.json`` consumed by ``repro obs regress``: per
suite, per benchmark, the reference mean/stddev/rounds.

The validators return a list of human-readable problems (empty == valid)
rather than raising, so the CI lint can report every defect of a file in
one pass.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Version tag carried by every JSONL trace record.
TRACE_SCHEMA = "repro-trace/1"

#: Version tag carried by every ``--json`` run report.
REPORT_SCHEMA = "repro-run-report/1"

#: Version tag carried by every ``BENCH_<suite>.json`` benchmark record.
BENCH_SCHEMA = "repro-bench/2"

#: Every accepted benchmark-report version (v1 predates the meta block).
BENCH_SCHEMAS = ("repro-bench/1", "repro-bench/2")

#: Version tag of the committed ``benchmarks/baselines.json``.
BASELINE_SCHEMA = "repro-bench-baseline/1"

#: Trace record event kinds: timed spans and instantaneous heartbeats.
TRACE_EVENTS = ("span", "heartbeat")

_SCALAR = (str, int, float, bool, type(None))


def _check_numbers(problems: List[str], where: str, values: Any) -> None:
    """Append a problem per non-numeric (or bool) metric value."""
    if not isinstance(values, dict):
        problems.append("%s: expected an object, got %r" % (where, values))
        return
    for k, v in values.items():
        if not isinstance(k, str):
            problems.append("%s: non-string key %r" % (where, k))
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            problems.append("%s[%r]: non-numeric value %r" % (where, k, v))


def validate_trace_record(record: Any) -> List[str]:
    """Problems of one trace record against ``repro-trace/1`` (empty
    list == the record is valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object: %r" % (record,)]
    if record.get("schema") != TRACE_SCHEMA:
        problems.append("schema: expected %r, got %r"
                        % (TRACE_SCHEMA, record.get("schema")))
    if record.get("event") not in TRACE_EVENTS:
        problems.append("event: expected one of %s, got %r"
                        % ("/".join(repr(e) for e in TRACE_EVENTS),
                           record.get("event")))
    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name: expected a non-empty string, got %r" % (name,))
    for key in ("seq", "depth"):
        v = record.get(key)
        if isinstance(v, bool) or not isinstance(v, int) or v < 0:
            problems.append("%s: expected a non-negative int, got %r"
                            % (key, v))
    parent = record.get("parent", "missing")
    if parent is not None and not isinstance(parent, str):
        problems.append("parent: expected a string or null, got %r"
                        % (parent,))
    for key in ("start_s", "duration_s"):
        v = record.get(key)
        if isinstance(v, bool) or not isinstance(v, (int, float)) or v < 0:
            problems.append("%s: expected a non-negative number, got %r"
                            % (key, v))
    tags = record.get("tags")
    if not isinstance(tags, dict):
        problems.append("tags: expected an object, got %r" % (tags,))
    else:
        for k, v in tags.items():
            if not isinstance(k, str):
                problems.append("tags: non-string key %r" % (k,))
            if not isinstance(v, _SCALAR):
                problems.append("tags[%r]: non-scalar value %r" % (k, v))
    _check_numbers(problems, "counters", record.get("counters"))
    _check_numbers(problems, "gauges", record.get("gauges"))
    error = record.get("error")
    if error is not None and not isinstance(error, str):
        problems.append("error: expected a string, got %r" % (error,))
    return problems


def validate_trace_text(text: str) -> List[str]:
    """Problems of a whole JSONL trace, prefixed ``line N:``.

    Blank lines are rejected (a truncated write must not lint clean);
    an empty file is valid (a run with tracing enabled but no spans).
    """
    problems: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            problems.append("line %d: blank line" % number)
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append("line %d: not JSON (%s)" % (number, exc))
            continue
        problems.extend("line %d: %s" % (number, p)
                        for p in validate_trace_record(record))
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Problems of the JSONL trace at ``path`` (empty list == valid)."""
    with open(path) as f:
        return validate_trace_text(f.read())


def validate_run_report(report: Any) -> List[str]:
    """Problems of one ``--json`` run report against
    ``repro-run-report/1`` (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object: %r" % (report,)]
    if report.get("schema") != REPORT_SCHEMA:
        problems.append("schema: expected %r, got %r"
                        % (REPORT_SCHEMA, report.get("schema")))
    for key in ("command", "spec", "verdict"):
        v = report.get(key)
        if not isinstance(v, str) or not v:
            problems.append("%s: expected a non-empty string, got %r"
                            % (key, v))
    code = report.get("exit_code")
    if isinstance(code, bool) or not isinstance(code, int):
        problems.append("exit_code: expected an int, got %r" % (code,))
    if not isinstance(report.get("details"), dict):
        problems.append("details: expected an object, got %r"
                        % (report.get("details"),))
    stats = report.get("stats")
    if not isinstance(stats, dict):
        problems.append("stats: expected an object, got %r" % (stats,))
        return problems
    for name, agg in stats.items():
        where = "stats[%r]" % name
        if not isinstance(agg, dict):
            problems.append("%s: expected an object, got %r" % (where, agg))
            continue
        calls = agg.get("calls")
        if isinstance(calls, bool) or not isinstance(calls, int) or calls < 1:
            problems.append("%s.calls: expected a positive int, got %r"
                            % (where, calls))
        time_s = agg.get("time_s")
        if isinstance(time_s, bool) or not isinstance(time_s, (int, float)) \
                or time_s < 0:
            problems.append("%s.time_s: expected a non-negative number,"
                            " got %r" % (where, time_s))
        _check_numbers(problems, where + ".counters", agg.get("counters"))
        _check_numbers(problems, where + ".gauges", agg.get("gauges"))
    return problems


#: String fields every ``repro-bench/2`` meta block must carry.
BENCH_META_KEYS = ("git_commit", "timestamp_utc", "python", "platform")


def _check_bench_row(problems: List[str], where: str, row: Any) -> None:
    """Append the problems of one benchmark row."""
    if not isinstance(row, dict):
        problems.append("%s: expected an object, got %r" % (where, row))
        return
    name = row.get("name")
    if not isinstance(name, str) or not name:
        problems.append("%s.name: expected a non-empty string, got %r"
                        % (where, name))
    group = row.get("group", "missing")
    if group is not None and not isinstance(group, str):
        problems.append("%s.group: expected a string or null, got %r"
                        % (where, group))
    for key in ("mean_s", "stddev_s"):
        v = row.get(key)
        if isinstance(v, bool) or not isinstance(v, (int, float)) or v < 0:
            problems.append("%s.%s: expected a non-negative number, got %r"
                            % (where, key, v))
    rounds = row.get("rounds")
    if isinstance(rounds, bool) or not isinstance(rounds, int) or rounds < 1:
        problems.append("%s.rounds: expected a positive int, got %r"
                        % (where, rounds))


def validate_bench_report(report: Any) -> List[str]:
    """Problems of one ``BENCH_<suite>.json`` document (empty == valid).

    Accepts every version in :data:`BENCH_SCHEMAS`; the ``meta`` block
    (git commit, UTC timestamp, python, platform) is required from
    ``repro-bench/2`` on.
    """
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object: %r" % (report,)]
    schema = report.get("schema")
    if schema not in BENCH_SCHEMAS:
        problems.append("schema: expected one of %s, got %r"
                        % ("/".join(repr(s) for s in BENCH_SCHEMAS), schema))
    suite = report.get("suite")
    if not isinstance(suite, str) or not suite:
        problems.append("suite: expected a non-empty string, got %r"
                        % (suite,))
    rows = report.get("benchmarks")
    if not isinstance(rows, list):
        problems.append("benchmarks: expected a list, got %r" % (rows,))
    else:
        for i, row in enumerate(rows):
            _check_bench_row(problems, "benchmarks[%d]" % i, row)
    if schema == BENCH_SCHEMA:
        meta = report.get("meta")
        if not isinstance(meta, dict):
            problems.append("meta: expected an object, got %r" % (meta,))
        else:
            for key in BENCH_META_KEYS:
                v = meta.get(key)
                if not isinstance(v, str) or not v:
                    problems.append(
                        "meta.%s: expected a non-empty string, got %r"
                        % (key, v))
    return problems


def validate_baseline(doc: Any) -> List[str]:
    """Problems of a ``benchmarks/baselines.json`` document
    (``repro-bench-baseline/1``; empty list == valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["baseline is not an object: %r" % (doc,)]
    if doc.get("schema") != BASELINE_SCHEMA:
        problems.append("schema: expected %r, got %r"
                        % (BASELINE_SCHEMA, doc.get("schema")))
    suites = doc.get("suites")
    if not isinstance(suites, dict):
        problems.append("suites: expected an object, got %r" % (suites,))
        return problems
    for suite, rows in suites.items():
        if not isinstance(suite, str) or not suite:
            problems.append("suites: non-string suite key %r" % (suite,))
        if not isinstance(rows, dict):
            problems.append("suites[%r]: expected an object, got %r"
                            % (suite, rows))
            continue
        for name, row in rows.items():
            where = "suites[%r][%r]" % (suite, name)
            if not isinstance(row, dict):
                problems.append("%s: expected an object, got %r"
                                % (where, row))
                continue
            _check_bench_row(problems, where,
                             dict(row, name=name, group=row.get("group")))
    return problems
