"""The machine-readable schemas and their validators.

Two document shapes leave the subsystem, both versioned by a literal
``schema`` tag so downstream consumers (the portfolio scheduler, the CI
trace lint, external tooling) can reject what they don't understand:

**Trace records** (``repro-trace/1``) — one JSON object per line of a
``--trace`` JSONL file, one per completed span::

    {"schema": "repro-trace/1", "event": "span", "name": "engine.build",
     "seq": 3, "depth": 0, "parent": null,
     "start_s": 0.0012, "duration_s": 0.0401,
     "tags": {"engine": "compiled", "net": "muller_pipeline_6"},
     "counters": {"states": 1304, "arcs": 3968},
     "gauges": {"states_per_sec": 32500.1}}

**Run reports** (``repro-run-report/1``) — the single document printed
by ``repro sat-check --json`` / ``repro bdd-check --json``: command,
verdict, result details, and the per-span aggregate produced by
:meth:`repro.obs.sinks.MemorySink.stats`.

The validators return a list of human-readable problems (empty == valid)
rather than raising, so the CI lint can report every defect of a file in
one pass.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Version tag carried by every JSONL trace record.
TRACE_SCHEMA = "repro-trace/1"

#: Version tag carried by every ``--json`` run report.
REPORT_SCHEMA = "repro-run-report/1"

#: Version tag carried by every ``BENCH_<suite>.json`` benchmark record.
BENCH_SCHEMA = "repro-bench/1"

_SCALAR = (str, int, float, bool, type(None))


def _check_numbers(problems: List[str], where: str, values: Any) -> None:
    """Append a problem per non-numeric (or bool) metric value."""
    if not isinstance(values, dict):
        problems.append("%s: expected an object, got %r" % (where, values))
        return
    for k, v in values.items():
        if not isinstance(k, str):
            problems.append("%s: non-string key %r" % (where, k))
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            problems.append("%s[%r]: non-numeric value %r" % (where, k, v))


def validate_trace_record(record: Any) -> List[str]:
    """Problems of one trace record against ``repro-trace/1`` (empty
    list == the record is valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object: %r" % (record,)]
    if record.get("schema") != TRACE_SCHEMA:
        problems.append("schema: expected %r, got %r"
                        % (TRACE_SCHEMA, record.get("schema")))
    if record.get("event") != "span":
        problems.append("event: expected 'span', got %r"
                        % (record.get("event"),))
    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name: expected a non-empty string, got %r" % (name,))
    for key in ("seq", "depth"):
        v = record.get(key)
        if isinstance(v, bool) or not isinstance(v, int) or v < 0:
            problems.append("%s: expected a non-negative int, got %r"
                            % (key, v))
    parent = record.get("parent", "missing")
    if parent is not None and not isinstance(parent, str):
        problems.append("parent: expected a string or null, got %r"
                        % (parent,))
    for key in ("start_s", "duration_s"):
        v = record.get(key)
        if isinstance(v, bool) or not isinstance(v, (int, float)) or v < 0:
            problems.append("%s: expected a non-negative number, got %r"
                            % (key, v))
    tags = record.get("tags")
    if not isinstance(tags, dict):
        problems.append("tags: expected an object, got %r" % (tags,))
    else:
        for k, v in tags.items():
            if not isinstance(k, str):
                problems.append("tags: non-string key %r" % (k,))
            if not isinstance(v, _SCALAR):
                problems.append("tags[%r]: non-scalar value %r" % (k, v))
    _check_numbers(problems, "counters", record.get("counters"))
    _check_numbers(problems, "gauges", record.get("gauges"))
    error = record.get("error")
    if error is not None and not isinstance(error, str):
        problems.append("error: expected a string, got %r" % (error,))
    return problems


def validate_trace_text(text: str) -> List[str]:
    """Problems of a whole JSONL trace, prefixed ``line N:``.

    Blank lines are rejected (a truncated write must not lint clean);
    an empty file is valid (a run with tracing enabled but no spans).
    """
    problems: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            problems.append("line %d: blank line" % number)
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append("line %d: not JSON (%s)" % (number, exc))
            continue
        problems.extend("line %d: %s" % (number, p)
                        for p in validate_trace_record(record))
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Problems of the JSONL trace at ``path`` (empty list == valid)."""
    with open(path) as f:
        return validate_trace_text(f.read())


def validate_run_report(report: Any) -> List[str]:
    """Problems of one ``--json`` run report against
    ``repro-run-report/1`` (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object: %r" % (report,)]
    if report.get("schema") != REPORT_SCHEMA:
        problems.append("schema: expected %r, got %r"
                        % (REPORT_SCHEMA, report.get("schema")))
    for key in ("command", "spec", "verdict"):
        v = report.get(key)
        if not isinstance(v, str) or not v:
            problems.append("%s: expected a non-empty string, got %r"
                            % (key, v))
    code = report.get("exit_code")
    if isinstance(code, bool) or not isinstance(code, int):
        problems.append("exit_code: expected an int, got %r" % (code,))
    if not isinstance(report.get("details"), dict):
        problems.append("details: expected an object, got %r"
                        % (report.get("details"),))
    stats = report.get("stats")
    if not isinstance(stats, dict):
        problems.append("stats: expected an object, got %r" % (stats,))
        return problems
    for name, agg in stats.items():
        where = "stats[%r]" % name
        if not isinstance(agg, dict):
            problems.append("%s: expected an object, got %r" % (where, agg))
            continue
        calls = agg.get("calls")
        if isinstance(calls, bool) or not isinstance(calls, int) or calls < 1:
            problems.append("%s.calls: expected a positive int, got %r"
                            % (where, calls))
        time_s = agg.get("time_s")
        if isinstance(time_s, bool) or not isinstance(time_s, (int, float)) \
                or time_s < 0:
            problems.append("%s.time_s: expected a non-negative number,"
                            " got %r" % (where, time_s))
        _check_numbers(problems, where + ".counters", agg.get("counters"))
        _check_numbers(problems, where + ".gauges", agg.get("gauges"))
    return problems
