"""repro.obs — zero-dependency instrumentation for the engine framework.

Every engine of the unified framework (``auto`` / ``compiled`` /
``naive`` / ``bdd`` / ``sat``) does measurable work — SAT conflicts and
decisions, BDD nodes and image iterations, explicit states and arcs,
reduction rules fired — but until this subsystem none of it was
surfaced.  ``repro.obs`` makes that work observable without giving up
the library's zero-dependency rule or its performance:

* **spans** (:func:`~repro.obs.core.span`) — nested, named,
  ``perf_counter``-timed context managers tagged with engine / query /
  net metadata;
* **counters and gauges** (:class:`~repro.obs.core.Counter`,
  :class:`~repro.obs.core.Gauge`) — typed observations attached to the
  active span;
* **sinks** (:mod:`repro.obs.sinks`) — an in-memory registry for tests
  and the CLI's ``--stats`` table, plus a JSONL trace writer for
  ``--trace FILE``;
* **schemas** (:mod:`repro.obs.schema`) — versioned, validated shapes
  for trace lines, the CLI's ``--json`` run reports, benchmark
  artifacts and the committed benchmark baseline;
* **remote** (:mod:`repro.obs.remote`) — cross-process propagation:
  portfolio workers stream their span trees over the result pipe and
  beat a heartbeat side channel; the supervisor merges both into the
  parent trace under the owning ``portfolio.race`` span;
* **analysis** (:mod:`repro.obs.analyze`) — the ``repro obs`` CLI
  family: span-tree reports (a text flamegraph), trace diffs, and
  noise-aware benchmark regression checks against
  ``benchmarks/baselines.json``.

The whole layer keys off one switch: the ``REPRO_TRACE`` environment
variable or :func:`~repro.obs.core.enable`.  Disabled (the default),
:func:`~repro.obs.core.span` returns a shared no-op object, so the
instrumented hot paths cost one function call each — measured at under
2 % on the engine benchmark matrix (``EXPERIMENTS.md``).

See ``docs/observability.md`` for the user guide.
"""

from .core import (
    ENV_VAR,
    Counter,
    Gauge,
    NullSpan,
    Span,
    active_sinks,
    add,
    add_sink,
    current,
    disable,
    enable,
    enabled,
    pop_progress,
    push_progress,
    remove_sink,
    reset,
    sample_progress,
    set_gauge,
    span,
    tracing,
)
from .schema import (
    BASELINE_SCHEMA,
    BENCH_SCHEMA,
    BENCH_SCHEMAS,
    REPORT_SCHEMA,
    TRACE_SCHEMA,
    validate_baseline,
    validate_bench_report,
    validate_run_report,
    validate_trace_file,
    validate_trace_record,
    validate_trace_text,
)
from .sinks import JsonlSink, MemorySink, report

__all__ = [
    "ENV_VAR", "Counter", "Gauge", "NullSpan", "Span",
    "active_sinks", "add", "add_sink", "current", "disable", "enable",
    "enabled", "pop_progress", "push_progress", "remove_sink", "reset",
    "sample_progress", "set_gauge", "span", "tracing",
    "BASELINE_SCHEMA", "BENCH_SCHEMA", "BENCH_SCHEMAS",
    "REPORT_SCHEMA", "TRACE_SCHEMA",
    "validate_baseline", "validate_bench_report",
    "validate_run_report", "validate_trace_file", "validate_trace_record",
    "validate_trace_text",
    "JsonlSink", "MemorySink", "report",
]
