"""Cross-process trace propagation and worker heartbeats.

The portfolio (:mod:`repro.portfolio.workers`) runs every engine in a
supervised child process.  Without help, spans and counters recorded
inside the child die with it — a ``portfolio.race`` trace shows the
race outcome with a black hole where the engine work happened.  This
module closes that hole from both ends of the pipe:

**Worker side** — :class:`worker_telemetry` arms a forked child: it
drops the telemetry state inherited from the parent (span stack and
sinks — including any open ``--trace`` file descriptor, which the
parent still owns), attaches a :class:`PipeSink` that streams every
completed span over the existing result pipe as it closes (one message
per record, so a killed worker loses nothing already sent), and opens a
root ``worker.task`` span tagged with the task's slot / engine / method
/ attempt.  A :class:`HeartbeatThread` concurrently emits periodic
``heartbeat`` events over a dedicated side channel, each carrying a
live progress sample from the innermost engine
(:func:`repro.obs.core.sample_progress` — SAT conflicts/decisions, BDD
node counts, explicit states explored).  Heartbeats flow even when
tracing is disabled: the supervisor's stall detector needs the liveness
signal unconditionally.

**Parent side** — :func:`merge_worker_record` re-bases each received
record under the owning span (normally ``portfolio.race``): fresh
``seq``, shifted ``depth``, parent link and slot/attempt attribution
tags, then dispatches it to the parent's sinks immediately — partial
traces are flushed line-by-line, never lost wholesale.  For workers the
parent stops before they can report their root span (cancelled losers,
deadline overruns, crashes, stalls), :func:`synthesize_task_record`
emits the ``worker.task`` record from the parent's own observations, so
every second a worker process ran is attributed in the merged trace.

Record timestamps need no translation: workers are forked, so the child
inherits the parent's trace origin, and ``perf_counter`` is
CLOCK_MONOTONIC on Linux — system-wide, not per-process.  (Under a
spawn start method children produce no span messages at all, and the
synthesized records keep the trace complete.)
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional

from . import core
from .schema import TRACE_SCHEMA

#: Span name of the root span each worker opens around its task.
TASK_SPAN = "worker.task"

#: Event/span name of the periodic liveness records workers emit.
HEARTBEAT_NAME = "worker.heartbeat"

#: Default interval between heartbeats (seconds); 0 disables the thread.
DEFAULT_HEARTBEAT_S = 0.25

# set by the "stall" fault action: the heartbeat thread goes silent
# while the flag is up, simulating a hung worker for the stall detector
_suppressed = threading.Event()


def suppress_heartbeats() -> None:
    """Silence this process's heartbeat thread (the ``stall`` fault)."""
    _suppressed.set()


def resume_heartbeats() -> None:
    """Let heartbeats flow again after :func:`suppress_heartbeats`."""
    _suppressed.clear()


class PipeSink:
    """A sink that streams records over a multiprocessing Connection.

    Each completed span becomes one ``("span", record)`` message — the
    pipe is the line-buffered trace, so everything sent before a kill
    survives in the parent.  Send failures are swallowed: a worker whose
    parent vanished must still run its task to completion.
    """

    def __init__(self, conn: Any):
        self._conn = conn

    def handle(self, record: Dict[str, Any]) -> None:
        """Ship one record to the parent (best effort)."""
        try:
            self._conn.send(("span", record))
        except Exception:
            pass

    def __repr__(self):
        return "PipeSink(%r)" % (self._conn,)


def heartbeat_record(tags: Dict[str, Any]) -> Dict[str, Any]:
    """One ``repro-trace/1`` heartbeat event for this instant.

    Shaped exactly like a span record with ``event: "heartbeat"`` and a
    zero duration; the innermost engine's progress sample (if any) lands
    in ``gauges``.  Nested under :data:`TASK_SPAN` so interval-based
    tree reconstruction and the ``parent`` link agree.
    """
    record: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "event": "heartbeat",
        "name": HEARTBEAT_NAME,
        "seq": core.next_seq(),
        "depth": 1,
        "parent": TASK_SPAN,
        "start_s": core.rel_time(),
        "duration_s": 0.0,
        "tags": dict(tags),
        "counters": {},
        "gauges": core.sample_progress() or {},
    }
    return record


class HeartbeatThread(threading.Thread):
    """Daemon thread beating ``("heartbeat", record)`` down a pipe.

    Beats once immediately (so the supervisor's stall clock starts from
    a real signal, not from process launch) and then every ``interval_s``
    until :meth:`stop` — unless :func:`suppress_heartbeats` is in force,
    in which case beats are skipped while the timer keeps running.
    """

    def __init__(self, conn: Any, tags: Dict[str, Any],
                 interval_s: float = DEFAULT_HEARTBEAT_S):
        super().__init__(name="repro-heartbeat", daemon=True)
        self._conn = conn
        self._tags = dict(tags, pid=os.getpid())
        self._interval_s = interval_s
        self._halt = threading.Event()

    def beat(self) -> bool:
        """Send one heartbeat now; False once the pipe is gone."""
        try:
            self._conn.send(("heartbeat", heartbeat_record(self._tags)))
            return True
        except Exception:
            return False

    def run(self) -> None:
        """Beat until stopped, the pipe dies, or suppression blocks us."""
        while not self._halt.is_set():
            if not _suppressed.is_set():
                if not self.beat():
                    return
            if self._halt.wait(self._interval_s):
                return

    def stop(self, join_s: float = 1.0) -> None:
        """Ask the thread to exit and join it briefly."""
        self._halt.set()
        if self.is_alive():
            self.join(join_s)


class worker_telemetry:
    """Context manager arming a forked worker's telemetry.

    Used by the worker wrapper around the task body::

        with remote.worker_telemetry(conn, hb_conn, slot="sat",
                                     engine="sat", method="bmc",
                                     attempt=0) as telemetry:
            payload = run_the_task()
            telemetry.annotate(outcome="ok")

    On entry: clears heartbeat suppression inherited across fork, starts
    the :class:`HeartbeatThread` on the side channel (always — liveness
    is not optional), and, when tracing is armed, resets the inherited
    span stack/sinks, installs a :class:`PipeSink` on the result pipe
    and opens the root :data:`TASK_SPAN` span.  On exit: closes the span
    (its record is the last span message the parent receives before the
    final result) and stops the heartbeat.
    """

    def __init__(self, conn: Any, hb_conn: Optional[Any], *, slot: str,
                 engine: str, method: str, attempt: int,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S):
        self._conn = conn
        self._hb_conn = hb_conn
        self._tags = {"slot": slot, "engine": engine, "method": method,
                      "attempt": attempt}
        self._heartbeat_s = heartbeat_s
        self._beat: Optional[HeartbeatThread] = None
        self._sink: Optional[PipeSink] = None
        self.span: Optional[core.Span] = None

    def annotate(self, **tags: Any) -> None:
        """Merge tags into the root task span (no-op when untraced)."""
        if self.span is not None:
            self.span.annotate(**tags)

    def __enter__(self) -> "worker_telemetry":
        resume_heartbeats()
        if self._hb_conn is not None and self._heartbeat_s > 0:
            self._beat = HeartbeatThread(self._hb_conn, self._tags,
                                         self._heartbeat_s)
            self._beat.start()
        if core.enabled():
            # the fork copied the parent's telemetry state; none of it is
            # ours to keep — the parent still owns its sinks (and any
            # open trace file), and its span stack is not our ancestry
            del core._stack[:]
            del core._sinks[:]
            del core._progress[:]
            self._sink = core.add_sink(PipeSink(self._conn))
            self.span = core.Span(TASK_SPAN, **self._tags)
            self.span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is not None:
            self.span.__exit__(exc_type, exc, tb)
            self.span = None
        if self._sink is not None:
            core.remove_sink(self._sink)
            self._sink = None
        if self._beat is not None:
            self._beat.stop()
            self._beat = None
        return None


def merge_worker_record(record: Dict[str, Any], *, slot: str,
                        attempt: int) -> Dict[str, Any]:
    """Re-base one worker record under the parent's owning span.

    Takes a ``span`` or ``heartbeat`` record as received from the pipe
    and returns the merged copy after dispatching it to the parent's
    sinks: fresh parent-side ``seq``, ``depth`` shifted below the
    ambient span (normally ``portfolio.race``), root records re-parented
    onto that span, and ``slot``/``attempt`` attribution tags stamped on
    every record (engine/method attribution lives on the root
    :data:`TASK_SPAN` span's own tags).
    """
    owner = core.current()
    base_depth = owner.depth + 1 if owner is not None else 0
    merged = dict(record)
    merged["seq"] = core.next_seq()
    merged["depth"] = int(record.get("depth", 0)) + base_depth
    if record.get("parent") is None and owner is not None:
        merged["parent"] = owner.name
    tags = dict(record.get("tags") or {})
    tags.setdefault("slot", slot)
    tags.setdefault("attempt", attempt)
    merged["tags"] = tags
    core.dispatch(merged)
    return merged


def synthesize_task_record(*, started_at: float, stopped_at: float,
                           slot: str, engine: str, method: str,
                           attempt: int, outcome: str) -> Dict[str, Any]:
    """Emit a ``worker.task`` record for a worker that never reported.

    The parent observed the worker's lifetime even if the child was
    killed, stalled or cancelled before its root span could close; this
    converts that observation (``perf_counter`` start/stop instants)
    into a trace record attributed like the real thing, tagged with the
    ``outcome`` ("cancelled", "timeout", "crash", "stall") and
    ``synthetic: True``.  Returns the merged record.
    """
    record: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "event": "span",
        "name": TASK_SPAN,
        "seq": 0,  # replaced by the merge
        "depth": 0,
        "parent": None,
        "start_s": core.rel_time(started_at),
        "duration_s": max(0.0, stopped_at - started_at),
        "tags": {"slot": slot, "engine": engine, "method": method,
                 "attempt": attempt, "outcome": outcome, "synthetic": True},
        "counters": {},
        "gauges": {},
    }
    return merge_worker_record(record, slot=slot, attempt=attempt)
