"""Speed-independence verification of gate netlists against STG
specifications (paper Sections 2.1 and 3.4)."""

from .spec_composition import (
    check_connection,
    compose_specifications,
    compose_to_stg,
    composed_signal_types,
)
from .composition import (
    ConformanceFailure,
    Hazard,
    VerificationReport,
    stable_internal_values,
    verify_circuit,
)

__all__ = [
    "check_connection", "compose_specifications", "compose_to_stg",
    "composed_signal_types",
    "ConformanceFailure", "Hazard", "VerificationReport",
    "stable_internal_values", "verify_circuit",
]
