"""Parallel composition of specifications (paper ref [10], Dill's trace
theory for hierarchical verification).

Two STGs are composed at the transition-system level: shared signals
synchronise (every occurrence is a joint move), private signals
interleave.  For a well-formed connection each shared signal is driven by
exactly one side (output or internal there) and observed by the other
(input there).

The composition is the basis for hierarchical reasoning: composing a
specification with its :meth:`~repro.stg.stg.STG.mirror` closes the
system; composing two pipeline-stage controllers yields the two-stage
behaviour.  The resulting TS can be re-synthesized into an STG via
:func:`repro.regions.synthesis.extract_stg`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..budgets import DECOMPOSE_STATE_BOUND
from ..errors import ModelError, StateExplosionError
from ..stg.signals import SignalType
from ..stg.stg import STG
from ..ts.state_graph import build_state_graph
from ..ts.transition_system import TransitionSystem


def check_connection(a: STG, b: STG) -> List[str]:
    """The shared signals of a legal connection (driver on one side,
    input on the other).  Raises :class:`ModelError` on conflicts."""
    shared = sorted(set(a.signals) & set(b.signals))
    for s in shared:
        ka, kb = a.type_of(s), b.type_of(s)
        drivers = sum(1 for k in (ka, kb) if k.is_noninput)
        if drivers == 2:
            raise ModelError("signal %r driven by both sides" % s)
        if drivers == 0:
            # both read it: allowed only if some third party drives it,
            # which a closed two-way composition cannot provide
            raise ModelError("signal %r driven by neither side" % s)
    return shared


def compose_specifications(a: STG, b: STG,
                           max_states: int = DECOMPOSE_STATE_BOUND) -> TransitionSystem:
    """Synchronous product of two STG behaviours.

    States are pairs of component states; arcs are labelled with signal
    event strings (``"req+"``).  Shared events move both components
    simultaneously and require both to enable them; private events
    interleave.
    """
    shared = set(check_connection(a, b))
    sg_a = build_state_graph(a, max_states=max_states)
    sg_b = build_state_graph(b, max_states=max_states)

    def moves(sg, state):
        """signal-event string -> list of successor states."""
        result: Dict[str, List] = {}
        for tname, succ in sg.ts.successors(state):
            event = sg.stg.event_of(tname)
            if event.is_dummy:
                raise ModelError("composition of dummy events unsupported")
            key = event.signal + event.direction
            result.setdefault(key, []).append(succ)
        return result

    initial = (sg_a.initial, sg_b.initial)
    ts = TransitionSystem(initial)
    stack = [initial]
    seen = {initial}
    while stack:
        state = stack.pop()
        pa, pb = state
        moves_a = moves(sg_a, pa)
        moves_b = moves(sg_b, pb)
        successors: List[Tuple[str, Tuple]] = []
        for event, targets in moves_a.items():
            signal = event[:-1]
            if signal in shared:
                if event in moves_b:
                    for ta in targets:
                        for tb in moves_b[event]:
                            successors.append((event, (ta, tb)))
            else:
                for ta in targets:
                    successors.append((event, (ta, pb)))
        for event, targets in moves_b.items():
            signal = event[:-1]
            if signal in shared:
                continue  # handled jointly above
            for tb in targets:
                successors.append((event, (pa, tb)))
        for event, succ in successors:
            ts.add_arc(state, event, succ)
            if succ not in seen:
                if len(seen) >= max_states:
                    raise StateExplosionError(
                        "composition exceeded %d states" % max_states,
                        bound=max_states, states=len(seen))
                seen.add(succ)
                stack.append(succ)
    return ts


def composed_signal_types(a: STG, b: STG) -> Dict[str, SignalType]:
    """Signal classification of the composition: shared signals become
    internal; private signals keep their role."""
    shared = set(check_connection(a, b))
    types: Dict[str, SignalType] = {}
    for stg in (a, b):
        for s in stg.signals:
            if s in shared:
                types[s] = SignalType.INTERNAL
            elif s not in types:
                types[s] = stg.type_of(s)
    return types


def compose_to_stg(a: STG, b: STG, name: str = "composed",
                   max_states: int = DECOMPOSE_STATE_BOUND) -> STG:
    """Compose two specifications and re-synthesize an STG via regions.

    Requires excitation closure of the composed behaviour (holds for the
    library's controller compositions); multiple occurrences of the same
    event in the product make this fail for some combinations — the TS
    from :func:`compose_specifications` is always available as fallback.
    """
    from ..regions.synthesis import extract_stg

    ts = compose_specifications(a, b, max_states=max_states)
    return extract_stg(ts, composed_signal_types(a, b), name=name)
