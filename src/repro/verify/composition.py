"""Implementation verification: circuit ⊗ environment composition
(paper, Section 2.1 "implementation verification" and Section 3.4).

The closed system is explored explicitly under speed-independent
semantics:

* the **environment** behaves as the STG specification: it may fire any
  enabled *input* transition;
* each **gate** of the netlist is *excited* when its next-value function
  differs from its current output; an excited gate may fire at any time
  (unbounded gate delays);
* when a gate drives an **interface** signal, its firing must be enabled in
  the specification — otherwise the circuit produced an output the
  environment does not expect (**conformance failure**);
* an excited gate whose excitation is *withdrawn* by another event without
  having fired is a **hazard** (a potential glitch) — this is the
  semi-modularity / persistency criterion the paper uses throughout
  (e.g. to reject the decomposition of Figure 9(b)).

Relative-timing assumptions (Section 5) are supported as *priority pairs*
``(early, late)``: in any state where both events are firable, the late
one is pruned — the lazy-transition semantics used for the Figure 11
circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..budgets import COMPOSE_STATE_BOUND
from ..errors import StateExplosionError, VerificationError
from ..petri.compiled import compile_net, supports_compilation
from ..petri.marking import Marking
from ..petri.token_game import enabled_unchecked, fire
from ..stg.signals import FALL, RISE, SignalEvent
from ..stg.stg import STG
from ..synth.netlist import Netlist
from ..ts.state_graph import build_state_graph
from ..ts.transition_system import TransitionSystem

CompositionState = Tuple[Marking, Tuple[int, ...]]


@dataclass(frozen=True)
class Hazard:
    """Gate ``signal`` was excited in ``state`` and firing ``by`` withdrew
    the excitation before the gate fired."""

    signal: str
    by: str
    trace: Tuple[str, ...]

    def __str__(self):
        return "hazard on %s: excitation withdrawn by %s (trace: %s)" % (
            self.signal, self.by, " ".join(self.trace) or "<initial>")


@dataclass(frozen=True)
class ConformanceFailure:
    """The circuit fired ``event`` in a state where the specification does
    not allow it."""

    event: str
    trace: Tuple[str, ...]

    def __str__(self):
        return "conformance failure: circuit fired %s unexpectedly" \
            " (trace: %s)" % (self.event, " ".join(self.trace) or "<initial>")


@dataclass
class VerificationReport:
    """Result of composing a netlist with its specification."""

    netlist_name: str
    spec_name: str
    states: int = 0
    hazards: List[Hazard] = field(default_factory=list)
    failures: List[ConformanceFailure] = field(default_factory=list)
    deadlocks: List[CompositionState] = field(default_factory=list)
    ts: Optional[TransitionSystem] = None

    @property
    def hazard_free(self) -> bool:
        return not self.hazards

    @property
    def conformant(self) -> bool:
        return not self.failures

    @property
    def deadlock_free(self) -> bool:
        return not self.deadlocks

    @property
    def ok(self) -> bool:
        """Speed independent and conformant."""
        return self.hazard_free and self.conformant and self.deadlock_free

    def summary(self) -> str:
        """Multi-line human-readable verdict."""
        lines = [
            "Verification of %s against %s" % (self.netlist_name,
                                               self.spec_name),
            "  composed states: %d" % self.states,
            "  conformant:      %s (%d failures)" % (self.conformant,
                                                     len(self.failures)),
            "  hazard-free:     %s (%d hazards)" % (self.hazard_free,
                                                    len(self.hazards)),
            "  deadlock-free:   %s" % self.deadlock_free,
            "  speed-independent implementation: %s" % self.ok,
        ]
        for h in self.hazards[:5]:
            lines.append("    " + str(h))
        for f in self.failures[:5]:
            lines.append("    " + str(f))
        return "\n".join(lines)


def stable_internal_values(netlist: Netlist, values: Dict[str, int],
                           internal: Sequence[str],
                           max_iterations: int = 100) -> Dict[str, int]:
    """Settle internal (non-spec) gate outputs to a stable fixpoint given
    fixed interface values.  Raises VerificationError on oscillation."""
    env = dict(values)
    for name in internal:
        env.setdefault(name, 0)
    for _ in range(max_iterations):
        changed = False
        for name in internal:
            new = netlist.gates[name].next_value(env)
            if new != env[name]:
                env[name] = new
                changed = True
        if not changed:
            return {name: env[name] for name in internal}
    raise VerificationError(
        "internal signals %r do not settle for the initial interface values"
        % list(internal))


def verify_circuit(netlist: Netlist, spec: STG,
                   priorities: Sequence[Tuple[str, str]] = (),
                   initial_internal: Optional[Mapping[str, int]] = None,
                   max_states: int = COMPOSE_STATE_BOUND,
                   stop_at_first: bool = False,
                   keep_ts: bool = False) -> VerificationReport:
    """Explore the circuit ⊗ environment composition and report hazards,
    conformance failures and deadlocks.

    ``priorities`` lists relative-timing assumptions ``(early, late)`` as
    event strings (e.g. ``("LDTACK-", "DSr+")``): whenever both are
    firable, the late one is pruned.
    """
    netlist.validate()
    spec_sg = build_state_graph(spec)
    spec_signals = set(spec.signals)
    interface_outputs = [s for s in netlist.gates if s in spec_signals]
    internal = [s for s in netlist.gates if s not in spec_signals]
    for s in spec.noninput_signals:
        if s not in netlist.gates:
            raise VerificationError(
                "netlist does not drive specified non-input signal %r" % s)

    initial_values: Dict[str, int] = {
        s: spec_sg.initial_values[s] for s in spec_signals
    }
    if initial_internal is not None:
        initial_values.update(initial_internal)
        missing = [s for s in internal if s not in initial_values]
        if missing:
            raise VerificationError("missing initial values for %r" % missing)
    else:
        initial_values.update(
            stable_internal_values(netlist, initial_values, internal))

    all_signals = sorted(set(netlist.signals()) | spec_signals)
    index = {s: i for i, s in enumerate(all_signals)}
    initial: CompositionState = (
        spec.initial_marking,
        tuple(initial_values[s] for s in all_signals),
    )

    report = VerificationReport(netlist.name, spec.name)
    parent: Dict[CompositionState, Tuple[Optional[CompositionState], str]] = {
        initial: (None, "")
    }

    def trace_of(state: CompositionState) -> Tuple[str, ...]:
        events: List[str] = []
        cursor: Optional[CompositionState] = state
        while cursor is not None:
            prev, ev = parent[cursor]
            if prev is not None:
                events.append(ev)
            cursor = prev
        return tuple(reversed(events))

    def env(state: CompositionState) -> Dict[str, int]:
        return {s: state[1][i] for s, i in index.items()}

    # spec-net move tables, resolved once instead of per composed state:
    # input transitions (net insertion order) and, per (signal, direction),
    # the matching spec transitions for gate firings.
    spec_net = spec.net
    spec_events = [(t, spec.event_of(t)) for t in spec_net.transitions]
    input_moves = [
        (t, ev.signal, 1 if ev.is_rising else 0,
         str(ev.base()[0] + ev.base()[1]))
        for t, ev in spec_events
        if not ev.is_dummy and not spec.type_of(ev.signal).is_noninput
    ]
    match_table: Dict[Tuple[str, str], List[str]] = {}
    for t, ev in spec_events:
        if not ev.is_dummy:
            match_table.setdefault(ev.base(), []).append(t)
    # the compiled bitvector engine answers enabled/fire queries in a few
    # int ops; fall back to the dict token game outside its domain.
    compiled = compile_net(spec_net) \
        if supports_compilation(spec_net, spec.initial_marking) else None

    def moves(state: CompositionState):
        """Yield (event_str, successor or None-for-failure, is_gate)."""
        marking, values = state
        valuemap = env(state)
        result = []
        if compiled is not None:
            code = compiled.encode(marking)
            t_bit = compiled.transition_bit
            pre_masks = compiled.pre_masks

            def t_enabled(t):
                pre = pre_masks[t_bit[t]]
                return code & pre == pre

            def t_fire(t):
                index = t_bit[t]
                succ, conflict = compiled.fire_index(code, index)
                if conflict:
                    # cannot happen for a spec whose state graph was built
                    # with require_safe=True (every composition marking is
                    # spec-reachable); fail loudly rather than truncate
                    raise compiled.unbounded_error(code, index, conflict)
                return compiled.decode(succ)
        else:
            def t_enabled(t):
                return enabled_unchecked(spec_net, marking, t)

            def t_fire(t):
                return fire(spec_net, marking, t, check=False)
        # environment moves: enabled input transitions of the spec
        for t, signal, value, event_str in input_moves:
            if not t_enabled(t):
                continue
            new_values = list(values)
            new_values[index[signal]] = value
            result.append((event_str, (t_fire(t), tuple(new_values)), t))
        # gate moves
        for signal in sorted(netlist.gates):
            gate = netlist.gates[signal]
            current = valuemap[signal]
            if gate.next_value(valuemap) == current:
                continue
            direction = RISE if current == 0 else FALL
            event_str = signal + direction
            new_values = list(values)
            new_values[index[signal]] = 1 - current
            if signal in spec_signals:
                # must be matched by an enabled spec transition
                matches = [
                    t for t in match_table.get((signal, direction), ())
                    if t_enabled(t)
                ]
                if not matches:
                    result.append((event_str, None, None))
                    continue
                for t in matches:
                    result.append((event_str,
                                   (t_fire(t), tuple(new_values)), t))
            else:
                result.append((event_str, (marking, tuple(new_values)), None))
        # apply relative-timing priorities
        if priorities:
            present = {ev for ev, _, _ in result}
            pruned = {late for early, late in priorities
                      if early in present and late in present}
            result = [m for m in result if m[0] not in pruned]
        return result

    def excited_gates(state: CompositionState) -> Set[str]:
        valuemap = env(state)
        return {
            s for s, g in netlist.gates.items()
            if g.next_value(valuemap) != valuemap[s]
        }

    ts = TransitionSystem(initial) if keep_ts else None
    stack: List[CompositionState] = [initial]
    visited: Set[CompositionState] = {initial}
    seen_hazards: Set[Tuple[str, str, CompositionState]] = set()
    while stack:
        state = stack.pop()
        state_moves = moves(state)
        excited_before = excited_gates(state)
        if not state_moves:
            report.deadlocks.append(state)
            continue
        for event_str, successor, _ in state_moves:
            if successor is None:
                report.failures.append(ConformanceFailure(
                    event_str, trace_of(state)))
                if stop_at_first:
                    report.states = len(visited)
                    report.ts = ts
                    return report
                continue
            # hazard check: every gate excited before must stay excited
            # after, unless it is the one that fired
            fired_signal = event_str[:-1]
            excited_after = excited_gates(successor)
            for z in excited_before:
                if z == fired_signal:
                    continue
                if netlist.gates[z].arbiter:
                    # mutual-exclusion element halves resolve their
                    # conflict internally (paper, Section 2.1)
                    continue
                zvalue_before = state[1][index[z]]
                zvalue_after = successor[1][index[z]]
                if z not in excited_after and zvalue_before == zvalue_after:
                    key = (z, event_str, state)
                    if key not in seen_hazards:
                        seen_hazards.add(key)
                        report.hazards.append(Hazard(
                            z, event_str, trace_of(state)))
                        if stop_at_first:
                            report.states = len(visited)
                            report.ts = ts
                            return report
            if ts is not None:
                ts.add_arc(state, event_str, successor)
            if successor not in visited:
                if len(visited) >= max_states:
                    raise StateExplosionError(
                        "composition exceeded %d states" % max_states,
                        bound=max_states, states=len(visited))
                visited.add(successor)
                parent[successor] = (state, event_str)
                stack.append(successor)
    report.states = len(visited)
    report.ts = ts
    return report
