"""Petri-net kernel: structure, token game, properties, structural theory,
reductions (paper Sections 1 and 2.2)."""

from .compiled import CompiledNet, compile_net, supports_compilation
from .marking import Marking
from .net import PetriNet, Place, Transition
from .token_game import (
    can_fire_sequence,
    enabled_transitions,
    fire,
    fire_safe,
    fire_sequence,
    is_enabled,
    language_prefixes,
    random_walk,
)
from .properties import (
    bound,
    explore,
    find_deadlocks,
    home_markings,
    is_bounded,
    is_deadlock_free,
    is_live,
    is_reversible,
    is_safe,
    reachable_markings,
    unsafe_witness,
)
from .structure import (
    DenseEncoding,
    SMComponent,
    choice_places,
    incidence_matrix,
    invariant_overapproximation,
    invariant_value,
    is_free_choice,
    is_marked_graph,
    is_state_machine,
    merge_places,
    p_invariants,
    satisfies_invariants,
    sm_components,
    sm_cover,
    t_invariants,
)
from .reductions import (
    full_reduce,
    implicit_places,
    linear_reduce,
    remove_implicit_places,
)
from .coverability import (
    OMEGA,
    CoverabilityGraph,
    OmegaMarking,
    build_coverability_graph,
    is_bounded_km,
)
from .dot import net_to_dot, reachability_to_dot
from .library import dining_philosophers

__all__ = [
    "CompiledNet", "compile_net", "supports_compilation",
    "Marking", "PetriNet", "Place", "Transition",
    "can_fire_sequence", "enabled_transitions", "fire", "fire_safe",
    "fire_sequence", "is_enabled", "language_prefixes", "random_walk",
    "bound", "explore", "find_deadlocks", "home_markings", "is_bounded",
    "is_deadlock_free", "is_live", "is_reversible", "is_safe",
    "reachable_markings", "unsafe_witness",
    "DenseEncoding", "SMComponent", "choice_places", "incidence_matrix",
    "invariant_overapproximation", "invariant_value", "is_free_choice",
    "is_marked_graph", "is_state_machine", "merge_places", "p_invariants",
    "satisfies_invariants", "sm_components", "sm_cover", "t_invariants",
    "full_reduce", "implicit_places", "linear_reduce",
    "remove_implicit_places",
    "OMEGA", "CoverabilityGraph", "OmegaMarking",
    "build_coverability_graph", "is_bounded_km",
    "net_to_dot", "reachability_to_dot",
    "dining_philosophers",
]
