"""Net-level example workloads (plain Petri nets, no signal labels).

Companion of :mod:`repro.stg.library`, which holds the STG-level
specifications: the models here exercise net-only machinery (deadlock
search, reachability queries, coverability) and are shared by the
benchmark suite and the example scripts so the topologies cannot drift
apart.
"""

from __future__ import annotations

from .net import PetriNet


def dining_philosophers(n: int) -> PetriNet:
    """The classic deadlock workload: ``n`` philosophers, ``n`` forks.

    Each philosopher thinks, takes the left fork, takes the right fork,
    eats, then releases both.  The "everyone took the left fork" marking
    — reached after ``n`` firings, or a single ∅-conflict parallel step
    of the SAT engine — is the unique reachable deadlock, buried in a
    state space that grows exponentially with ``n``.
    """
    if n < 2:
        raise ValueError("need at least two philosophers")
    net = PetriNet("philosophers_%d" % n)
    for i in range(n):
        net.add_place("fork%d" % i, 1)
        net.add_place("thinking%d" % i, 1)
        net.add_place("left%d" % i)
        net.add_place("eating%d" % i)
    for i in range(n):
        right = (i + 1) % n
        net.add_transition("take_left%d" % i)
        net.add_arc("thinking%d" % i, "take_left%d" % i)
        net.add_arc("fork%d" % i, "take_left%d" % i)
        net.add_arc("take_left%d" % i, "left%d" % i)
        net.add_transition("take_right%d" % i)
        net.add_arc("left%d" % i, "take_right%d" % i)
        net.add_arc("fork%d" % right, "take_right%d" % i)
        net.add_arc("take_right%d" % i, "eating%d" % i)
        net.add_transition("release%d" % i)
        net.add_arc("eating%d" % i, "release%d" % i)
        net.add_arc("release%d" % i, "thinking%d" % i)
        net.add_arc("release%d" % i, "fork%d" % i)
        net.add_arc("release%d" % i, "fork%d" % right)
    return net
