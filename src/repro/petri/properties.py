"""Behavioural properties of Petri nets.

Implements the checks listed in Section 2.1 of the paper that concern the
underlying net (independent of the signal interpretation):

* **boundedness / safeness** — the state space is finite, and (for
  implementability as a circuit) every place holds at most one token;
* **deadlock freedom**;
* **liveness** (every transition can always eventually fire again) and
  *home markings*.

Exploration is explicit with a configurable state bound; unboundedness is
detected either by exceeding the bound with a witness (coverability) or by
the Karp–Miller style covering test during exploration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..budgets import DEFAULT_STATE_BOUND
from ..errors import ModelError, StateExplosionError
from .marking import Marking
from .net import PetriNet
from .token_game import enabled_transitions, fire


def explore(net: PetriNet, max_states: int = DEFAULT_STATE_BOUND,
            detect_unbounded: bool = True) -> Dict[Marking, List[Tuple[str, Marking]]]:
    """Explicit reachability exploration.

    Returns an adjacency map ``marking -> [(transition, successor)]`` for all
    reachable markings.  If ``detect_unbounded`` is set, the Karp–Miller
    covering test is applied along each exploration path: reaching a marking
    that strictly covers an ancestor proves unboundedness and raises
    :class:`~repro.errors.UnboundedError` naming the offending pair.

    Raises :class:`StateExplosionError` when ``max_states`` is exceeded.
    """
    from ..errors import UnboundedError

    initial = net.initial_marking
    graph: Dict[Marking, List[Tuple[str, Marking]]] = {initial: []}
    # stack entries: (marking, ancestor chain as tuple) for covering test
    stack: List[Tuple[Marking, Tuple[Marking, ...]]] = [(initial, (initial,))]
    while stack:
        marking, ancestors = stack.pop()
        successors = graph[marking]
        for t in enabled_transitions(net, marking):
            succ = fire(net, marking, t, check=False)
            successors.append((t, succ))
            if succ not in graph:
                if detect_unbounded:
                    for anc in ancestors:
                        if succ.covers(anc) and succ != anc:
                            raise UnboundedError(
                                "net is unbounded: %r strictly covers ancestor %r"
                                % (succ, anc)
                            )
                if len(graph) >= max_states:
                    raise StateExplosionError(
                        "reachability exceeded %d states" % max_states,
                        bound=max_states, states=len(graph)
                    )
                graph[succ] = []
                stack.append((succ, ancestors + (succ,)))
    return graph


def reachable_markings(net: PetriNet,
                       max_states: int = DEFAULT_STATE_BOUND) -> Set[Marking]:
    """The set of reachable markings (explicit)."""
    return set(explore(net, max_states))


def is_bounded(net: PetriNet, max_states: int = DEFAULT_STATE_BOUND) -> bool:
    """True iff the reachability set is finite."""
    from ..errors import UnboundedError

    try:
        explore(net, max_states)
        return True
    except UnboundedError:
        return False


def bound(net: PetriNet, max_states: int = DEFAULT_STATE_BOUND) -> int:
    """The bound of the net: max token count of any place in any reachable
    marking.  Raises ``UnboundedError`` for unbounded nets."""
    markings = explore(net, max_states)
    best = 0
    for m in markings:
        for _, n in m.items():
            if n > best:
                best = n
    return best


def is_safe(net: PetriNet, max_states: int = DEFAULT_STATE_BOUND) -> bool:
    """True iff the net is 1-bounded (safe)."""
    from ..errors import UnboundedError

    try:
        return bound(net, max_states) <= 1
    except UnboundedError:
        return False


def unsafe_witness(net: PetriNet,
                   max_states: int = DEFAULT_STATE_BOUND) -> Optional[Marking]:
    """A reachable marking with a place holding >1 token, or None."""
    for m in explore(net, max_states):
        if not m.is_safe():
            return m
    return None


def find_deadlocks(net: PetriNet,
                   max_states: int = DEFAULT_STATE_BOUND,
                   markings: Optional[Iterable[Marking]] = None,
                   engine: str = "explicit") -> List[Marking]:
    """All dead markings (no transition enabled), in one report format.

    With the default ``markings=None`` the whole reachability set is
    explored explicitly.  Passing a ``markings`` iterable instead filters
    *those* markings for deadness — this is how query engines that do not
    enumerate the state space (e.g. the SAT path:
    ``find_deadlocks(net, markings=[witness.final_marking])`` with a
    :class:`repro.sat.bmc.Witness`) report through the same interface as
    the explicit one.

    ``engine="bdd"`` computes the dead set symbolically instead
    (:meth:`repro.bdd.symbolic.SymbolicReachability.deadlock_markings`)
    and enumerates only its members — the reachable set itself is never
    enumerated, so the answer survives state budgets that kill the
    explicit exploration.  Requires an ordinary, safely marked net.
    """
    if engine == "bdd":
        if markings is not None:
            raise ModelError("engine='bdd' computes the dead set itself;"
                             " drop the markings= filter")
        from ..bdd.symbolic import SymbolicReachability

        return SymbolicReachability(net).deadlock_markings()
    if engine != "explicit":
        raise ModelError("unknown engine %r (expected 'explicit' or 'bdd')"
                         % engine)
    if markings is None:
        graph = explore(net, max_states)
        dead = (m for m, succs in graph.items() if not succs)
    else:
        dead = (m for m in markings if not enabled_transitions(net, m))
    return sorted(dead, key=lambda m: repr(m))


def is_deadlock_free(net: PetriNet,
                     max_states: int = DEFAULT_STATE_BOUND) -> bool:
    """True iff no reachable marking is dead."""
    return not find_deadlocks(net, max_states)


def _strongly_connected_bottom(graph: Dict[Marking, List[Tuple[str, Marking]]]):
    """Tarjan SCC; returns (scc_index per marking, list of sccs, bottom flags)."""
    index: Dict[Marking, int] = {}
    low: Dict[Marking, int] = {}
    on_stack: Set[Marking] = set()
    stack: List[Marking] = []
    sccs: List[List[Marking]] = []
    scc_of: Dict[Marking, int] = {}
    counter = [0]

    def strongconnect(root: Marking) -> None:
        # iterative Tarjan to avoid recursion limits on big graphs
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for _, w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(graph[w])))
                    advanced = True
                    break
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    scc_of[w] = len(sccs)
                    if w == v:
                        break
                sccs.append(component)

    for m in graph:
        if m not in index:
            strongconnect(m)

    bottom = [True] * len(sccs)
    for m, succs in graph.items():
        for _, w in succs:
            if scc_of[w] != scc_of[m]:
                bottom[scc_of[m]] = False
    return scc_of, sccs, bottom


def is_live(net: PetriNet, max_states: int = DEFAULT_STATE_BOUND) -> bool:
    """L4-liveness: from every reachable marking, every transition can
    eventually fire.

    Checked on the reachability graph: every bottom strongly connected
    component must contain an occurrence of every transition.
    """
    graph = explore(net, max_states)
    scc_of, sccs, bottom = _strongly_connected_bottom(graph)
    all_transitions = set(net.transitions)
    for idx, component in enumerate(sccs):
        if not bottom[idx]:
            continue
        fired = set()
        for m in component:
            for t, succ in graph[m]:
                if scc_of[succ] == idx:
                    fired.add(t)
        if fired != all_transitions:
            return False
    return True


def home_markings(net: PetriNet,
                  max_states: int = DEFAULT_STATE_BOUND) -> Set[Marking]:
    """Markings reachable from every reachable marking.

    For a strongly connected reachability graph this is the whole set; in
    general it is the union of bottom SCCs if there is exactly one bottom
    SCC, and empty otherwise.
    """
    graph = explore(net, max_states)
    scc_of, sccs, bottom = _strongly_connected_bottom(graph)
    bottoms = [i for i, b in enumerate(bottom) if b]
    if len(bottoms) != 1:
        return set()
    return set(sccs[bottoms[0]])


def is_reversible(net: PetriNet,
                  max_states: int = DEFAULT_STATE_BOUND) -> bool:
    """True iff the initial marking is a home marking (cyclic behaviour)."""
    return net.initial_marking in home_markings(net, max_states)
