"""Graphviz DOT export for Petri nets and reachability graphs.

The paper's figures are drawn nets and state graphs; we provide DOT text so
any of the reproduced artifacts can be rendered with ``dot -Tpng``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .marking import Marking
from .net import PetriNet


def _quote(s: str) -> str:
    return '"%s"' % s.replace('"', '\\"')


def net_to_dot(net: PetriNet, title: Optional[str] = None) -> str:
    """Render a Petri net as DOT: circles for places (filled dot when
    marked), boxes for transitions."""
    lines = ["digraph %s {" % _quote(title or net.name),
             "  rankdir=TB;"]
    for p in sorted(net.places):
        tokens = net.places[p].tokens
        label = p if tokens == 0 else "%s\\n%s" % (p, "•" * tokens)
        lines.append("  %s [shape=circle, label=%s];" % (_quote(p), _quote(label)))
    for t in sorted(net.transitions):
        label = str(net.transitions[t].label)
        lines.append("  %s [shape=box, label=%s];" % (_quote(t), _quote(label)))
    for src, dst, w in sorted(net.arcs()):
        attr = "" if w == 1 else " [label=%s]" % _quote(str(w))
        lines.append("  %s -> %s%s;" % (_quote(src), _quote(dst), attr))
    lines.append("}")
    return "\n".join(lines)


def reachability_to_dot(graph: Dict[Marking, list],
                        initial: Optional[Marking] = None,
                        codes: Optional[Dict[Marking, str]] = None,
                        title: str = "rg") -> str:
    """Render a reachability graph (as produced by
    :func:`repro.petri.properties.explore`) as DOT.

    ``codes`` optionally maps markings to binary-code strings to display
    alongside the marking, as in the paper's Figure 4.
    """
    ids = {m: "s%d" % i for i, m in enumerate(sorted(graph, key=repr))}
    lines = ["digraph %s {" % _quote(title)]
    for m, node in ids.items():
        label = repr(m)
        if codes and m in codes:
            label += "\\n" + codes[m]
        shape = "doublecircle" if initial is not None and m == initial else "ellipse"
        lines.append("  %s [shape=%s, label=%s];" % (node, shape, _quote(label)))
    for m, succs in graph.items():
        for t, succ in succs:
            lines.append("  %s -> %s [label=%s];" %
                         (ids[m], ids[succ], _quote(str(t))))
    lines.append("}")
    return "\n".join(lines)
