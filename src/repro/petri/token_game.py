"""The token game: enabling and firing semantics of Petri nets.

A transition is *enabled* in a marking if every input place carries at least
the arc weight in tokens.  *Firing* an enabled transition consumes tokens
from input places and produces tokens in output places atomically.  Section
1.2 of the paper describes exactly this semantics.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ModelError, UnboundedError
from .marking import Marking
from .net import PetriNet


def enabled_unchecked(net: PetriNet, marking: Marking,
                      transition: str) -> bool:
    """Enabledness test without the transition-membership check.

    Internal fast path for hot loops that already iterate over
    ``net.transitions`` (so membership is guaranteed); public entry points
    validate once and then stay on this path.
    """
    get = marking.get
    return all(get(p) >= w for p, w in net.pre(transition).items())


def is_enabled(net: PetriNet, marking: Marking, transition: str) -> bool:
    """True iff ``transition`` is enabled in ``marking``."""
    if transition not in net.transitions:
        raise ModelError("unknown transition %r" % transition)
    return enabled_unchecked(net, marking, transition)


def enabled_transitions(net: PetriNet, marking: Marking) -> List[str]:
    """All transitions enabled in ``marking``, sorted by name."""
    return sorted(
        t for t in net.transitions if enabled_unchecked(net, marking, t)
    )


def fire(net: PetriNet, marking: Marking, transition: str,
         check: bool = True) -> Marking:
    """Fire ``transition`` in ``marking`` and return the successor marking.

    Raises :class:`ModelError` if the transition is not enabled and ``check``
    is true.  The unknown-transition check runs once here; the enabling
    test itself uses the check-free path.
    """
    if check:
        if transition not in net.transitions:
            raise ModelError("unknown transition %r" % transition)
        if not enabled_unchecked(net, marking, transition):
            raise ModelError(
                "transition %r not enabled in %r" % (transition, marking)
            )
    delta = {}
    for p, w in net.pre(transition).items():
        delta[p] = delta.get(p, 0) - w
    for p, w in net.post(transition).items():
        delta[p] = delta.get(p, 0) + w
    return marking.add(delta)


def fire_sequence(net: PetriNet, marking: Marking,
                  sequence: Sequence[str]) -> Marking:
    """Fire a sequence of transitions, returning the final marking."""
    for t in sequence:
        marking = fire(net, marking, t)
    return marking


def can_fire_sequence(net: PetriNet, marking: Marking,
                      sequence: Sequence[str]) -> bool:
    """True iff the whole sequence is fireable from ``marking``."""
    for t in sequence:
        if t not in net.transitions:
            raise ModelError("unknown transition %r" % t)
        if not enabled_unchecked(net, marking, t):
            return False
        marking = fire(net, marking, t, check=False)
    return True


def fire_safe(net: PetriNet, marking: Marking, transition: str) -> Marking:
    """Fire and additionally verify 1-safeness of the successor marking.

    Raises :class:`UnboundedError` if any place would hold more than one
    token — used by algorithms that require safe nets.
    """
    successor = fire(net, marking, transition)
    if not successor.is_safe():
        offenders = [p for p, n in successor.items() if n > 1]
        raise UnboundedError(
            "firing %r violates 1-safeness at places %r" % (transition, offenders)
        )
    return successor


def random_walk(net: PetriNet, steps: int, seed: Optional[int] = None,
                marking: Optional[Marking] = None) -> List[Tuple[str, Marking]]:
    """Perform a uniformly random firing walk of at most ``steps`` steps.

    Returns the list of ``(transition, marking_after)`` pairs; the walk stops
    early at a deadlock.  Useful for property-based testing.
    """
    rng = random.Random(seed)
    if marking is None:
        marking = net.initial_marking
    trace: List[Tuple[str, Marking]] = []
    for _ in range(steps):
        enabled = enabled_transitions(net, marking)
        if not enabled:
            break
        t = rng.choice(enabled)
        marking = fire(net, marking, t, check=False)
        trace.append((t, marking))
    return trace


def language_prefixes(net: PetriNet, max_length: int,
                      marking: Optional[Marking] = None) -> Iterator[Tuple[str, ...]]:
    """Enumerate all firing sequences of length up to ``max_length``.

    The empty sequence is included.  Exponential — intended for tests on
    small nets only.
    """
    if marking is None:
        marking = net.initial_marking
    stack: List[Tuple[Tuple[str, ...], Marking]] = [((), marking)]
    while stack:
        prefix, m = stack.pop()
        yield prefix
        if len(prefix) >= max_length:
            continue
        for t in enabled_transitions(net, m):
            stack.append((prefix + (t,), fire(net, m, t, check=False)))
