"""Compiled bitvector engine for the token game on safe nets.

The explicit token game of :mod:`repro.petri.token_game` plays on
dict-backed :class:`~repro.petri.marking.Marking` objects and rescans every
transition of the net per marking.  That is the scalability bottleneck the
paper identifies for state-graph based synthesis (Section 2.2): everything
downstream — state graphs, excitation regions, CSC, logic covers,
verification — pays for it.

This module *compiles* a safe, ordinary (arc weight 1) net into integer
bitmasks once, so the hot loop is pure machine-word arithmetic:

* a marking is a single Python int with bit ``i`` set iff place ``i`` is
  marked (places are numbered in sorted name order);
* each transition carries a ``pre_mask`` and ``post_mask``; it is enabled
  in ``m`` iff ``m & pre_mask == pre_mask`` and firing it yields
  ``(m & ~pre_mask) | post_mask``;
* the set of enabled transitions is itself an int bitmask (transitions
  numbered in sorted name order, so iterating set bits from the lowest
  yields transitions in sorted order — the exact order the naive engine
  uses) and is maintained *incrementally*: after firing ``t`` only the
  transitions consuming from a place in ``t``'s pre- or postset can change
  status, and those are precomputed as ``affected[t]``.

Violations of 1-safeness are still detected exactly as in the multiset
semantics: firing ``t`` in ``m`` produces a second token on place ``p``
iff ``p`` is in ``t``'s postset but not its preset and already marked,
i.e. ``m & (post_mask & ~pre_mask) != 0``.

Integer states decode back to interned :class:`Marking` objects on demand
(memoized), so graph builders can hand ordinary markings to downstream
consumers without paying dict/sort costs per state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import ModelError, UnboundedError
from .marking import Marking
from .net import PetriNet


class CompiledNet:
    """A safe Petri net preprocessed into integer bitmasks.

    Raises :class:`ModelError` if the net has non-unit arc weights or an
    initial marking that is not 1-safe — the bitvector representation only
    covers safe nets (use the naive engine otherwise).
    """

    __slots__ = (
        "net", "places", "place_bit", "transitions", "transition_bit",
        "pre_masks", "post_masks", "deltas", "affected", "_initial",
        "_marking_of", "_code_of", "_version",
    )

    def __init__(self, net: PetriNet):
        if not net.has_ordinary_arcs():
            raise ModelError(
                "compiled engine requires arc weights of 1 (net %r)"
                % net.name)
        self.net = net
        self._version = net._structure_version
        self.places: List[str] = sorted(net.places)
        self.place_bit: Dict[str, int] = {
            p: i for i, p in enumerate(self.places)
        }
        self.transitions: List[str] = sorted(net.transitions)
        self.transition_bit: Dict[str, int] = {
            t: i for i, t in enumerate(self.transitions)
        }
        self.pre_masks: List[int] = []
        self.post_masks: List[int] = []
        # deltas[i] = pre_masks[i] ^ post_masks[i]: for a conflict-free
        # firing the successor is exactly ``marking ^ deltas[i]``.
        self.deltas: List[int] = []
        for t in self.transitions:
            pre = 0
            for p in net.pre(t):
                pre |= 1 << self.place_bit[p]
            post = 0
            for p in net.post(t):
                post |= 1 << self.place_bit[p]
            self.pre_masks.append(pre)
            self.post_masks.append(post)
            self.deltas.append(pre ^ post)
        # affected[i]: bitmask of transitions whose enabledness may change
        # after firing transition i (consumers of i's pre/post places).
        self.affected: List[int] = []
        for i, t in enumerate(self.transitions):
            mask = 0
            touched = self.pre_masks[i] | self.post_masks[i]
            bits = touched
            while bits:
                low = bits & -bits
                bits ^= low
                place = self.places[low.bit_length() - 1]
                for consumer in net.postset(place):
                    mask |= 1 << self.transition_bit[consumer]
            self.affected.append(mask)
        self._marking_of: Dict[int, Marking] = {}
        self._code_of: Dict[Marking, int] = {}
        self._initial: Optional[int] = None

    @property
    def initial(self) -> int:
        """Integer code of the root marking (the net's own initial marking
        unless re-rooted via :func:`compile_net`).

        Encoded lazily so that a net whose *stored* marking is unsafe can
        still be compiled and explored from a safe override.
        """
        if self._initial is None:
            self._initial = self.encode(self.net.initial_marking)
        return self._initial

    @initial.setter
    def initial(self, code: int) -> None:
        self._initial = code

    def clear_state_pools(self) -> None:
        """Drop the interned integer<->Marking pools.

        The pools grow with every decoded state and live as long as this
        compilation (which :func:`compile_net` pins on the net); call this
        to release them after discarding the transition systems they fed.
        The mask tables are untouched.
        """
        self._marking_of = {}
        self._code_of = {}
        self._initial = None

    # ------------------------------------------------------------------ #
    # state codecs
    # ------------------------------------------------------------------ #

    def encode(self, marking: Marking) -> int:
        """Integer code of a safe marking.

        Raises :class:`ModelError` for markings with multiple tokens on a
        place or tokens on places unknown to the net.
        """
        code = self._code_of.get(marking)
        if code is not None:
            return code
        code = 0
        for p, n in marking.items():
            if n > 1:
                raise ModelError(
                    "compiled engine requires a safe marking; place %r"
                    " holds %d tokens" % (p, n))
            bit = self.place_bit.get(p)
            if bit is None:
                raise ModelError("unknown place %r in marking" % p)
            code |= 1 << bit
        self._code_of[marking] = code
        self._marking_of.setdefault(code, marking)
        return code

    def decode(self, code: int) -> Marking:
        """The :class:`Marking` for an integer state (memoized/interned)."""
        marking = self._marking_of.get(code)
        if marking is None:
            key = []
            bits = code
            while bits:
                low = bits & -bits
                bits ^= low
                key.append((self.places[low.bit_length() - 1], 1))
            marking = Marking._from_sorted_key(tuple(key))
            self._marking_of[code] = marking
            self._code_of[marking] = code
        return marking

    def marked_places(self, code: int) -> List[str]:
        """Place names of the set bits of ``code``, in sorted order."""
        names = []
        bits = code
        while bits:
            low = bits & -bits
            bits ^= low
            names.append(self.places[low.bit_length() - 1])
        return names

    # ------------------------------------------------------------------ #
    # the token game on integer states
    # ------------------------------------------------------------------ #

    def enabled_mask(self, code: int) -> int:
        """Bitmask of transitions enabled in ``code`` (full scan)."""
        mask = 0
        pre_masks = self.pre_masks
        for i in range(len(pre_masks)):
            pre = pre_masks[i]
            if code & pre == pre:
                mask |= 1 << i
        return mask

    def enabled_after(self, enabled: int, index: int, successor: int) -> int:
        """Enabled mask of ``successor`` given the enabled mask of the
        state in which transition ``index`` was just fired.

        Only the transitions in ``affected[index]`` are re-checked; all
        others keep their status from the predecessor.
        """
        changed = self.affected[index]
        result = enabled & ~changed
        pre_masks = self.pre_masks
        bits = changed
        while bits:
            low = bits & -bits
            bits ^= low
            pre = pre_masks[low.bit_length() - 1]
            if successor & pre == pre:
                result |= low
        return result

    def fire_index(self, code: int, index: int) -> Tuple[int, int]:
        """Fire transition ``index`` in ``code``.

        Returns ``(successor, conflict)`` where ``conflict`` is the
        bitmask of places that would receive a second token (non-zero iff
        the firing violates 1-safeness).  Enabledness is not checked.
        """
        pre = self.pre_masks[index]
        post = self.post_masks[index]
        stripped = code & ~pre
        return (stripped | post, stripped & post)

    def unbounded_error(self, code: int, index: int,
                        conflict: int) -> UnboundedError:
        """The same :class:`UnboundedError` the naive builder raises for
        this firing, with markings decoded for the message."""
        return UnboundedError(
            "firing %r from %r violates 1-safeness at %r"
            % (self.transitions[index], self.decode(code),
               self.marked_places(conflict)))

    # ------------------------------------------------------------------ #
    # name-level conveniences (tests, cross-checks, random walks)
    # ------------------------------------------------------------------ #

    def is_enabled(self, code: int, transition: str) -> bool:
        """True iff ``transition`` is enabled in integer state ``code``."""
        index = self.transition_bit.get(transition)
        if index is None:
            raise ModelError("unknown transition %r" % transition)
        pre = self.pre_masks[index]
        return code & pre == pre

    def fire(self, code: int, transition: str, check: bool = True) -> int:
        """Fire a transition by name; raises :class:`ModelError` when not
        enabled (and ``check``) and :class:`UnboundedError` on a safeness
        violation."""
        index = self.transition_bit.get(transition)
        if index is None:
            raise ModelError("unknown transition %r" % transition)
        pre = self.pre_masks[index]
        if check and code & pre != pre:
            raise ModelError(
                "transition %r not enabled in %r"
                % (transition, self.decode(code)))
        successor, conflict = self.fire_index(code, index)
        if conflict:
            raise self.unbounded_error(code, index, conflict)
        return successor

    def enabled_transitions(self, code: int) -> List[str]:
        """Enabled transitions of an integer state, sorted by name."""
        names = []
        bits = self.enabled_mask(code)
        while bits:
            low = bits & -bits
            bits ^= low
            names.append(self.transitions[low.bit_length() - 1])
        return names

    def __repr__(self):
        return "CompiledNet(%r, |P|=%d, |T|=%d)" % (
            self.net.name, len(self.places), len(self.transitions))


def compile_net(net: PetriNet,
                initial: Optional[Marking] = None) -> CompiledNet:
    """Compile ``net`` (optionally re-rooted at ``initial``) or raise
    :class:`ModelError` if the net is outside the compiled engine's domain
    (non-unit arc weights / non-safe marking).

    Compilations are cached on the net and reused as long as its structure
    is unchanged (tracked by the net's structure version), so repeated
    graph builds share one mask set and one decoded-marking pool.  The
    pool grows with every decoded state and lives as long as the net; for
    long-lived processes exploring huge state spaces, release it with
    :meth:`CompiledNet.clear_state_pools` once the built graphs are
    discarded.
    """
    compiled = getattr(net, "_compiled_cache", None)
    if compiled is None or compiled._version != net._structure_version:
        with obs.span("engine.compile", engine="compiled",
                      net=net.name) as span:
            compiled = CompiledNet(net)
            span.add("places", len(compiled.places))
            span.add("transitions", len(compiled.transitions))
        net._compiled_cache = compiled
    else:
        obs.add("compile_cache_hits")
    # always re-root: the cache is shared, so a previous caller's initial
    # (or a set_initial_marking since compilation) must not leak through
    if initial is None:
        initial = net.initial_marking
    compiled.initial = compiled.encode(initial)
    return compiled


def supports_compilation(net: PetriNet,
                         initial: Optional[Marking] = None) -> bool:
    """True iff the compiled engine can represent this net exactly:
    ordinary (weight-1) arcs and a 1-safe (initial) marking."""
    if initial is None:
        initial = net.initial_marking
    return net.has_ordinary_arcs() and initial.is_safe()
