"""Core Petri-net data structure.

A Petri net is a bipartite graph of *places* and *transitions* connected by
weighted arcs.  Places hold tokens; a distribution of tokens over places is a
*marking* (see :mod:`repro.petri.marking`).  This module provides the static
structure only; the token game (enabling/firing semantics) lives in
:mod:`repro.petri.token_game`.

The net intentionally identifies nodes by string name.  Transition objects
carry an optional ``label`` so that higher layers (Signal Transition Graphs)
can attach interpretation without subclassing the kernel.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import ModelError
from .marking import Marking


class Place:
    """A place of a Petri net.

    Attributes:
        name: unique identifier within the net.
        tokens: number of tokens in the *initial* marking.
    """

    __slots__ = ("name", "tokens")

    def __init__(self, name: str, tokens: int = 0):
        if tokens < 0:
            raise ModelError("place %r: negative token count %d" % (name, tokens))
        self.name = name
        self.tokens = tokens

    def __repr__(self):
        return "Place(%r, tokens=%d)" % (self.name, self.tokens)


class Transition:
    """A transition of a Petri net.

    Attributes:
        name: unique identifier within the net.
        label: arbitrary interpretation attached by higher layers.  For
            Signal Transition Graphs this is a
            :class:`repro.stg.signals.SignalEvent`.  Defaults to the name.
    """

    __slots__ = ("name", "label")

    def __init__(self, name: str, label=None):
        self.name = name
        self.label = label if label is not None else name

    def __repr__(self):
        return "Transition(%r, label=%r)" % (self.name, self.label)


class PetriNet:
    """A weighted place/transition net with an initial marking.

    Nodes are addressed by name.  Arc weights default to 1; all algorithms in
    this library that require ordinary (weight-1) nets check and raise
    :class:`~repro.errors.ModelError` where appropriate.
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self.places: Dict[str, Place] = {}
        self.transitions: Dict[str, Transition] = {}
        # arc maps: transition name -> {place name: weight}
        self._pre: Dict[str, Dict[str, int]] = {}
        self._post: Dict[str, Dict[str, int]] = {}
        # reverse maps: place name -> {transition name: weight}
        self._place_out: Dict[str, Dict[str, int]] = {}
        self._place_in: Dict[str, Dict[str, int]] = {}
        # memoized read-only preset/postset snapshots; dropped (not
        # mutated) whenever an arc or node changes, so a snapshot handed
        # out earlier stays stable for its holder.
        self._preset_cache: Dict[str, Mapping[str, int]] = {}
        self._postset_cache: Dict[str, Mapping[str, int]] = {}
        # bumped on every structural change; consumers that preprocess the
        # net (e.g. the compiled bitvector engine) key their caches on it.
        self._structure_version = 0

    def _invalidate_adjacency(self) -> None:
        self._structure_version += 1
        if self._preset_cache:
            self._preset_cache = {}
        if self._postset_cache:
            self._postset_cache = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_place(self, name: str, tokens: int = 0) -> Place:
        """Add a place; raises :class:`ModelError` on duplicate names."""
        if name in self.places or name in self.transitions:
            raise ModelError("duplicate node name %r" % name)
        self._structure_version += 1
        place = Place(name, tokens)
        self.places[name] = place
        self._place_out[name] = {}
        self._place_in[name] = {}
        return place

    def add_transition(self, name: str, label=None) -> Transition:
        """Add a transition; raises :class:`ModelError` on duplicate names."""
        if name in self.places or name in self.transitions:
            raise ModelError("duplicate node name %r" % name)
        self._structure_version += 1
        transition = Transition(name, label)
        self.transitions[name] = transition
        self._pre[name] = {}
        self._post[name] = {}
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an arc place->transition or transition->place.

        Adding an arc twice accumulates the weight.
        """
        if weight <= 0:
            raise ModelError("arc weight must be positive, got %d" % weight)
        self._invalidate_adjacency()
        if source in self.places and target in self.transitions:
            self._pre[target][source] = self._pre[target].get(source, 0) + weight
            self._place_out[source][target] = self._pre[target][source]
        elif source in self.transitions and target in self.places:
            self._post[source][target] = self._post[source].get(target, 0) + weight
            self._place_in[target][source] = self._post[source][target]
        else:
            raise ModelError(
                "arc %r -> %r does not connect a place and a transition"
                % (source, target)
            )

    def remove_place(self, name: str) -> None:
        """Remove a place and all arcs incident to it."""
        if name not in self.places:
            raise ModelError("unknown place %r" % name)
        self._invalidate_adjacency()
        for t in list(self._place_out[name]):
            del self._pre[t][name]
        for t in list(self._place_in[name]):
            del self._post[t][name]
        del self._place_out[name]
        del self._place_in[name]
        del self.places[name]

    def remove_transition(self, name: str) -> None:
        """Remove a transition and all arcs incident to it."""
        if name not in self.transitions:
            raise ModelError("unknown transition %r" % name)
        self._invalidate_adjacency()
        for p in list(self._pre[name]):
            del self._place_out[p][name]
        for p in list(self._post[name]):
            del self._place_in[p][name]
        del self._pre[name]
        del self._post[name]
        del self.transitions[name]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def preset(self, node: str) -> Mapping[str, int]:
        """Input nodes of ``node`` with arc weights (a read-only snapshot).

        Snapshots are memoized per node and invalidated on any structural
        change (``add_arc`` / ``remove_place`` / ``remove_transition``), so
        repeated queries in analysis loops cost a dict lookup.
        """
        cached = self._preset_cache.get(node)
        if cached is None:
            if node in self.transitions:
                cached = MappingProxyType(dict(self._pre[node]))
            elif node in self.places:
                cached = MappingProxyType(dict(self._place_in[node]))
            else:
                raise ModelError("unknown node %r" % node)
            self._preset_cache[node] = cached
        return cached

    def postset(self, node: str) -> Mapping[str, int]:
        """Output nodes of ``node`` with arc weights (a read-only snapshot).

        Memoized like :meth:`preset`.
        """
        cached = self._postset_cache.get(node)
        if cached is None:
            if node in self.transitions:
                cached = MappingProxyType(dict(self._post[node]))
            elif node in self.places:
                cached = MappingProxyType(dict(self._place_out[node]))
            else:
                raise ModelError("unknown node %r" % node)
            self._postset_cache[node] = cached
        return cached

    def pre(self, transition: str) -> Dict[str, int]:
        """Input places of a transition (internal view, do not mutate)."""
        return self._pre[transition]

    def post(self, transition: str) -> Dict[str, int]:
        """Output places of a transition (internal view, do not mutate)."""
        return self._post[transition]

    def arcs(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate over all arcs as ``(source, target, weight)``."""
        for t, pres in self._pre.items():
            for p, w in pres.items():
                yield (p, t, w)
        for t, posts in self._post.items():
            for p, w in posts.items():
                yield (t, p, w)

    @property
    def initial_marking(self) -> Marking:
        """The initial marking as declared on the places."""
        return Marking(
            {name: p.tokens for name, p in self.places.items() if p.tokens}
        )

    def set_initial_marking(self, marking) -> None:
        """Replace the initial marking.

        ``marking`` may be a :class:`Marking`, a mapping place->tokens, or an
        iterable of place names (each receiving one token).
        """
        if isinstance(marking, Marking):
            tokens = dict(marking.items())
        elif isinstance(marking, dict):
            tokens = dict(marking)
        else:
            tokens = {}
            for name in marking:
                tokens[name] = tokens.get(name, 0) + 1
        for name in tokens:
            if name not in self.places:
                raise ModelError("unknown place %r in marking" % name)
        for name, place in self.places.items():
            place.tokens = tokens.get(name, 0)

    def has_ordinary_arcs(self) -> bool:
        """True if every arc has weight 1."""
        return all(w == 1 for _, _, w in self.arcs())

    def label_of(self, transition: str):
        """Label attached to a transition."""
        return self.transitions[transition].label

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Deep copy of the net structure (labels are shared)."""
        other = PetriNet(name if name is not None else self.name)
        for p in self.places.values():
            other.add_place(p.name, p.tokens)
        for t in self.transitions.values():
            other.add_transition(t.name, t.label)
        for tname, pres in self._pre.items():
            for pname, w in pres.items():
                other.add_arc(pname, tname, w)
        for tname, posts in self._post.items():
            for pname, w in posts.items():
                other.add_arc(tname, pname, w)
        return other

    def induced_subnet(self, places: Iterable[str], transitions: Iterable[str],
                       name: Optional[str] = None) -> "PetriNet":
        """Subnet induced by the given node subsets (arcs between them)."""
        keep_p = set(places)
        keep_t = set(transitions)
        sub = PetriNet(name if name is not None else self.name + "_sub")
        for p in keep_p:
            sub.add_place(p, self.places[p].tokens)
        for t in keep_t:
            sub.add_transition(t, self.transitions[t].label)
        for tname in keep_t:
            for pname, w in self._pre[tname].items():
                if pname in keep_p:
                    sub.add_arc(pname, tname, w)
            for pname, w in self._post[tname].items():
                if pname in keep_p:
                    sub.add_arc(tname, pname, w)
        return sub

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def __contains__(self, node: str) -> bool:
        return node in self.places or node in self.transitions

    def __repr__(self):
        return "PetriNet(%r, |P|=%d, |T|=%d, |F|=%d)" % (
            self.name,
            len(self.places),
            len(self.transitions),
            sum(1 for _ in self.arcs()),
        )

    def stats(self) -> Dict[str, int]:
        """Structural size statistics: places, transitions, arcs."""
        return {
            "places": len(self.places),
            "transitions": len(self.transitions),
            "arcs": sum(1 for _ in self.arcs()),
        }
