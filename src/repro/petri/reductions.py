"""Structural (linear) reductions of Petri nets — Section 2.2 of the paper.

Kit of behaviour-preserving reduction rules (Murata, 1989):

* **FST** — fusion of series transitions;
* **FSP** — fusion of series places;
* **FPT / FPP** — fusion of parallel transitions / places;
* **ESP** — elimination of (marked) self-loop places;
* elimination of behaviourally *implicit places*.

The paper uses these in two ways: Figure 6 applies linear reductions to the
READ/WRITE STG to expose its state-machine components, and it notes that
"using more elaborate reductions it is possible to reduce the whole PN from
Figure 3 to a single self-loop transition".  Both are reproduced in the
benchmark suite.

All rules operate on a copy unless ``inplace=True``; fused node names are
joined with ``"."`` so the reduction history stays readable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..budgets import REDUCTION_STATE_BOUND
from ..errors import ModelError
from .net import PetriNet
from .properties import explore


# ---------------------------------------------------------------------- #
# individual rules: each returns True if it rewrote the net
# ---------------------------------------------------------------------- #

def _unique_name(net: PetriNet, base: str) -> str:
    if base not in net:
        return base
    i = 1
    while "%s~%d" % (base, i) in net:
        i += 1
    return "%s~%d" % (base, i)


def fuse_series_transitions_step(net: PetriNet) -> bool:
    """FST: place ``p`` with a single producer ``t1`` and single consumer
    ``t2`` where ``post(t1) == {p}`` and ``pre(t2) == {p}`` (weights 1,
    ``p`` unmarked) — replace ``t1; t2`` by one macro-transition."""
    for p in sorted(net.places):
        if net.places[p].tokens:
            continue
        producers = net.preset(p)
        consumers = net.postset(p)
        if len(producers) != 1 or len(consumers) != 1:
            continue
        (t1, w_in), = producers.items()
        (t2, w_out), = consumers.items()
        if t1 == t2 or w_in != 1 or w_out != 1:
            continue
        if dict(net.post(t1)) != {p: 1} or dict(net.pre(t2)) != {p: 1}:
            continue
        fused = _unique_name(net, "%s.%s" % (t1, t2))
        pre1 = dict(net.pre(t1))
        post2 = dict(net.post(t2))
        net.remove_place(p)
        net.remove_transition(t1)
        net.remove_transition(t2)
        net.add_transition(fused)
        for q, w in pre1.items():
            net.add_arc(q, fused, w)
        for q, w in post2.items():
            net.add_arc(fused, q, w)
        return True
    return False


def fuse_series_places_step(net: PetriNet) -> bool:
    """FSP: transition ``t`` with single input ``p1`` and single output
    ``p2`` where ``p1`` feeds only ``t`` and ``p2`` is produced only by
    ``t`` — merge the two places, removing ``t``."""
    for t in sorted(net.transitions):
        pre = net.pre(t)
        post = net.post(t)
        if len(pre) != 1 or len(post) != 1:
            continue
        (p1, w_in), = pre.items()
        (p2, w_out), = post.items()
        if p1 == p2 or w_in != 1 or w_out != 1:
            continue
        if dict(net.postset(p1)) != {t: 1} or dict(net.preset(p2)) != {t: 1}:
            continue
        merged = _unique_name(net, "%s.%s" % (p1, p2))
        tokens = net.places[p1].tokens + net.places[p2].tokens
        in_arcs = dict(net.preset(p1))
        out_arcs = dict(net.postset(p2))
        net.remove_transition(t)
        net.remove_place(p1)
        net.remove_place(p2)
        net.add_place(merged, tokens)
        for u, w in in_arcs.items():
            net.add_arc(u, merged, w)
        for u, w in out_arcs.items():
            net.add_arc(merged, u, w)
        return True
    return False


def fuse_parallel_places_step(net: PetriNet) -> bool:
    """FPP: two places with identical presets and postsets — keep the one
    with fewer tokens (the other can never be the sole constraint)."""
    places = sorted(net.places)
    for i, p in enumerate(places):
        for q in places[i + 1:]:
            if net.preset(p) == net.preset(q) and net.postset(p) == net.postset(q):
                drop = p if net.places[p].tokens >= net.places[q].tokens else q
                net.remove_place(drop)
                return True
    return False


def fuse_parallel_transitions_step(net: PetriNet) -> bool:
    """FPT: two transitions with identical presets and postsets — merge."""
    transitions = sorted(net.transitions)
    for i, t in enumerate(transitions):
        for u in transitions[i + 1:]:
            if dict(net.pre(t)) == dict(net.pre(u)) and \
                    dict(net.post(t)) == dict(net.post(u)):
                net.remove_transition(u)
                return True
    return False


def remove_self_loop_places_step(net: PetriNet) -> bool:
    """ESP: marked place whose preset equals its postset (a pure self-loop)
    never constrains behaviour — remove it."""
    for p in sorted(net.places):
        pre = net.preset(p)
        post = net.postset(p)
        if pre and pre == post and net.places[p].tokens >= max(post.values()):
            net.remove_place(p)
            return True
    return False


def implicit_places(net: PetriNet,
                    max_states: int = REDUCTION_STATE_BOUND) -> List[str]:
    """Behaviourally implicit places.

    A place ``p`` is implicit if in every reachable marking, whenever all
    *other* input places of each consumer of ``p`` are sufficiently marked,
    ``p`` is sufficiently marked too — i.e. ``p`` never restricts enabling.
    Removing an implicit place preserves the reachability graph modulo the
    place itself.  Checked on the explicit reachability graph, budgeted by
    :data:`repro.budgets.REDUCTION_STATE_BOUND` (pass ``max_states=`` to
    override).
    """
    graph = explore(net, max_states)
    result: List[str] = []
    for p in sorted(net.places):
        consumers = net.postset(p)
        if not consumers:
            result.append(p)
            continue
        implicit = True
        for m in graph:
            for t, w in consumers.items():
                others_ok = all(
                    m.get(q) >= wq
                    for q, wq in net.pre(t).items() if q != p
                )
                if others_ok and m.get(p) < w:
                    implicit = False
                    break
            if not implicit:
                break
        if implicit:
            result.append(p)
    return result


def remove_implicit_places(net: PetriNet,
                           max_states: int = REDUCTION_STATE_BOUND,
                           inplace: bool = False) -> PetriNet:
    """Remove behaviourally implicit places one at a time (re-checking after
    each removal, since implicitness of one place can depend on another)."""
    result = net if inplace else net.copy()
    while True:
        candidates = implicit_places(result, max_states)
        # never empty the net completely of constraint structure
        removable = [p for p in candidates
                     if len(result.places) > 1]
        if not removable:
            return result
        result.remove_place(removable[0])


# ---------------------------------------------------------------------- #
# fixpoint driver
# ---------------------------------------------------------------------- #

_RULES: Dict[str, Callable[[PetriNet], bool]] = {
    "fst": fuse_series_transitions_step,
    "fsp": fuse_series_places_step,
    "fpp": fuse_parallel_places_step,
    "fpt": fuse_parallel_transitions_step,
    "esp": remove_self_loop_places_step,
}


def linear_reduce(net: PetriNet, rules: Optional[List[str]] = None,
                  inplace: bool = False) -> PetriNet:
    """Apply the named reduction rules to fixpoint.

    ``rules`` defaults to ``["fst", "fpp", "fpt", "esp"]`` — the *linear*
    reductions that preserve the place/invariant structure the paper's
    Figure 6 exposes.  Add ``"fsp"`` for the aggressive reduction that can
    collapse a marked graph to a single self-loop transition.
    """
    if rules is None:
        rules = ["fst", "fpp", "fpt", "esp"]
    for r in rules:
        if r not in _RULES:
            raise ModelError("unknown reduction rule %r" % r)
    result = net if inplace else net.copy(net.name + "_reduced")
    with obs.span("petri.reduce", net=net.name,
                  rules=",".join(rules)) as span:
        changed = True
        while changed:
            changed = False
            for r in rules:
                while _RULES[r](result):
                    changed = True
                    span.add("rules_fired")
                    span.add("rule." + r)
        span.add("places_removed",
                 len(net.places) - len(result.places))
        span.add("transitions_removed",
                 len(net.transitions) - len(result.transitions))
    return result


def full_reduce(net: PetriNet, inplace: bool = False) -> PetriNet:
    """Aggressive reduction with all rules (FST, FSP, FPP, FPT, ESP).

    For a live safe marked graph this collapses the net to a single
    transition with a self-loop place — the paper's Section 2.2 remark
    about Figure 3.
    """
    return linear_reduce(net, rules=["fst", "fsp", "fpp", "fpt", "esp"],
                         inplace=inplace)
