"""Immutable, hashable markings.

A marking maps place names to token counts.  Zero-count entries are never
stored, so two markings are equal iff they mark the same places with the same
counts.  Markings are hashable and can be used as graph-node keys in
reachability graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Marking:
    """An immutable multiset of marked places."""

    __slots__ = ("_tokens", "_key", "_hash")

    def __init__(self, tokens: Mapping[str, int] = ()):
        cleaned = {p: n for p, n in dict(tokens).items() if n}
        for p, n in cleaned.items():
            if n < 0:
                raise ValueError("negative token count for place %r" % p)
        self._tokens: Dict[str, int] = cleaned
        self._key: Tuple[Tuple[str, int], ...] = tuple(sorted(cleaned.items()))
        self._hash = hash(self._key)

    @classmethod
    def from_places(cls, places: Iterable[str]) -> "Marking":
        """Marking with one token in each listed place (repeats accumulate)."""
        tokens: Dict[str, int] = {}
        for p in places:
            tokens[p] = tokens.get(p, 0) + 1
        return cls(tokens)

    @classmethod
    def _from_sorted_key(cls, key: Tuple[Tuple[str, int], ...]) -> "Marking":
        """Internal fast path: build a marking from an already-sorted,
        zero-free ``(place, count)`` tuple without re-validating.  Used by
        the compiled bitvector engine to decode integer states."""
        marking = cls.__new__(cls)
        marking._tokens = dict(key)
        marking._key = key
        marking._hash = hash(key)
        return marking

    # ------------------------------------------------------------------ #

    def get(self, place: str) -> int:
        """Token count of a place (0 if unmarked)."""
        return self._tokens.get(place, 0)

    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __contains__(self, place: str) -> bool:
        return place in self._tokens

    def places(self) -> Tuple[str, ...]:
        """Marked place names in sorted order."""
        return tuple(p for p, _ in self._key)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over (place, count) pairs in sorted order."""
        return iter(self._key)

    def total(self) -> int:
        """Total number of tokens."""
        return sum(n for _, n in self._key)

    def is_safe(self) -> bool:
        """True if no place holds more than one token."""
        return all(n <= 1 for _, n in self._key)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def add(self, delta: Mapping[str, int]) -> "Marking":
        """New marking with ``delta`` token counts added (may be negative)."""
        tokens = dict(self._tokens)
        for p, n in delta.items():
            tokens[p] = tokens.get(p, 0) + n
        return Marking(tokens)

    def covers(self, other: "Marking") -> bool:
        """True if this marking has at least as many tokens everywhere."""
        return all(self.get(p) >= n for p, n in other.items())

    # ------------------------------------------------------------------ #

    def __eq__(self, other) -> bool:
        return isinstance(other, Marking) and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._key)

    def __repr__(self):
        inner = ", ".join(
            p if n == 1 else "%s:%d" % (p, n) for p, n in self._key
        )
        return "{%s}" % inner
