"""Karp–Miller coverability analysis.

The paper's implementability checklist starts with "boundedness of the PN
to guarantee that the specified state space is finite" (Section 2.1).  For
bounded nets the explicit exploration of :mod:`repro.petri.properties`
decides this; the Karp–Miller coverability graph decides it for *arbitrary*
nets by accelerating strictly-growing loops to the symbolic token count ω.

The construction: explore markings over ``N ∪ {ω}``; whenever a new node
strictly covers one of its ancestors, every strictly larger component is
promoted to ω.  The resulting graph is finite and answers boundedness,
per-place bounds, and transition quasi-liveness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import StateExplosionError
from .net import PetriNet

OMEGA = float("inf")
"""The symbolic 'arbitrarily many tokens' count."""


class OmegaMarking:
    """A marking over ``N ∪ {ω}``, immutable and hashable."""

    __slots__ = ("_tokens", "_key")

    def __init__(self, tokens: Dict[str, float]):
        cleaned = {p: n for p, n in tokens.items() if n}
        self._tokens = cleaned
        self._key = tuple(sorted(cleaned.items()))

    def get(self, place: str) -> float:
        """Token count of a place (possibly ω)."""
        return self._tokens.get(place, 0)

    def items(self):
        """Iterate over (place, count) pairs (sorted)."""
        return iter(self._key)

    def covers(self, other: "OmegaMarking") -> bool:
        """Pointwise >= comparison."""
        return all(self.get(p) >= n for p, n in other.items())

    def strictly_covers(self, other: "OmegaMarking") -> bool:
        """Covers and differs somewhere."""
        return self.covers(other) and self._key != other._key

    def has_omega(self) -> bool:
        """True iff some component is ω."""
        return any(n == OMEGA for _, n in self._key)

    def __eq__(self, other):
        return isinstance(other, OmegaMarking) and self._key == other._key

    def __hash__(self):
        return hash(self._key)

    def __repr__(self):
        parts = []
        for p, n in self._key:
            parts.append("%s:%s" % (p, "ω" if n == OMEGA else int(n)))
        return "{%s}" % ", ".join(parts)


class CoverabilityGraph:
    """The Karp–Miller tree folded into a graph."""

    def __init__(self, net: PetriNet):
        self.net = net
        self.initial: Optional[OmegaMarking] = None
        self.nodes: Set[OmegaMarking] = set()
        self.arcs: List[Tuple[OmegaMarking, str, OmegaMarking]] = []

    def is_bounded(self) -> bool:
        """True iff no node contains an ω component."""
        return not any(node.has_omega() for node in self.nodes)

    def place_bound(self, place: str) -> float:
        """Max token count of a place over all nodes (ω if unbounded)."""
        return max((node.get(place) for node in self.nodes), default=0)

    def unbounded_places(self) -> List[str]:
        """Places whose bound is ω."""
        return sorted(p for p in self.net.places
                      if self.place_bound(p) == OMEGA)

    def quasi_live_transitions(self) -> Set[str]:
        """Transitions that occur on some arc (fireable at least once)."""
        return {t for _, t, _ in self.arcs}

    def dead_transitions(self) -> List[str]:
        """Transitions that can never fire from the initial marking."""
        return sorted(set(self.net.transitions)
                      - self.quasi_live_transitions())


def build_coverability_graph(net: PetriNet,
                             max_nodes: int = 100_000) -> CoverabilityGraph:
    """Karp–Miller coverability graph of an arbitrary Petri net."""
    graph = CoverabilityGraph(net)
    initial = OmegaMarking({p: float(net.places[p].tokens)
                            for p in net.places})
    graph.initial = initial
    graph.nodes.add(initial)
    # stack of (marking, ancestor chain)
    stack: List[Tuple[OmegaMarking, Tuple[OmegaMarking, ...]]] = [
        (initial, (initial,))
    ]
    while stack:
        marking, ancestors = stack.pop()
        for t in sorted(net.transitions):
            pre = net.pre(t)
            if not all(marking.get(p) >= w for p, w in pre.items()):
                continue
            tokens: Dict[str, float] = {p: n for p, n in marking.items()}
            for p, w in pre.items():
                if tokens.get(p, 0) != OMEGA:
                    tokens[p] = tokens.get(p, 0) - w
            for p, w in net.post(t).items():
                if tokens.get(p, 0) != OMEGA:
                    tokens[p] = tokens.get(p, 0) + w
            successor = OmegaMarking(tokens)
            # acceleration: promote strictly-growing components to ω
            for ancestor in ancestors:
                if successor.strictly_covers(ancestor):
                    accelerated = {p: n for p, n in successor.items()}
                    for p, n in successor.items():
                        if n > ancestor.get(p):
                            accelerated[p] = OMEGA
                    successor = OmegaMarking(accelerated)
            graph.arcs.append((marking, t, successor))
            if successor not in graph.nodes:
                if len(graph.nodes) >= max_nodes:
                    raise StateExplosionError(
                        "coverability graph exceeded %d nodes" % max_nodes,
                        bound=max_nodes, states=len(graph.nodes))
                graph.nodes.add(successor)
                stack.append((successor, ancestors + (successor,)))
    return graph


def is_bounded_km(net: PetriNet, max_nodes: int = 100_000) -> bool:
    """Boundedness decided by the Karp–Miller construction."""
    return build_coverability_graph(net, max_nodes).is_bounded()
