"""Complete State Coding resolution (paper, Sections 2.1 and 3.1).

Two techniques from the paper are implemented:

* **State-signal insertion** (:func:`resolve_csc`): insert a new internal
  signal whose rising transition precedes one event and whose falling
  transition precedes another, so that the conflicting states receive
  different codes.  The paper's example inserts ``csc0+`` right before
  ``LDS+`` and ``csc0-`` right before ``D-``.  Candidate pairs are searched
  exhaustively over non-input events (delaying inputs is not allowed "for
  compositional reasons") and validated on the resulting state graph:
  consistency, safeness, CSC, persistency and liveness must all hold.

* **Concurrency reduction** (:func:`resolve_by_concurrency_reduction`):
  remove the conflicting states themselves by ordering one event after
  another (the paper's alternative: "signal transition DTACK- can be
  delayed until LDS- fires").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..budgets import REDUCTION_STATE_BOUND
from ..errors import CSCError, ConsistencyError, ReproError, UnboundedError
from ..petri.properties import is_live
from ..stg.signals import SignalType
from ..stg.stg import STG
from ..ts.state_graph import build_state_graph
from ..analysis.implementability import check_implementability


@dataclass
class InsertionCandidate:
    """A validated (possibly partial) CSC-resolving insertion.

    ``rise_before`` / ``fall_before`` are comma-joined target event lists
    (a new transition instance is inserted before each target).
    ``conflicts`` counts the remaining CSC conflicts; 0 means the insertion
    fully restores complete state coding.
    """

    rise_before: str
    fall_before: str
    conflicts: int
    states: int
    stg: STG


def _noninput_transitions(stg: STG) -> List[str]:
    return sorted(
        t for t in stg.net.transitions
        if stg.type_of(stg.event_of(t).signal).is_noninput
    )


def _insertion_targets(stg: STG) -> List[Tuple[str, ...]]:
    """Candidate insertion points: every single non-input transition, plus
    every *group* of instances of the same base event (needed when the
    conflicting behaviour occurs in several branches, as in the READ/WRITE
    controller where csc0+ must precede both LDS+ instances)."""
    singles = [(t,) for t in _noninput_transitions(stg)]
    groups: dict = {}
    for t in _noninput_transitions(stg):
        groups.setdefault(stg.event_of(t).base(), []).append(t)
    multi = [tuple(sorted(ts)) for ts in groups.values() if len(ts) > 1]
    return singles + sorted(multi)


def _insertion_metrics(stg: STG, max_states: int) -> Optional[Tuple[int, int]]:
    """(csc conflict count, SG size) if the STG stays well-formed
    (bounded, consistent, persistent, live), else None."""
    try:
        report = check_implementability(stg, max_states=max_states)
    except ReproError:
        return None
    if not (report.bounded and report.consistent and report.persistent):
        return None
    try:
        if not is_live(stg.net, max_states=max_states):
            return None
    except ReproError:
        return None
    return len(report.csc_conflicts), report.states


def enumerate_insertions(stg: STG, signal: str = "csc0",
                         max_states: int = REDUCTION_STATE_BOUND,
                         full_only: bool = True) -> List[InsertionCandidate]:
    """Single-signal insertions (rise/fall before non-input events) that
    keep the specification well-formed.

    With ``full_only`` (the default) only insertions that fully restore CSC
    are returned; otherwise partial resolutions (fewer conflicts than the
    input) are included.  Sorted best-first: fewest remaining conflicts,
    then smallest state graph, then lexicographic.
    """
    base = check_implementability(stg, max_states=max_states)
    base_conflicts = len(base.csc_conflicts)
    candidates: List[InsertionCandidate] = []
    targets = _insertion_targets(stg)
    for rise_before in targets:
        for fall_before in targets:
            if set(rise_before) & set(fall_before):
                continue
            try:
                attempt = stg.insert_signal(
                    signal, rise_before=list(rise_before),
                    fall_before=list(fall_before))
            except ReproError:
                continue
            metrics = _insertion_metrics(attempt, max_states)
            if metrics is None:
                continue
            conflicts, states = metrics
            if conflicts > 0 and (full_only or conflicts >= base_conflicts):
                continue
            candidates.append(InsertionCandidate(
                ",".join(rise_before), ",".join(fall_before),
                conflicts, states, attempt))
    candidates.sort(key=lambda c: (c.conflicts, c.states,
                                   c.rise_before, c.fall_before))
    return candidates


def resolve_csc(stg: STG, signal_prefix: str = "csc",
                max_signals: int = 4,
                max_states: int = REDUCTION_STATE_BOUND) -> STG:
    """Resolve all CSC conflicts by iterative state-signal insertion.

    Inserts ``csc0``, ``csc1``, ... (one rising and one falling transition
    each) until CSC holds.  At each step the candidate leaving the fewest
    conflicts (then the smallest state graph) is chosen; candidates that do
    not strictly reduce the conflict count are discarded, so the iteration
    always progresses.  Raises :class:`CSCError` if the search fails within
    ``max_signals`` insertions.
    """
    current = stg
    for k in range(max_signals):
        report = check_implementability(current, max_states=max_states)
        if report.consistent and report.has_csc:
            return current
        candidates = enumerate_insertions(
            current, signal="%s%d" % (signal_prefix, k),
            max_states=max_states, full_only=False)
        if not candidates:
            raise CSCError(
                "no single-signal insertion reduces the CSC conflicts of %r"
                % current.name)
        current = candidates[0].stg
    report = check_implementability(current, max_states=max_states)
    if report.consistent and report.has_csc:
        return current
    raise CSCError("CSC unresolved after %d signal insertions" % max_signals)


def resolve_by_concurrency_reduction(stg: STG,
                                     max_states: int = REDUCTION_STATE_BOUND) -> Tuple[STG, Tuple[str, str]]:
    """Resolve CSC by delaying one non-input event after another.

    Searches ordered pairs ``(first, second)`` where ``second`` is a
    non-input event, adds the ordering place ``first -> second`` (trying
    both initial markings of the place) and accepts the first candidate
    that is implementable and live.  Returns ``(new_stg, (first, second))``.
    """
    report = check_implementability(stg, max_states=max_states)
    if report.consistent and report.has_csc:
        return stg, ("", "")
    all_events = sorted(stg.net.transitions)
    targets = _noninput_transitions(stg)
    best: Optional[Tuple[int, str, str, STG]] = None
    for first in all_events:
        for second in targets:
            if first == second:
                continue
            for marked in (False, True):
                try:
                    attempt = stg.add_ordering_arc(first, second,
                                                   initially_marked=marked)
                except ReproError:
                    continue
                metrics = _insertion_metrics(attempt, max_states)
                if metrics is None or metrics[0] > 0:
                    continue
                states = metrics[1]
                key = (states, first, second)
                if best is None or key < (best[0], best[1], best[2]):
                    best = (states, first, second, attempt)
                break  # prefer the unmarked variant when both work
    if best is None:
        raise CSCError(
            "no single concurrency reduction resolves the CSC conflicts of %r"
            % stg.name)
    return best[3], (best[1], best[2])
