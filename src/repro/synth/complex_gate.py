"""Complex-gate logic synthesis (paper, Section 3.2).

Implements each non-input signal as a single atomic complex gate computing
its minimized next-state function — the architecture for which the paper
quotes the classic result: *any circuit implementing the next-state
function of each signal with only one atomic complex gate is speed
independent*.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import CSCError
from ..stg.stg import STG
from ..ts.state_graph import StateGraph, build_state_graph
from .netlist import Gate, Netlist
from .nextstate import derive_all_next_state_functions


def synthesize_complex_gates(sg_or_stg, name: Optional[str] = None) -> Netlist:
    """Synthesize a complex-gate netlist from an STG or a prebuilt SG.

    Raises :class:`~repro.errors.CSCError` if the specification violates
    complete state coding (resolve with
    :func:`repro.synth.csc.resolve_csc` first).
    """
    if isinstance(sg_or_stg, STG):
        sg = build_state_graph(sg_or_stg)
    else:
        sg = sg_or_stg
    stg = sg.stg
    netlist = Netlist(name or (stg.name + "_cg"), inputs=stg.inputs)
    for signal, fn in sorted(derive_all_next_state_functions(sg).items()):
        netlist.add(Gate.comb(signal, fn.minimized_expr()))
    netlist.validate()
    return netlist


def equations(sg_or_stg) -> Dict[str, str]:
    """Convenience: signal -> minimized equation string (eqn style)."""
    netlist = synthesize_complex_gates(sg_or_stg)
    return {out: str(g.expr) for out, g in netlist.gates.items()}
