"""Next-state function derivation (paper, Section 3.2).

For each non-input signal ``z`` the states of the SG are classified into
excitation regions ``ER(z+)``, ``ER(z-)`` and quiescent regions ``QR(z+)``,
``QR(z-)``; the next-state function is::

    f_z(s) = 1  if s in ER(z+) | QR(z+)
             0  if s in ER(z-) | QR(z-)
             -  if the code s corresponds to no state (don't care)

If the same binary code requires both 1 and 0 the function is ill-defined:
that is precisely a CSC conflict and raises :class:`~repro.errors.CSCError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CSCError
from ..boolmin.cube import Cube, minterm_to_int
from ..boolmin.expr import BoolExpr, from_cubes
from ..boolmin.quine_mccluskey import minimize
from ..ts.state_graph import StateGraph


@dataclass
class NextStateFunction:
    """An incompletely specified function over the SG's signal codes.

    Minterm integers use the SG's ``signal_order`` with the first signal as
    the most significant bit.
    """

    signal: str
    variables: List[str]
    onset: Set[int] = field(default_factory=set)
    offset: Set[int] = field(default_factory=set)

    @property
    def width(self) -> int:
        return len(self.variables)

    @property
    def dcset(self) -> Set[int]:
        """Codes not reachable in the SG (usable as don't-cares)."""
        universe = set(range(1 << self.width))
        return universe - self.onset - self.offset

    def value(self, code: Tuple[int, ...]) -> Optional[int]:
        """1, 0 or None (don't-care) for a binary code."""
        m = minterm_to_int(code)
        if m in self.onset:
            return 1
        if m in self.offset:
            return 0
        return None

    def minimized_cubes(self) -> List[Cube]:
        """Minimal SOP cover (exploiting the don't-care set)."""
        return minimize(sorted(self.onset), sorted(self.dcset), self.width)

    def minimized_expr(self) -> BoolExpr:
        """Minimal SOP as a boolean expression over the signal names."""
        return from_cubes(self.minimized_cubes(), self.variables)


def derive_next_state_function(sg: StateGraph, signal: str) -> NextStateFunction:
    """Derive ``f_signal`` from the state graph.

    Raises :class:`CSCError` naming the conflicting states if two states
    share a code but imply different next values for the signal.
    """
    fn = NextStateFunction(signal=signal, variables=list(sg.signal_order))
    implied: Dict[int, Tuple[int, object]] = {}
    for state in sg.states:
        code = minterm_to_int(sg.code(state))
        value = sg.next_value(state, signal)
        previous = implied.get(code)
        if previous is not None and previous[0] != value:
            raise CSCError(
                "CSC conflict for signal %r: states %r and %r share code"
                " %s but imply next values %d and %d"
                % (signal, previous[1], state,
                   format(code, "0%db" % fn.width), previous[0], value)
            )
        implied[code] = (value, state)
        (fn.onset if value else fn.offset).add(code)
    return fn


def derive_all_next_state_functions(sg: StateGraph) -> Dict[str, NextStateFunction]:
    """Next-state functions of every non-input signal."""
    return {
        z: derive_next_state_function(sg, z)
        for z in sg.stg.noninput_signals
    }


def next_state_table(sg: StateGraph, signal: str,
                     states: Optional[Sequence] = None) -> List[Tuple[str, str, str]]:
    """The Section 3.2 illustration table: ``(code, region, f value)`` rows.

    ``region`` is one of ``ER(z+)``, ``QR(z+)``, ``ER(z-)``, ``QR(z-)``.
    ``states`` defaults to all states in BFS order.
    """
    if states is None:
        states = sg.states
    rows = []
    for state in states:
        code = "".join(map(str, sg.code(state)))
        if sg.excited(state, signal):
            region = "ER(%s%s)" % (signal,
                                   "+" if sg.value(state, signal) == 0 else "-")
        else:
            region = "QR(%s%s)" % (signal,
                                   "+" if sg.value(state, signal) == 1 else "-")
        rows.append((code, region, str(sg.next_value(state, signal))))
    return rows
