"""Gate netlists: the output of logic synthesis (paper, Section 3).

A :class:`Netlist` maps each non-input signal to a :class:`Gate`.  Three
gate kinds cover the architectures in the paper's Figures 8, 9 and 11:

* ``COMB`` — an atomic complex gate computing ``next = f(signals)``; the
  function may reference the gate's own output (combinational feedback),
  which is how complex gates such as ``csc0 = DSr (csc0 + LDTACK')`` are
  realised as single atomic gates;
* ``C_ELEMENT`` — a (generalized) Muller C-element with *set* and *reset*
  functions: ``next = S + Q·R'`` (for the classic two-input C-element,
  ``S = ab`` and ``R = a'b'``);
* ``SR_LATCH`` — a set/reset latch with configurable dominance
  (the paper's Figure 8(b) uses a reset-dominant RS latch).

The well-known result quoted in Section 3.2 — any circuit implementing the
next-state function of each signal with one atomic gate is speed
independent — is checked by the :mod:`repro.verify` package.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ModelError, SynthesisError
from ..boolmin.expr import BoolExpr, Var, parse_expr


class GateKind(enum.Enum):
    """Implementation style of a gate."""

    COMB = "comb"
    C_ELEMENT = "c-element"
    SR_LATCH = "sr-latch"


class Gate:
    """A gate driving one signal.

    Attributes:
        output: the driven signal name.
        kind: gate kind.
        expr: next-state function for ``COMB`` gates.
        set_expr / reset_expr: excitation functions for latch kinds.
        dominance: for ``SR_LATCH``: "set" or "reset" (which input wins
            when both are active).
    """

    def __init__(self, output: str, kind: GateKind,
                 expr: Optional[BoolExpr] = None,
                 set_expr: Optional[BoolExpr] = None,
                 reset_expr: Optional[BoolExpr] = None,
                 dominance: str = "reset",
                 arbiter: bool = False):
        self.output = output
        self.kind = kind
        self.expr = expr
        self.set_expr = set_expr
        self.reset_expr = reset_expr
        if dominance not in ("set", "reset"):
            raise ModelError("dominance must be 'set' or 'reset'")
        self.dominance = dominance
        # arbiter gates (mutual-exclusion element halves) are allowed to
        # withdraw each other's excitation: the metastability is resolved
        # inside the element (paper, Section 2.1: "cannot be implemented
        # without hazards unless special mutual exclusion elements
        # (arbiters) are used").  The verifier exempts them from the
        # persistency check.
        self.arbiter = arbiter
        if kind == GateKind.COMB:
            if expr is None:
                raise ModelError("COMB gate %r needs expr" % output)
        else:
            if set_expr is None or reset_expr is None:
                raise ModelError("%s gate %r needs set and reset functions"
                                 % (kind.value, output))

    @classmethod
    def comb(cls, output: str, expr) -> "Gate":
        """Combinational/complex gate from an expression or string."""
        if isinstance(expr, str):
            expr = parse_expr(expr)
        return cls(output, GateKind.COMB, expr=expr)

    @classmethod
    def c_element(cls, output: str, set_expr, reset_expr) -> "Gate":
        """Generalized C-element: ``next = S + Q·R'``."""
        if isinstance(set_expr, str):
            set_expr = parse_expr(set_expr)
        if isinstance(reset_expr, str):
            reset_expr = parse_expr(reset_expr)
        return cls(output, GateKind.C_ELEMENT,
                   set_expr=set_expr, reset_expr=reset_expr)

    @classmethod
    def classic_c_element(cls, output: str, a: str, b: str,
                          invert_a: bool = False,
                          invert_b: bool = False) -> "Gate":
        """Two-input Muller C-element on signals ``a`` and ``b`` (optionally
        with input bubbles): rises when both (possibly inverted) inputs are
        1, falls when both are 0, holds otherwise."""
        va: BoolExpr = Var(a)
        vb: BoolExpr = Var(b)
        if invert_a:
            va = ~va
        if invert_b:
            vb = ~vb
        return cls.c_element(output, va & vb, (~va) & (~vb))

    @classmethod
    def sr_latch(cls, output: str, set_expr, reset_expr,
                 dominance: str = "reset") -> "Gate":
        """SR latch with explicit dominance."""
        if isinstance(set_expr, str):
            set_expr = parse_expr(set_expr)
        if isinstance(reset_expr, str):
            reset_expr = parse_expr(reset_expr)
        return cls(output, GateKind.SR_LATCH,
                   set_expr=set_expr, reset_expr=reset_expr,
                   dominance=dominance)

    @classmethod
    def buffer(cls, output: str, source: str) -> "Gate":
        """A buffer (wire) gate ``output = source``."""
        return cls.comb(output, Var(source))

    @classmethod
    def mutex_pair(cls, grant1: str, grant2: str,
                   request1: str, request2: str) -> Tuple["Gate", "Gate"]:
        """A mutual-exclusion (ME) element as two coupled arbiter gates.

        ``grant_i`` rises when ``request_i`` is high and the other grant is
        low; when both requests arrive simultaneously the element makes a
        non-deterministic choice (the verifier explores both orders and
        does not flag the mutual disabling as a hazard)."""
        g1 = cls(grant1, GateKind.COMB,
                 expr=Var(request1) & ~Var(grant2), arbiter=True)
        g2 = cls(grant2, GateKind.COMB,
                 expr=Var(request2) & ~Var(grant1), arbiter=True)
        return g1, g2

    # ------------------------------------------------------------------ #

    def inputs(self) -> Set[str]:
        """Signals read by the gate (excluding the implicit own output for
        latch kinds; including it for feedback COMB gates)."""
        if self.kind == GateKind.COMB:
            return set(self.expr.support())
        return set(self.set_expr.support()) | set(self.reset_expr.support())

    def next_value(self, values: Mapping[str, int]) -> int:
        """The gate's implied output value for a signal-value assignment."""
        q = values[self.output]
        if self.kind == GateKind.COMB:
            return self.expr.eval(values)
        s = self.set_expr.eval(values)
        r = self.reset_expr.eval(values)
        if self.kind == GateKind.C_ELEMENT:
            # S + Q·R' ; simultaneous S and R is a design error surfaced
            # by verification, resolved here as set-dominant.
            return 1 if s or (q and not r) else 0
        if self.dominance == "reset":
            return 1 if (not r) and (s or q) else 0
        return 1 if s or (q and not r) else 0

    def describe(self) -> str:
        """Equation-style description."""
        if self.kind == GateKind.COMB:
            return "%s = %s" % (self.output, self.expr)
        return "%s = %s(set: %s, reset: %s%s)" % (
            self.output,
            "C" if self.kind == GateKind.C_ELEMENT else "SR",
            self.set_expr, self.reset_expr,
            "" if self.kind == GateKind.C_ELEMENT
            else ", %s-dominant" % self.dominance,
        )

    def __repr__(self):
        return "Gate(%s)" % self.describe()


class Netlist:
    """A collection of gates implementing an STG's non-input signals."""

    def __init__(self, name: str, inputs: Iterable[str] = ()):
        self.name = name
        self.inputs: List[str] = sorted(inputs)
        self.gates: Dict[str, Gate] = {}

    def add(self, gate: Gate) -> Gate:
        """Add a gate; one driver per signal."""
        if gate.output in self.gates:
            raise ModelError("signal %r already driven" % gate.output)
        if gate.output in self.inputs:
            raise ModelError("cannot drive input signal %r" % gate.output)
        self.gates[gate.output] = gate
        return gate

    @property
    def outputs(self) -> List[str]:
        """All gate-driven signal names, sorted."""
        return sorted(self.gates)

    def signals(self) -> List[str]:
        """All signals appearing in the netlist (inputs + driven)."""
        names = set(self.inputs) | set(self.gates)
        for g in self.gates.values():
            names |= g.inputs()
        return sorted(names)

    def validate(self) -> None:
        """Every referenced signal must be an input or gate-driven."""
        driven = set(self.inputs) | set(self.gates)
        for g in self.gates.values():
            missing = g.inputs() - driven - {g.output}
            if missing:
                raise SynthesisError(
                    "gate %r reads undriven signals %s"
                    % (g.output, sorted(missing))
                )

    def gate_count(self) -> int:
        """Number of gates in the netlist."""
        return len(self.gates)

    def literal_count(self) -> int:
        """Total literal count over all gate functions (area proxy)."""
        def count(expr: BoolExpr) -> int:
            from ..boolmin.expr import And, Const, Not, Or, Var as V
            if isinstance(expr, V):
                return 1
            if isinstance(expr, Not):
                return count(expr.arg)
            if isinstance(expr, (And, Or)):
                return sum(count(a) for a in expr.args)
            return 0

        total = 0
        for g in self.gates.values():
            if g.kind == GateKind.COMB:
                total += count(g.expr)
            else:
                total += count(g.set_expr) + count(g.reset_expr)
        return total

    def to_eqn(self) -> str:
        """Equations block in the paper's style."""
        lines = ["# netlist %s" % self.name,
                 "# inputs: %s" % " ".join(self.inputs)]
        for out in sorted(self.gates):
            lines.append(self.gates[out].describe())
        return "\n".join(lines)

    def to_verilog(self) -> str:
        """Behavioural Verilog for simulation with commercial tools —
        the validation path mentioned in Section 6 of the paper."""
        ports = self.inputs + self.outputs
        lines = ["module %s(%s);" % (self.name.replace("-", "_"),
                                     ", ".join(ports))]
        for s in self.inputs:
            lines.append("  input %s;" % s)
        for s in self.outputs:
            lines.append("  output %s;" % s)
        for out in sorted(self.gates):
            g = self.gates[out]
            if g.kind == GateKind.COMB:
                lines.append("  assign %s = %s;" % (out, _verilog_expr(g.expr)))
            else:
                lines.append("  // %s realised as %s" % (out, g.kind.value))
                lines.append("  assign %s = (%s) | (%s & ~(%s));" % (
                    out, _verilog_expr(g.set_expr), out,
                    _verilog_expr(g.reset_expr)))
        lines.append("endmodule")
        return "\n".join(lines)

    def __repr__(self):
        return "Netlist(%r, gates=%d)" % (self.name, len(self.gates))


def _verilog_expr(expr: BoolExpr) -> str:
    from ..boolmin.expr import And, Const, Not, Or, Var as V

    if isinstance(expr, V):
        return expr.name
    if isinstance(expr, Const):
        return "1'b%d" % expr.value
    if isinstance(expr, Not):
        return "~(%s)" % _verilog_expr(expr.arg)
    if isinstance(expr, And):
        return " & ".join("(%s)" % _verilog_expr(a) for a in expr.args)
    if isinstance(expr, Or):
        return " | ".join("(%s)" % _verilog_expr(a) for a in expr.args)
    raise ModelError("unknown expression node %r" % expr)
