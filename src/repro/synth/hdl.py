"""HDL export: Verilog testbench generation from the specification.

Paper, Section 6: "Other efforts have been devoted to map asynchronous
specifications into standard HDLs aiming at the simulation and validation
with commercial tools [27]."

Given the specification STG, :func:`generate_testbench` emits a behavioural
Verilog testbench that

* drives each circuit *input* along a canonical firing trace of the
  specification (with configurable stimulus delay);
* waits for and checks each expected circuit *output* edge;
* reports PASS/FAIL at the end of the programmed number of cycles.

Together with :meth:`repro.synth.netlist.Netlist.to_verilog` this gives a
self-checking simulation setup for any commercial Verilog simulator; the
structure (stimulus order, expected edges) is validated against the
library's own verifier by the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ModelError
from ..stg.stg import STG
from ..stg.waveform import canonical_trace
from ..synth.netlist import Netlist


def stimulus_plan(spec: STG,
                  trace: Optional[Sequence[str]] = None) -> List[tuple]:
    """The testbench schedule: ``(kind, signal, value)`` per trace event,
    where kind is "drive" (input) or "expect" (output edge)."""
    if trace is None:
        trace = canonical_trace(spec)
    plan = []
    for tname in trace:
        event = spec.event_of(tname)
        if event.is_dummy:
            continue
        value = 1 if event.is_rising else 0
        kind = "drive" if spec.type_of(event.signal).value == "input" \
            else "expect"
        plan.append((kind, event.signal, value))
    return plan


def generate_testbench(spec: STG, netlist: Netlist,
                       cycles: int = 4,
                       stimulus_delay: int = 5,
                       timeout: int = 1000,
                       name: Optional[str] = None) -> str:
    """Self-checking Verilog testbench for ``netlist`` against ``spec``."""
    if set(spec.outputs) - set(netlist.gates):
        raise ModelError("netlist does not drive all specification outputs")
    plan = stimulus_plan(spec)
    module = (name or (spec.name + "_tb")).replace("-", "_")
    dut = netlist.name.replace("-", "_")
    inputs = spec.inputs
    outputs = spec.outputs
    lines = [
        "`timescale 1ns/1ps",
        "module %s;" % module,
    ]
    for s in inputs:
        lines.append("  reg %s;" % s)
    for s in outputs:
        lines.append("  wire %s;" % s)
    lines.append("  integer errors;")
    ports = ", ".join(".%s(%s)" % (s, s) for s in inputs + outputs)
    lines.append("  %s dut(%s);" % (dut, ports))
    lines.append("")
    lines.append("  task expect_edge(input expected, input actual,"
                 " input [8*16:1] label);")
    lines.append("    begin")
    lines.append("      if (actual !== expected) begin")
    lines.append("        $display(\"FAIL: %0s\", label);")
    lines.append("        errors = errors + 1;")
    lines.append("      end")
    lines.append("    end")
    lines.append("  endtask")
    lines.append("")
    lines.append("  initial begin")
    lines.append("    errors = 0;")
    for s in inputs:
        lines.append("    %s = 0;" % s)
    lines.append("    #%d;" % stimulus_delay)
    lines.append("    repeat (%d) begin" % cycles)
    for kind, signal, value in plan:
        if kind == "drive":
            lines.append("      %s = %d; #%d;" % (signal, value,
                                                  stimulus_delay))
        else:
            edge = "posedge" if value else "negedge"
            lines.append("      fork : wait_%s_%d" % (signal, value))
            lines.append("        @(%s %s) disable wait_%s_%d;"
                         % (edge, signal, signal, value))
            lines.append("        begin #%d; $display(\"TIMEOUT waiting"
                         " %s -> %d\"); errors = errors + 1;"
                         " disable wait_%s_%d; end"
                         % (timeout, signal, value, signal, value))
            lines.append("      join")
            lines.append("      expect_edge(1'b%d, %s, \"%s=%d\");"
                         % (value, signal, signal, value))
    lines.append("    end")
    lines.append("    if (errors == 0) $display(\"PASS\");")
    lines.append("    else $display(\"FAIL: %0d errors\", errors);")
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)
