"""Logic synthesis of speed-independent circuits from STGs (paper
Section 3)."""

from .netlist import Gate, GateKind, Netlist
from .nextstate import (
    NextStateFunction,
    derive_all_next_state_functions,
    derive_next_state_function,
    next_state_table,
)
from .complex_gate import equations, synthesize_complex_gates
from .latch import (
    check_monotonous_cover,
    excitation_covers,
    monotonicity_report,
    synthesize_gc,
    synthesize_sr,
)
from .hdl import generate_testbench, stimulus_plan
from .csc import (
    InsertionCandidate,
    enumerate_insertions,
    resolve_by_concurrency_reduction,
    resolve_csc,
)

__all__ = [
    "Gate", "GateKind", "Netlist",
    "NextStateFunction", "derive_all_next_state_functions",
    "derive_next_state_function", "next_state_table",
    "equations", "synthesize_complex_gates",
    "check_monotonous_cover", "excitation_covers", "monotonicity_report",
    "synthesize_gc", "synthesize_sr",
    "generate_testbench", "stimulus_plan",
    "InsertionCandidate", "enumerate_insertions",
    "resolve_by_concurrency_reduction", "resolve_csc",
]
