"""Latch-based synthesis: generalized C-elements and RS latches
(paper, Sections 3.2–3.4, Figure 8).

Instead of one complex gate per signal, each signal is implemented as a
latch (C-element or RS latch) with separate *set* and *reset* excitation
functions:

* the set function must cover ``ER(z+)`` and be 0 on ``OFF(z)``
  (= ``ER(z-) ∪ QR(z-)``); it is free on ``QR(z+)`` and on unreachable
  codes;
* dually for the reset function.

This is the *monotonous cover* architecture of [1, 14]: if the chosen
covers rise and fall monotonically along every execution path, the
two-level-logic + latch implementation is hazard-free.  A static
sufficient check (:func:`check_monotonous_cover`) is provided; the
:mod:`repro.verify` composition is the authoritative hazard check used by
the tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from ..boolmin.cube import Cube, cube_contains, minterm_to_int
from ..boolmin.expr import BoolExpr, from_cubes
from ..boolmin.quine_mccluskey import minimize
from ..stg.signals import FALL, RISE
from ..stg.stg import STG
from ..ts.state_graph import StateGraph, build_state_graph
from .netlist import Gate, GateKind, Netlist


def excitation_covers(sg: StateGraph, signal: str) -> Tuple[List[Cube], List[Cube]]:
    """Minimized set and reset covers for a signal.

    Returns ``(set_cubes, reset_cubes)`` over ``sg.signal_order``.
    """
    er_plus = {minterm_to_int(sg.code(s))
               for s in sg.excitation_region(signal, RISE)}
    er_minus = {minterm_to_int(sg.code(s))
                for s in sg.excitation_region(signal, FALL)}
    qr_plus = {minterm_to_int(sg.code(s))
               for s in sg.quiescent_region(signal, RISE)}
    qr_minus = {minterm_to_int(sg.code(s))
                for s in sg.quiescent_region(signal, FALL)}
    n = len(sg.signal_order)
    unreachable = set(range(1 << n)) - er_plus - er_minus - qr_plus - qr_minus
    if er_plus & er_minus:
        raise SynthesisError(
            "signal %r is both rising and falling for the same code — "
            "CSC violation" % signal)
    set_cubes = minimize(sorted(er_plus), sorted(qr_plus | unreachable), n)
    reset_cubes = minimize(sorted(er_minus), sorted(qr_minus | unreachable), n)
    return set_cubes, reset_cubes


def synthesize_gc(sg_or_stg, name: Optional[str] = None) -> Netlist:
    """Generalized C-element netlist: one gC per non-input signal."""
    sg = _as_sg(sg_or_stg)
    stg = sg.stg
    netlist = Netlist(name or (stg.name + "_gc"), inputs=stg.inputs)
    for signal in stg.noninput_signals:
        set_cubes, reset_cubes = excitation_covers(sg, signal)
        netlist.add(Gate.c_element(
            signal,
            from_cubes(set_cubes, sg.signal_order),
            from_cubes(reset_cubes, sg.signal_order),
        ))
    netlist.validate()
    return netlist


def synthesize_sr(sg_or_stg, name: Optional[str] = None,
                  dominance: str = "reset") -> Netlist:
    """RS-latch netlist (Figure 8(b) uses the reset-dominant variant)."""
    sg = _as_sg(sg_or_stg)
    stg = sg.stg
    netlist = Netlist(name or (stg.name + "_sr"), inputs=stg.inputs)
    for signal in stg.noninput_signals:
        set_cubes, reset_cubes = excitation_covers(sg, signal)
        netlist.add(Gate.sr_latch(
            signal,
            from_cubes(set_cubes, sg.signal_order),
            from_cubes(reset_cubes, sg.signal_order),
            dominance=dominance,
        ))
    netlist.validate()
    return netlist


def check_monotonous_cover(sg: StateGraph, signal: str,
                           cover: Sequence[Cube],
                           direction: str = RISE) -> List[str]:
    """Static sufficient conditions for a monotonous cover.

    For a set cover (``direction == RISE``) of signal ``z``, checks along
    every SG arc ``s -> s'``:

    * the cover value may rise only when entering ``ER(z+)``;
    * the cover value may fall only inside ``QR(z+)`` (i.e. after ``z+``
      has fired) or when leaving it;
    * the cover is 1 on all of ``ER(z+)`` and 0 on ``ER(z-) ∪ QR(z-)``.

    Returns a list of human-readable violation descriptions (empty when the
    cover is monotonous).  Dual conditions apply for reset covers.
    """
    er = sg.excitation_region(signal, direction)
    opposite = FALL if direction == RISE else RISE
    er_opp = sg.excitation_region(signal, opposite)
    qr = sg.quiescent_region(signal, direction)
    qr_opp = sg.quiescent_region(signal, opposite)

    def cover_value(state) -> int:
        code = sg.code(state)
        return 1 if any(cube_contains(c, code) for c in cover) else 0

    violations: List[str] = []
    for state in sg.states:
        if state in er and not cover_value(state):
            violations.append("cover misses ER state %r" % (state,))
        if (state in er_opp or state in qr_opp) and cover_value(state):
            violations.append("cover intersects OFF state %r" % (state,))
    for state in sg.states:
        v = cover_value(state)
        for event, succ in sg.ts.successors(state):
            w = cover_value(succ)
            if v == 0 and w == 1 and succ not in er:
                violations.append(
                    "cover rises on %r -> %r (%s) outside ER(%s%s)"
                    % (state, succ, event, signal, direction))
            if v == 1 and w == 0 and state not in qr:
                violations.append(
                    "cover falls on %r -> %r (%s) before %s%s fired"
                    % (state, succ, event, signal, direction))
    return violations


def monotonicity_report(sg_or_stg) -> Dict[str, List[str]]:
    """Monotonous-cover violations of the minimized set/reset covers of
    every non-input signal (empty lists everywhere = all monotonous)."""
    sg = _as_sg(sg_or_stg)
    report: Dict[str, List[str]] = {}
    for signal in sg.stg.noninput_signals:
        set_cubes, reset_cubes = excitation_covers(sg, signal)
        report[signal] = (
            check_monotonous_cover(sg, signal, set_cubes, RISE)
            + check_monotonous_cover(sg, signal, reset_cubes, FALL)
        )
    return report


def _as_sg(sg_or_stg) -> StateGraph:
    if isinstance(sg_or_stg, STG):
        return build_state_graph(sg_or_stg)
    return sg_or_stg
