"""Binary-coded state graphs of STGs (paper, Sections 1.4 and 3.2).

A *state graph* (SG) is the reachability graph of an STG with every state
labelled by a binary vector of signal values.  The labelling is computed by
parity propagation from the initial state; failure to find a consistent
labelling (rising/falling transitions of some signal do not alternate)
raises :class:`~repro.errors.ConsistencyError`.

The SG also provides the region machinery of Section 3.2:

* ``ER(z+)`` / ``ER(z-)`` — positive/negative *excitation regions*: states
  in which a ``z+`` (``z-``) transition is enabled;
* ``QR(z+)`` / ``QR(z-)`` — *quiescent regions*: states where z is stable
  at 1 (0);
* the *next-state value* of a signal in a state (the incompletely
  specified function that logic synthesis minimises).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ConsistencyError
from ..stg.signals import FALL, RISE, SignalEvent
from ..stg.stg import STG
from .builder import DEFAULT_STATE_BOUND, build_reachability_graph
from .transition_system import State, TransitionSystem


class StateGraph:
    """A reachability graph of an STG with binary signal codes."""

    def __init__(self, stg: STG, ts: TransitionSystem,
                 signal_order: Optional[Sequence[str]] = None):
        self.stg = stg
        self.ts = ts
        self.signal_order: List[str] = (
            list(signal_order) if signal_order is not None else stg.signals
        )
        if set(self.signal_order) != set(stg.signals):
            raise ConsistencyError("signal_order must be a permutation of the"
                                   " STG's signals")
        self._index = {s: i for i, s in enumerate(self.signal_order)}
        self.codes: Dict[State, Tuple[int, ...]] = {}
        self.initial_values: Dict[str, int] = {}
        self._enabled_events: Dict[State, List[SignalEvent]] = {}
        self._assign_codes()

    # ------------------------------------------------------------------ #
    # code assignment
    # ------------------------------------------------------------------ #

    def _assign_codes(self) -> None:
        """Parity propagation on integer bitvectors.

        Parities are packed into a single int per state (bit ``i`` is the
        switching parity of ``signal_order[i]``), the same bitvector trick
        the compiled reachability engine uses for markings, so propagating
        an event is one XOR instead of tuple surgery.  The public
        ``codes`` mapping still holds per-signal tuples.
        """
        n = len(self.signal_order)
        # event metadata per transition name, resolved once
        event_bit: Dict[str, Tuple[SignalEvent, int, bool]] = {}
        for tname in self.ts.events:
            event = self.stg.event_of(tname)
            if event.is_dummy:
                event_bit[tname] = (event, -1, False)
            else:
                event_bit[tname] = (event, self._index[event.signal],
                                    event.is_rising)
        parity: Dict[State, int] = {self.ts.initial: 0}
        init: Dict[str, Tuple[int, str]] = {}  # signal -> (value, witness)
        stack = [self.ts.initial]
        while stack:
            state = stack.pop()
            p = parity[state]
            for tname, succ in self.ts.successors(state):
                event, idx, rising = event_bit[tname]
                if idx < 0:
                    q = p
                else:
                    bit = (p >> idx) & 1
                    q = p ^ (1 << idx)
                    # the source value of the signal is fixed by direction:
                    # a+ requires value 0 before, so init = parity (since
                    # value = init XOR parity); a- requires value 1 before.
                    required = bit if rising else 1 - bit
                    prev = init.get(event.signal)
                    if prev is None:
                        init[event.signal] = (required, tname)
                    elif prev[0] != required:
                        raise ConsistencyError(
                            "signal %r: transitions %r and %r imply different"
                            " initial values — rising/falling edges do not"
                            " alternate" % (event.signal, prev[1], tname)
                        )
                known = parity.get(succ)
                if known is not None:
                    if known != q:
                        raise ConsistencyError(
                            "state %r reached with different switching"
                            " parities — inconsistent STG" % (succ,)
                        )
                else:
                    parity[succ] = q
                    stack.append(succ)
        self.initial_values = {
            s: init.get(s, (0, ""))[0] for s in self.signal_order
        }
        init_vec = tuple(self.initial_values[s] for s in self.signal_order)
        # decode packed parities back to per-signal tuples; memoized by
        # parity word since distinct states share few distinct parities
        decoded: Dict[int, Tuple[int, ...]] = {}
        for state, p in parity.items():
            code = decoded.get(p)
            if code is None:
                code = tuple(iv ^ ((p >> i) & 1)
                             for i, iv in enumerate(init_vec))
                decoded[p] = code
            self.codes[state] = code

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> List[State]:
        return self.ts.states

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def initial(self) -> State:
        return self.ts.initial

    def code(self, state: State) -> Tuple[int, ...]:
        """Binary code of a state (ordered by ``signal_order``)."""
        return self.codes[state]

    def value(self, state: State, signal: str) -> int:
        """Value of a signal in a state."""
        return self.codes[state][self._index[signal]]

    def enabled_events(self, state: State) -> List[SignalEvent]:
        """Signal events labelling outgoing arcs of a state (memoized —
        the region queries below scan these per signal)."""
        cached = self._enabled_events.get(state)
        if cached is None:
            cached = sorted(
                {self.stg.event_of(t) for t in self.ts.enabled(state)},
                key=lambda e: e.sort_key(),
            )
            self._enabled_events[state] = cached
        return cached

    def enabled_signals(self, state: State,
                        noninput_only: bool = False) -> Set[Tuple[str, str]]:
        """Set of ``(signal, direction)`` pairs enabled in a state."""
        result = set()
        for event in self.enabled_events(state):
            if event.is_dummy:
                continue
            if noninput_only and not self.stg.type_of(event.signal).is_noninput:
                continue
            result.add(event.base())
        return result

    def code_str(self, state: State,
                 groups: Optional[Sequence[Sequence[str]]] = None,
                 mark_enabled: bool = True) -> str:
        """Render a state code like the paper's Figure 4: ``"10.11*.0"``.

        ``groups`` optionally partitions the signals with dots; enabled
        signals get an asterisk after their bit when ``mark_enabled``.
        """
        if groups is None:
            groups = [self.signal_order]
        enabled = {s for s, _ in self.enabled_signals(state)} if mark_enabled \
            else set()
        chunks = []
        for group in groups:
            bits = []
            for s in group:
                bits.append(str(self.value(state, s)))
                if s in enabled:
                    bits.append("*")
            chunks.append("".join(bits))
        return ".".join(chunks)

    def states_by_code(self) -> Dict[Tuple[int, ...], List[State]]:
        """Group states by binary code (the key map for USC/CSC checks)."""
        groups: Dict[Tuple[int, ...], List[State]] = {}
        for state, code in self.codes.items():
            groups.setdefault(code, []).append(state)
        return groups

    # ------------------------------------------------------------------ #
    # excitation and quiescent regions (Section 3.2)
    # ------------------------------------------------------------------ #

    def excitation_region(self, signal: str, direction: str) -> Set[State]:
        """``ER(z+)`` or ``ER(z-)``: states where a transition of the signal
        in the given direction is enabled."""
        result = set()
        for state in self.ts.states:
            for s, d in self.enabled_signals(state):
                if s == signal and d == direction:
                    result.add(state)
                    break
        return result

    def quiescent_region(self, signal: str, direction: str) -> Set[State]:
        """``QR(z+)``: states where z is stable 1 (``QR(z-)``: stable 0)."""
        stable_value = 1 if direction == RISE else 0
        opposite = FALL if direction == RISE else RISE
        er_opp = self.excitation_region(signal, opposite)
        return {
            state for state in self.ts.states
            if self.value(state, signal) == stable_value and state not in er_opp
        }

    def next_value(self, state: State, signal: str) -> int:
        """The next-state value of a signal in a state (Section 3.2):

        * 1 in ``ER(z+) ∪ QR(z+)``,
        * 0 in ``ER(z-) ∪ QR(z-)``.
        """
        value = self.value(state, signal)
        for s, d in self.enabled_signals(state):
            if s == signal:
                return 1 if d == RISE else 0
        return value

    def excited(self, state: State, signal: str) -> bool:
        """True iff the signal's next value differs from its current value —
        i.e. the state is in an excitation region of the signal."""
        return self.next_value(state, signal) != self.value(state, signal)


def build_state_graph(stg: STG,
                      max_states: int = DEFAULT_STATE_BOUND,
                      signal_order: Optional[Sequence[str]] = None,
                      require_safe: bool = True,
                      engine: str = "auto") -> StateGraph:
    """Build the binary-coded state graph of an STG.

    Raises :class:`~repro.errors.UnboundedError` for non-safe STGs
    (pass ``require_safe=False`` for k-bounded nets, e.g. after dummy
    contraction) and :class:`~repro.errors.ConsistencyError` for
    inconsistent ones.  ``engine`` selects the reachability engine —
    ``"auto"``, ``"compiled"``, ``"naive"`` or ``"bdd"`` all yield the
    same graph, while the query-only ``"sat"`` and ``"portfolio"``
    engines raise; see
    :func:`~repro.ts.builder.build_reachability_graph` (and
    :mod:`repro.portfolio` for the racing layer).
    """
    ts = build_reachability_graph(stg, max_states=max_states,
                                  require_safe=require_safe, engine=engine)
    return StateGraph(stg, ts, signal_order=signal_order)
