"""Abstract transition systems (paper, Section 1.4).

A Transition System (TS) is a directed graph whose arcs are labelled with
events.  TSs generated from Petri nets have markings as states (then called
reachability graphs); labelling states with binary signal codes turns them
into state graphs (:mod:`repro.ts.state_graph`).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import ModelError

State = Hashable
Event = str


class TransitionSystem:
    """A labelled transition system with a distinguished initial state."""

    def __init__(self, initial: State):
        self.initial: State = initial
        self._succ: Dict[State, List[Tuple[Event, State]]] = {initial: []}
        self._pred: Dict[State, List[Tuple[Event, State]]] = {initial: []}
        self.events: Set[Event] = set()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_state(self, state: State) -> None:
        """Add a state (idempotent)."""
        if state not in self._succ:
            self._succ[state] = []
            self._pred[state] = []

    def add_arc(self, source: State, event: Event, target: State) -> None:
        """Add an arc; creates endpoint states as needed."""
        self.add_state(source)
        self.add_state(target)
        self._succ[source].append((event, target))
        self._pred[target].append((event, source))
        self.events.add(event)

    @classmethod
    def from_adjacency(cls, initial: State,
                       adjacency: Dict[State, List[Tuple[Event, State]]]
                       ) -> "TransitionSystem":
        """Bulk constructor from a complete adjacency map.

        States are inserted in the mapping's iteration order (``initial``
        first); arcs keep their per-state list order.  This is the fast
        path used by the compiled reachability engine — equivalent to
        calling :meth:`add_arc` per arc, minus the per-arc bookkeeping.
        """
        ts = cls(initial)
        succ = ts._succ
        pred = ts._pred
        events = ts.events
        for state in adjacency:
            if state not in succ:
                succ[state] = []
                pred[state] = []
        for state, arcs in adjacency.items():
            out = succ[state]
            for event, target in arcs:
                if target not in succ:
                    succ[target] = []
                    pred[target] = []
                out.append((event, target))
                pred[target].append((event, state))
                events.add(event)
        return ts

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> List[State]:
        """All states (insertion order)."""
        return list(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, state: State) -> bool:
        return state in self._succ

    def successors(self, state: State) -> List[Tuple[Event, State]]:
        """Outgoing arcs ``(event, target)`` of a state."""
        return list(self._succ[state])

    def predecessors(self, state: State) -> List[Tuple[Event, State]]:
        """Incoming arcs ``(event, source)`` of a state."""
        return list(self._pred[state])

    def enabled(self, state: State) -> List[Event]:
        """Events labelling some outgoing arc of ``state`` (sorted)."""
        return sorted({e for e, _ in self._succ[state]})

    def arcs(self) -> Iterable[Tuple[State, Event, State]]:
        """Iterate over all arcs."""
        for s, succs in self._succ.items():
            for e, t in succs:
                yield (s, e, t)

    def arc_count(self) -> int:
        """Total number of arcs."""
        return sum(len(v) for v in self._succ.values())

    def is_deterministic(self) -> bool:
        """No state has two outgoing arcs with the same event."""
        for succs in self._succ.values():
            events = [e for e, _ in succs]
            if len(events) != len(set(events)):
                return False
        return True

    def states_with_event(self, event: Event) -> List[State]:
        """Source states of arcs labelled ``event`` (the excitation region
        of the event in region terminology)."""
        return [s for s, succs in self._succ.items()
                if any(e == event for e, _ in succs)]

    def fire(self, state: State, event: Event) -> State:
        """The (unique) successor of ``state`` under ``event``."""
        targets = [t for e, t in self._succ[state] if e == event]
        if not targets:
            raise ModelError("event %r not enabled in state %r" % (event, state))
        if len(set(targets)) > 1:
            raise ModelError("nondeterministic event %r in state %r"
                             % (event, state))
        return targets[0]

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def relabel(self, mapping: Callable[[Event], Event]) -> "TransitionSystem":
        """New TS with every event relabelled through ``mapping``."""
        ts = TransitionSystem(self.initial)
        for s in self._succ:
            ts.add_state(s)
        for s, e, t in self.arcs():
            ts.add_arc(s, mapping(e), t)
        return ts

    def restricted_to(self, keep: Set[State]) -> "TransitionSystem":
        """Sub-TS induced by ``keep`` (must contain the initial state)."""
        if self.initial not in keep:
            raise ModelError("restriction must keep the initial state")
        ts = TransitionSystem(self.initial)
        for s in self._succ:
            if s in keep:
                ts.add_state(s)
        for s, e, t in self.arcs():
            if s in keep and t in keep:
                ts.add_arc(s, e, t)
        return ts

    def reachable_part(self) -> "TransitionSystem":
        """Sub-TS reachable from the initial state."""
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            s = stack.pop()
            for _, t in self._succ[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return self.restricted_to(seen)

    # ------------------------------------------------------------------ #
    # equivalences
    # ------------------------------------------------------------------ #

    def bisimilar(self, other: "TransitionSystem") -> bool:
        """Strong bisimilarity of the initial states (partition refinement
        on the disjoint union)."""
        # disjoint-union state space
        union: List[Tuple[int, State]] = [(0, s) for s in self._succ]
        union += [(1, s) for s in other._succ]
        systems = (self, other)

        def succs(tagged: Tuple[int, State]):
            tag, s = tagged
            return [(e, (tag, t)) for e, t in systems[tag]._succ[s]]

        # initial partition: single block
        block_of: Dict[Tuple[int, State], int] = {u: 0 for u in union}
        changed = True
        while changed:
            changed = False
            signatures: Dict[Tuple[int, State], FrozenSet] = {}
            for u in union:
                signatures[u] = frozenset(
                    (e, block_of[v]) for e, v in succs(u)
                )
            # refine
            keys: Dict[Tuple[int, FrozenSet], int] = {}
            new_block: Dict[Tuple[int, State], int] = {}
            for u in union:
                key = (block_of[u], signatures[u])
                if key not in keys:
                    keys[key] = len(keys)
                new_block[u] = keys[key]
            if new_block != block_of:
                block_of = new_block
                changed = True
        return block_of[(0, self.initial)] == block_of[(1, other.initial)]

    def trace_equivalent(self, other: "TransitionSystem") -> bool:
        """Language equality for deterministic TSs (synchronous product
        walk); raises :class:`ModelError` if either TS is nondeterministic."""
        if not (self.is_deterministic() and other.is_deterministic()):
            raise ModelError("trace equivalence requires determinism")
        seen = {(self.initial, other.initial)}
        stack = [(self.initial, other.initial)]
        while stack:
            a, b = stack.pop()
            ea = {e: t for e, t in self._succ[a]}
            eb = {e: t for e, t in other._succ[b]}
            if set(ea) != set(eb):
                return False
            for e, ta in ea.items():
                pair = (ta, eb[e])
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)
        return True

    def __repr__(self):
        return "TransitionSystem(|S|=%d, |E|=%d, |A|=%d)" % (
            len(self), len(self.events), self.arc_count())
