"""Transition systems, reachability graphs and binary-coded state graphs
(paper Section 1.4)."""

from .builder import ENGINES, build_reachability_graph, choose_engine
from .state_graph import StateGraph, build_state_graph
from .transition_system import TransitionSystem

__all__ = [
    "ENGINES",
    "TransitionSystem",
    "build_reachability_graph",
    "choose_engine",
    "StateGraph",
    "build_state_graph",
]
