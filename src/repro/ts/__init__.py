"""Transition systems, reachability graphs and binary-coded state graphs
(paper Section 1.4)."""

from .builder import build_reachability_graph
from .state_graph import StateGraph, build_state_graph
from .transition_system import TransitionSystem

__all__ = [
    "TransitionSystem",
    "build_reachability_graph",
    "StateGraph",
    "build_state_graph",
]
