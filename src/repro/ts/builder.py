"""Reachability-graph construction (the "token game" of Section 1.2-1.4).

Builds a :class:`~repro.ts.transition_system.TransitionSystem` whose states
are markings and whose arcs are labelled with transition names.  For safe
nets a violation of 1-safeness raises
:class:`~repro.errors.UnboundedError`.

This is the hub of the unified engine framework (see ``docs/engines.md``
for the user guide).  Three **graph-building** engines are provided:

* ``"compiled"`` — the bitvector engine of
  :mod:`repro.petri.compiled`: markings are machine ints, enabling is two
  bitwise ops, and the enabled set is maintained incrementally across
  firings.  Requires an ordinary (weight-1) net and a safe initial
  marking.
* ``"bdd"`` — the symbolic engine of :mod:`repro.bdd.symbolic`: a
  partitioned-relation frontier fixpoint first computes the reachable
  set as a characteristic function (deciding 1-safety and the state
  budget *before* any enumeration), then materialises it explicitly.
  Requires an ordinary net and a safe initial marking.
* ``"naive"`` — the original dict-backed token game; works for any
  weighted net and, with ``require_safe=False``, for k-bounded ones.

``engine="auto"`` (the default) delegates to :func:`choose_engine`, which
picks the compiled engine whenever it is applicable and falls back to the
naive one otherwise.  All graph-building engines produce **bit-identical**
transition systems: the same states, the same arcs in the same insertion
order (BFS level order, transitions fired in sorted name order per
state), so every downstream consumer — state-graph codes, regions, CSC,
synthesis, verification — is oblivious to the choice.

The fifth engine name, ``"sat"``, is reserved for the query-based
verification path of :mod:`repro.sat`: it never builds the graph, so
requesting it here raises :class:`~repro.errors.ModelError` with a
pointer to :mod:`repro.sat.queries` (``reach_marking``,
``find_deadlock``, ``csc_conflict``, ``prove_deadlock_free``, ...).
The ``"bdd"`` engine has query variants too
(:mod:`repro.bdd.queries`: ``reachable_count``, ``find_deadlock``,
``csc_conflict_chf``) that answer without materialising anything —
prefer those over graph construction when only the answer is needed.

The sixth name, ``"portfolio"``, is likewise query-only: it names the
fault-tolerant orchestration layer of :mod:`repro.portfolio`, which
*races* the other engines in worker processes (per-task deadlines,
retry-with-backoff, degradation to cheaper engines) and cross-validates
the winner — see ``docs/portfolio.md``.  Requesting it here raises
:class:`~repro.errors.ModelError` with a pointer to
:mod:`repro.portfolio` (``check_deadlock``, ``check_reach``,
``check_csc``, ``check_consistency``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .. import obs
from ..bdd.symbolic import SymbolicReachability
from ..budgets import DEFAULT_STATE_BOUND
from ..errors import ModelError, StateExplosionError, UnboundedError
from ..petri.compiled import compile_net, supports_compilation
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.token_game import enabled_transitions, fire
from ..stg.stg import STG
from .transition_system import TransitionSystem

ENGINES = ("auto", "compiled", "naive", "bdd", "sat", "portfolio")


def choose_engine(model: Union[PetriNet, STG],
                  initial: Optional[Marking] = None,
                  require_safe: bool = True,
                  purpose: str = "graph") -> Union[str, Tuple[str, ...]]:
    """The ``engine="auto"`` selection heuristic, exposed for callers.

    ``purpose="graph"`` answers "which engine should *build* the
    transition system": ``"compiled"`` whenever the net is ordinary with
    a safe initial marking (markings fit machine ints; ~5-8x faster than
    the dict token game), else ``"naive"`` (the only engine covering
    weighted arcs and k-bounded exploration).

    ``purpose="query"`` answers "which engine should answer a question
    about the state space without materialising it": ``"bdd"``
    (:mod:`repro.bdd.queries` — exact fixpoint counts, deadlocks, CSC
    characteristic functions) when the net is ordinary and safely marked,
    else ``"sat"`` (:mod:`repro.sat.queries` — bounded search and
    k-induction).  Query engines keep working at sizes where every
    graph-building engine exceeds its state budget.

    ``purpose="portfolio"`` answers "which engines should the
    :mod:`repro.portfolio` layer race, and in what slot order" — the
    only purpose returning a *tuple*, ordered by predicted win: the SAT
    query engine first (cheapest definitive answers on the library
    corpus), then ``"bdd"`` when the net is in the symbolic domain
    (ordinary arcs, safe initial marking), then the graph engine that
    ``purpose="graph"`` would pick as the exhaustive anchor.
    """
    net = model.net if isinstance(model, STG) else model
    if initial is None:
        initial = net.initial_marking
    if purpose == "graph":
        if require_safe and supports_compilation(net, initial):
            return "compiled"
        return "naive"
    if purpose == "query":
        if net.has_ordinary_arcs() and initial.is_safe():
            return "bdd"
        return "sat"
    if purpose == "portfolio":
        schedule = ["sat"]
        if net.has_ordinary_arcs() and initial.is_safe():
            schedule.append("bdd")
        schedule.append(choose_engine(net, initial,
                                      require_safe=require_safe,
                                      purpose="graph"))
        return tuple(schedule)
    raise ModelError("unknown purpose %r (expected 'graph', 'query' or"
                     " 'portfolio')" % purpose)


def build_reachability_graph(model: Union[PetriNet, STG],
                             max_states: int = DEFAULT_STATE_BOUND,
                             require_safe: bool = True,
                             initial: Optional[Marking] = None,
                             engine: str = "auto") -> TransitionSystem:
    """Breadth-first reachability graph of a Petri net or STG.

    Arc labels are transition names (for an STG these are the canonical
    event strings such as ``"LDS+"`` or ``"LDS+/2"``).

    ``engine`` selects the exploration engine: ``"auto"``, ``"compiled"``,
    ``"naive"`` or ``"bdd"`` build the graph (bit-identically); ``"sat"``
    and ``"portfolio"`` are query-only and raise with a pointer to
    :mod:`repro.sat.queries` / :mod:`repro.portfolio`.
    See the module docstring and ``docs/engines.md``.  Requesting the
    compiled or bdd engine for a model outside its domain raises
    :class:`ModelError`.

    When :func:`repro.obs.enabled`, every build runs under an
    ``engine.build`` span tagged with the resolved engine and net,
    counting ``states`` / ``arcs`` and gauging ``states_per_sec``
    (see ``docs/observability.md``).
    """
    net = model.net if isinstance(model, STG) else model
    if initial is None:
        initial = net.initial_marking
    if engine == "auto":
        engine = choose_engine(net, initial, require_safe=require_safe)
    if engine == "compiled":
        if not require_safe:
            raise ModelError(
                "compiled engine only explores safe state spaces"
                " (require_safe=False needs engine='naive')")
        return _traced_build(
            "compiled", net,
            lambda: _build_compiled(net, initial, max_states))
    if engine == "naive":
        return _traced_build(
            "naive", net,
            lambda: _build_naive(net, initial, max_states, require_safe))
    if engine == "bdd":
        if not require_safe:
            raise ModelError(
                "bdd engine only explores safe state spaces"
                " (require_safe=False needs engine='naive')")
        return _traced_build(
            "bdd", net, lambda: _build_bdd(net, initial, max_states))
    if engine == "sat":
        # the SAT engine answers *queries*, it never materialises the
        # graph — asking it for the full graph is a usage error
        raise ModelError(
            "engine='sat' answers targeted queries without building the"
            " reachability graph; use repro.sat.queries (reach_marking,"
            " find_deadlock, csc_conflict, ...) or repro.bdd.queries"
            " instead of build_reachability_graph")
    if engine == "portfolio":
        # the portfolio races query engines; it never builds the graph
        raise ModelError(
            "engine='portfolio' races query engines with deadlines and"
            " degradation; use repro.portfolio (check_deadlock,"
            " check_reach, check_csc, check_consistency) instead of"
            " build_reachability_graph")
    raise ModelError(
        "unknown engine %r (expected one of %s)" % (engine, ENGINES))


def _traced_build(engine: str, net: PetriNet, build) -> TransitionSystem:
    """Run one graph-builder thunk under an ``engine.build`` span.

    Disabled, this is one boolean check plus the plain ``build()`` call
    — the graph is never re-measured; enabled, the span records the
    ``states`` / ``arcs`` counters and a ``states_per_sec`` gauge.
    """
    if not obs.enabled():
        return build()
    with obs.span("engine.build", engine=engine, net=net.name) as span:
        ts = build()
        states = len(ts)
        span.add("states", states)
        span.add("arcs", ts.arc_count())
        elapsed = span.elapsed()
        if elapsed > 0.0:
            span.set_gauge("states_per_sec", states / elapsed)
    return ts


def _build_compiled(net: PetriNet, initial: Marking,
                    max_states: int) -> TransitionSystem:
    """Bitvector BFS with incremental enabled-set maintenance."""
    compiled = compile_net(net, initial)
    root = compiled.initial
    pre_masks = compiled.pre_masks
    post_masks = compiled.post_masks
    names = compiled.transitions
    enabled_after = compiled.enabled_after

    # BFS entirely on integer states; arcs recorded as transition indices.
    arcs_of = {root: []}
    seen = {root}
    frontier = [(root, compiled.enabled_mask(root))]
    # live heartbeat progress for portfolio workers (repro.obs.remote):
    # the provider reads the growing seen-set, so it costs nothing here
    tracking = obs.enabled()
    if tracking:
        obs.push_progress(lambda: {"states": len(seen)})
    try:
        while frontier:
            next_frontier = []
            for code, enabled in frontier:
                arcs = arcs_of[code]
                bits = enabled
                while bits:
                    low = bits & -bits
                    bits ^= low
                    index = low.bit_length() - 1
                    stripped = code & ~pre_masks[index]
                    post = post_masks[index]
                    conflict = stripped & post
                    if conflict:
                        raise compiled.unbounded_error(code, index, conflict)
                    succ = stripped | post
                    arcs.append((index, succ))
                    if succ not in seen:
                        if len(seen) >= max_states:
                            raise StateExplosionError(
                                "reachability graph exceeded %d states"
                                % max_states,
                                bound=max_states, states=len(seen))
                        seen.add(succ)
                        arcs_of[succ] = []
                        next_frontier.append(
                            (succ, enabled_after(enabled, index, succ)))
            frontier = next_frontier
    finally:
        if tracking:
            obs.pop_progress()

    # Decode once per state and materialise the TransitionSystem in the
    # exact insertion order the naive engine would have produced:
    # discovery (BFS) order for states, sorted transition order per state.
    decode = compiled.decode
    marking_of = {code: decode(code) for code in arcs_of}
    adjacency = {
        marking_of[code]: [(names[index], marking_of[succ])
                           for index, succ in arcs]
        for code, arcs in arcs_of.items()
    }
    return TransitionSystem.from_adjacency(marking_of[root], adjacency)


def _build_bdd(net: PetriNet, initial: Marking,
               max_states: int) -> TransitionSystem:
    """Symbolic fixpoint first, explicit materialisation second."""
    sym = SymbolicReachability(net, initial=initial)
    return sym.to_transition_system(max_states)


def _build_naive(net: PetriNet, initial: Marking, max_states: int,
                 require_safe: bool) -> TransitionSystem:
    """The original dict-backed token game (any weights, k-bounded nets)."""
    ts = TransitionSystem(initial)
    frontier = [initial]
    seen = {initial}
    tracking = obs.enabled()
    if tracking:
        obs.push_progress(lambda: {"states": len(seen)})
    try:
        while frontier:
            next_frontier = []
            for marking in frontier:
                for t in enabled_transitions(net, marking):
                    succ = fire(net, marking, t, check=False)
                    if require_safe and not succ.is_safe():
                        offenders = [p for p, n in succ.items() if n > 1]
                        raise UnboundedError(
                            "firing %r from %r violates 1-safeness at %r"
                            % (t, marking, offenders)
                        )
                    ts.add_arc(marking, t, succ)
                    if succ not in seen:
                        if len(seen) >= max_states:
                            raise StateExplosionError(
                                "reachability graph exceeded %d states"
                                % max_states,
                                bound=max_states, states=len(seen)
                            )
                        seen.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
    finally:
        if tracking:
            obs.pop_progress()
    return ts
