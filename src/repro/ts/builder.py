"""Reachability-graph construction (the "token game" of Section 1.2-1.4).

Builds a :class:`~repro.ts.transition_system.TransitionSystem` whose states
are markings and whose arcs are labelled with transition names.  For safe
nets a violation of 1-safeness raises
:class:`~repro.errors.UnboundedError`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import StateExplosionError, UnboundedError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.token_game import enabled_transitions, fire
from ..stg.stg import STG
from .transition_system import TransitionSystem

DEFAULT_STATE_BOUND = 1_000_000


def build_reachability_graph(model: Union[PetriNet, STG],
                             max_states: int = DEFAULT_STATE_BOUND,
                             require_safe: bool = True,
                             initial: Optional[Marking] = None) -> TransitionSystem:
    """Breadth-first reachability graph of a Petri net or STG.

    Arc labels are transition names (for an STG these are the canonical
    event strings such as ``"LDS+"`` or ``"LDS+/2"``).
    """
    net = model.net if isinstance(model, STG) else model
    if initial is None:
        initial = net.initial_marking
    ts = TransitionSystem(initial)
    frontier = [initial]
    seen = {initial}
    while frontier:
        next_frontier = []
        for marking in frontier:
            for t in enabled_transitions(net, marking):
                succ = fire(net, marking, t, check=False)
                if require_safe and not succ.is_safe():
                    offenders = [p for p, n in succ.items() if n > 1]
                    raise UnboundedError(
                        "firing %r from %r violates 1-safeness at %r"
                        % (t, marking, offenders)
                    )
                ts.add_arc(marking, t, succ)
                if succ not in seen:
                    if len(seen) >= max_states:
                        raise StateExplosionError(
                            "reachability graph exceeded %d states" % max_states
                        )
                    seen.add(succ)
                    next_frontier.append(succ)
        frontier = next_frontier
    return ts
