"""Relative-timing constraints and timing-driven concurrency reduction
(paper, Section 5).

Two uses of timing information from the paper:

* **assumptions** prune the state space: "timing constraints always reduce
  the set of reachable states and hence increase the number of don't care
  states ... this concurrency reduction does not introduce new dependencies
  between signals since it is fully based on timing, not on logic
  ordering";
* **requirements** are exported to the physical level: logic is optimised
  *as if* an ordering held, and the physical tools must guarantee the
  separation (Figure 11(b): enable ``LDS-`` right after ``DSr-`` under the
  requirement ``sep(D-, LDS-) < 0``).

A :class:`LazySTG` bundles an STG with its separation annotations — the
paper's "lazy PN" back-annotation of Figure 10(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..stg.stg import STG
from ..ts.state_graph import StateGraph, build_state_graph


@dataclass(frozen=True)
class SeparationConstraint:
    """``sep(early, late) < 0``: event ``early`` always occurs before
    ``late`` (events given as signal-event strings such as ``"D-"``)."""

    early: str
    late: str
    kind: str = "assumption"  # or "requirement"

    def __str__(self):
        return "sep(%s,%s)<0 [%s]" % (self.early, self.late, self.kind)

    def as_priority(self) -> Tuple[str, str]:
        """The (early, late) pair consumed by the verifier's priorities."""
        return (self.early, self.late)


@dataclass
class LazySTG:
    """An STG with relational timing annotations (a lazy PN, Fig. 10(b))."""

    stg: STG
    constraints: List[SeparationConstraint] = field(default_factory=list)

    def describe(self) -> str:
        """The .g text with timing annotations appended as comments."""
        from ..stg.gformat import write_g

        lines = [write_g(self.stg).rstrip()]
        for c in self.constraints:
            lines.append("# timing: %s" % c)
        return "\n".join(lines) + "\n"

    def priorities(self) -> List[Tuple[str, str]]:
        """(early, late) pairs for the verifier."""
        return [c.as_priority() for c in self.constraints]


def apply_timing_assumption(stg: STG, early: str, late: str) -> STG:
    """Concurrency reduction from a timing assumption: add the ordering
    place ``early -> late``.

    The place's initial marking is chosen automatically: the variant that
    keeps the net live and 1-safe is returned (unmarked preferred).
    Raises :class:`ReproError` if neither variant works.
    """
    from ..petri.properties import is_live, is_safe

    last_error: Optional[str] = None
    for marked in (False, True):
        candidate = stg.add_ordering_arc(early, late, initially_marked=marked)
        try:
            if is_safe(candidate.net) and is_live(candidate.net):
                return candidate
            last_error = "candidate with marked=%s not safe+live" % marked
        except ReproError as exc:
            last_error = str(exc)
    raise ReproError(
        "timing assumption %s -> %s cannot be applied: %s"
        % (early, late, last_error))


def timed_state_graph(stg: STG,
                      assumptions: Sequence[Tuple[str, str]]) -> StateGraph:
    """State graph of the STG under timing assumptions (each an
    ``(early, late)`` pair applied via :func:`apply_timing_assumption`)."""
    current = stg
    for early, late in assumptions:
        current = apply_timing_assumption(current, early, late)
    return build_state_graph(current)
