"""Maximum time separation of events in timed marked graphs
(paper, Sections 2.1 and 5, ref [12] Hulgaard et al.).

Model: a live safe **marked graph** whose transitions carry delay intervals
``[d_min, d_max]`` (time from enabling to firing, max-plus semantics):

    τ(t, k) = max over input places p (τ(producer(p), k - m0(p))) + d(t)

The *maximum separation* ``sep(a_i, b_j) = max over delay choices of
(τ(a, i) − τ(b, j))`` is computed **exactly** on a finite unrolling:

For a fixed source-to-``a`` path ``P``, the objective
``Σ_P d − τ_b(d)`` is non-decreasing in ``d_v`` for ``v ∈ P`` (raising it
adds 1 to the first term and at most 1 to the second) and non-increasing
for ``v ∉ P`` — so the maximising assignment is ``d = max`` on ``P`` and
``d = min`` elsewhere, and::

    sep(a, b) = max over paths P ending at a of [ Σ_P d_max − τ_b(d_P) ]

Paths are enumerated explicitly (fine for the controller-sized graphs of
the paper); cyclic behaviour is handled by unrolling occurrences until the
separation value stabilises across successive occurrence indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import ModelError
from ..petri.net import PetriNet
from ..petri.structure import is_marked_graph

Occurrence = Tuple[str, int]


@dataclass
class TimedMarkedGraph:
    """A marked graph with per-transition delay intervals."""

    net: PetriNet
    delays: Dict[str, Tuple[float, float]]

    def __post_init__(self):
        if not is_marked_graph(self.net):
            raise ModelError("time separation analysis requires a marked graph")
        for t in self.net.transitions:
            if t not in self.delays:
                raise ModelError("missing delay interval for transition %r" % t)
            lo, hi = self.delays[t]
            if lo < 0 or hi < lo:
                raise ModelError("bad delay interval %r for %r"
                                 % (self.delays[t], t))

    def dependencies(self) -> List[Tuple[str, str, int]]:
        """Edges ``(producer, consumer, tokens)`` through each place."""
        edges = []
        for p in sorted(self.net.places):
            (producer,) = self.net.preset(p)
            (consumer,) = self.net.postset(p)
            edges.append((producer, consumer, self.net.places[p].tokens))
        return edges


class UnrolledGraph:
    """Acyclic occurrence graph of a timed marked graph.

    Node ``(t, k)`` is the k-th firing of ``t`` (k >= 0); the edge through
    place ``p`` with ``m`` initial tokens links ``(producer, k - m)`` to
    ``(consumer, k)``.  Occurrences with no predecessors are enabled at
    time 0.
    """

    def __init__(self, tmg: TimedMarkedGraph, horizon: int):
        self.tmg = tmg
        self.horizon = horizon
        self.preds: Dict[Occurrence, List[Occurrence]] = {}
        edges = tmg.dependencies()
        for k in range(horizon):
            for t in sorted(tmg.net.transitions):
                node = (t, k)
                self.preds[node] = []
        for producer, consumer, tokens in edges:
            for k in range(horizon):
                j = k - tokens
                if j >= 0:
                    self.preds[(consumer, k)].append((producer, j))
        # topological order (Kahn); a live marked graph unrolls to a DAG
        succs: Dict[Occurrence, List[Occurrence]] = {n: [] for n in self.preds}
        indeg: Dict[Occurrence, int] = {n: 0 for n in self.preds}
        for node, preds in self.preds.items():
            for p in preds:
                succs[p].append(node)
                indeg[node] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        self.topo: List[Occurrence] = []
        while ready:
            node = ready.pop()
            self.topo.append(node)
            for s in succs[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(self.topo) != len(self.preds):
            raise ModelError("unrolled graph is cyclic — the marked graph "
                             "has a token-free cycle (not live)")

    def delay(self, node: Occurrence, use_max: bool) -> float:
        """One endpoint of the node's delay interval."""
        lo, hi = self.tmg.delays[node[0]]
        return hi if use_max else lo

    def earliest_latest(self, use_max: bool) -> Dict[Occurrence, float]:
        """Firing times with all delays at min (or max): one extreme corner."""
        times: Dict[Occurrence, float] = {}
        for node in self.topo:
            base = max((times[p] for p in self.preds[node]), default=0.0)
            times[node] = base + self.delay(node, use_max)
        return times

    def firing_time(self, target: Occurrence,
                    on_path: Set[Occurrence]) -> float:
        """τ(target) with delays at max on ``on_path`` and min elsewhere."""
        times: Dict[Occurrence, float] = {}
        for node in self.topo:
            base = max((times[p] for p in self.preds[node]), default=0.0)
            times[node] = base + self.delay(node, node in on_path)
        return times[target]

    def paths_to(self, target: Occurrence,
                 limit: int = 200_000) -> Iterator[Tuple[Occurrence, ...]]:
        """All maximal backward paths (source .. target), bounded."""
        count = 0
        stack: List[List[Occurrence]] = [[target]]
        while stack:
            path = stack.pop()
            node = path[-1]
            preds = self.preds[node]
            if not preds:
                count += 1
                if count > limit:
                    raise ModelError("path enumeration limit exceeded")
                yield tuple(reversed(path))
                continue
            for p in preds:
                stack.append(path + [p])


def max_separation_unrolled(tmg: TimedMarkedGraph,
                            a: Occurrence, b: Occurrence,
                            horizon: Optional[int] = None) -> float:
    """Exact ``max(τ(a) − τ(b))`` on the unrolled occurrence graph."""
    if horizon is None:
        horizon = max(a[1], b[1]) + 1
    graph = UnrolledGraph(tmg, horizon)
    best = None
    for path in graph.paths_to(a):
        on_path = set(path)
        sum_max = sum(graph.delay(v, True) for v in path)
        tb = graph.firing_time(b, on_path)
        value = sum_max - tb
        if best is None or value > best:
            best = value
    if best is None:
        raise ModelError("no path to occurrence %r" % (a,))
    return best


def max_separation(tmg: TimedMarkedGraph, a: str, b: str,
                   occurrence_offset: int = 0,
                   start: int = 2, max_unroll: int = 12,
                   tolerance: float = 1e-9) -> float:
    """Steady-state maximum separation ``max(τ(a_k+offset) − τ(b_k))``.

    Computed for increasing occurrence index ``k`` until two successive
    values agree (the separation of a strongly connected timed marked
    graph is eventually periodic — Hulgaard et al.).
    """
    previous: Optional[float] = None
    value: Optional[float] = None
    for k in range(start, max_unroll):
        ka = k + occurrence_offset
        if ka < 0 or k < 0:
            continue
        value = max_separation_unrolled(tmg, (a, ka), (b, k),
                                        horizon=max(ka, k) + 1)
        if previous is not None and abs(value - previous) <= tolerance:
            return value
        previous = value
    if value is None:
        raise ModelError("no occurrence index explored")
    return value


def validates_assumption(tmg: TimedMarkedGraph, early: str, late: str,
                         occurrence_offset: int = 0) -> bool:
    """True iff ``sep(early, late) < 0`` holds for the given delays — i.e.
    the relative-timing assumption used for logic optimisation is justified
    by the physical delays (the Section 5 flow)."""
    return max_separation(tmg, early, late,
                          occurrence_offset=occurrence_offset) < 0
