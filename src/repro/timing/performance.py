"""Performance analysis of timed marked graphs (paper, Section 2.1:
"performance analysis and separation between events is required for
determining latency and throughput of the device").

The steady-state **cycle time** of a strongly connected timed marked graph
equals its maximum cycle ratio::

    max over cycles C of ( Σ_{t in C} delay(t) / Σ_{p in C} m0(p) )

computed here by parametric binary search with Bellman–Ford positive-cycle
detection (robust and simple; Howard's policy iteration would be faster
but the controllers in scope are tiny).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from .separation import TimedMarkedGraph


def _edges(tmg: TimedMarkedGraph, use_max: bool) -> List[Tuple[str, str, float, int]]:
    """(producer, consumer, delay(consumer), tokens) per place."""
    result = []
    for producer, consumer, tokens in tmg.dependencies():
        lo, hi = tmg.delays[consumer]
        result.append((producer, consumer, hi if use_max else lo, tokens))
    return result


def _has_positive_cycle(nodes: Sequence[str],
                        edges: Sequence[Tuple[str, str, float, int]],
                        ratio: float) -> bool:
    """Is there a cycle with Σdelay − ratio·Σtokens > 0 (longest-path BF)?"""
    dist = {n: 0.0 for n in nodes}
    for _ in range(len(nodes)):
        changed = False
        for u, v, d, m in edges:
            w = d - ratio * m
            if dist[u] + w > dist[v] + 1e-12:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            return False
    return True


def cycle_time(tmg: TimedMarkedGraph, use_max: bool = True,
               tolerance: float = 1e-9) -> float:
    """Maximum cycle ratio = steady-state cycle time (worst case with
    ``use_max``; best case with min delays otherwise)."""
    nodes = sorted(tmg.net.transitions)
    edges = _edges(tmg, use_max)
    token_edges = [e for e in edges if e[3] > 0]
    if not token_edges:
        raise ModelError("marked graph has no tokens — no steady state")
    lo = 0.0
    hi = sum(d for _, _, d, _ in edges) + 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def critical_cycle(tmg: TimedMarkedGraph,
                   use_max: bool = True) -> Tuple[float, List[str]]:
    """The cycle time together with one critical cycle (transition list).

    The cycle is recovered by running Bellman–Ford at a ratio slightly
    below the optimum and walking the predecessor chain.
    """
    ratio = cycle_time(tmg, use_max)
    nodes = sorted(tmg.net.transitions)
    edges = _edges(tmg, use_max)
    eps = max(ratio, 1.0) * 1e-7
    target = ratio - eps
    dist = {n: 0.0 for n in nodes}
    pred: Dict[str, Optional[str]] = {n: None for n in nodes}
    cycle_node = None
    for _ in range(len(nodes) + 1):
        cycle_node = None
        for u, v, d, m in edges:
            w = d - target * m
            if dist[u] + w > dist[v] + 1e-12:
                dist[v] = dist[u] + w
                pred[v] = u
                cycle_node = v
        if cycle_node is None:
            break
    if cycle_node is None:
        # ratio is exactly achieved but not exceeded; fall back to any
        # token-carrying cycle found by DFS through predecessors
        return ratio, []
    # walk back n steps to enter the cycle, then collect it
    node = cycle_node
    for _ in range(len(nodes)):
        node = pred[node] or node
    cycle = [node]
    cursor = pred[node]
    while cursor is not None and cursor != node:
        cycle.append(cursor)
        cursor = pred[cursor]
    cycle.reverse()
    return ratio, cycle


def throughput(tmg: TimedMarkedGraph) -> float:
    """Steady-state throughput (1 / worst-case cycle time)."""
    ct = cycle_time(tmg)
    if ct <= 0:
        raise ModelError("non-positive cycle time")
    return 1.0 / ct


def delay_slack(tmg: TimedMarkedGraph, transition: str,
                tolerance: float = 1e-6,
                max_extra: float = 1e6) -> float:
    """How much the transition's max delay can grow before the cycle time
    increases (0 for transitions on a critical cycle).

    Computed by bisection on the extra delay; the paper's Section 5 uses
    exactly this kind of budget when exporting separation requirements to
    the physical level ("the maximal delay of D- is smaller than the
    minimal possible delay of LDS-").
    """
    base = cycle_time(tmg)

    def with_extra(extra: float) -> float:
        delays = dict(tmg.delays)
        lo, hi = delays[transition]
        delays[transition] = (lo, hi + extra)
        return cycle_time(TimedMarkedGraph(tmg.net, delays))

    if with_extra(tolerance * 4) > base + tolerance:
        return 0.0
    lo, hi = 0.0, 1.0
    while with_extra(hi) <= base + tolerance:
        hi *= 2
        if hi > max_extra:
            return float("inf")
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if with_extra(mid) > base + tolerance:
            hi = mid
        else:
            lo = mid
    return lo


def bottleneck_report(tmg: TimedMarkedGraph) -> Dict[str, float]:
    """Slack of every transition (0 = on a critical cycle)."""
    return {t: delay_slack(tmg, t) for t in sorted(tmg.net.transitions)}


def latency(tmg: TimedMarkedGraph, source: str, sink: str,
            horizon: int = 8) -> float:
    """Worst-case source-to-sink separation within a cycle: the maximum of
    ``τ(sink_k) − τ(source_k)`` in steady state (all delays maximal)."""
    from .separation import max_separation

    return max_separation(tmg, sink, source, occurrence_offset=0,
                          max_unroll=horizon)
