"""Event-driven timed simulation of marked graphs.

Complements the exact analyses of :mod:`repro.timing.separation` and
:mod:`repro.timing.performance` with Monte-Carlo estimation: transitions
fire after delays drawn uniformly from their intervals (max-plus
semantics, the same timing model).  Used to cross-validate the analytical
results — simulated separations can never exceed the exact maximum
separation, and the long-run firing rate converges to the analytic
throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ModelError
from .separation import TimedMarkedGraph


@dataclass
class SimulationTrace:
    """Firing times per transition occurrence: ``times[t][k]`` is the time
    of the k-th firing of ``t``."""

    times: Dict[str, List[float]] = field(default_factory=dict)

    def occurrences(self, transition: str) -> List[float]:
        """All firing times of a transition, in order."""
        return self.times.get(transition, [])

    def separation(self, a: str, b: str,
                   occurrence_offset: int = 0) -> List[float]:
        """Observed ``τ(a_{k+offset}) − τ(b_k)`` over the trace."""
        result = []
        ta = self.occurrences(a)
        tb = self.occurrences(b)
        for k in range(len(tb)):
            ka = k + occurrence_offset
            if 0 <= ka < len(ta):
                result.append(ta[ka] - tb[k])
        return result

    def cycle_time_estimate(self, transition: str,
                            skip: int = 2) -> Optional[float]:
        """Average inter-firing time of a transition (skipping warm-up)."""
        t = self.occurrences(transition)
        if len(t) <= skip + 1:
            return None
        window = t[skip:]
        return (window[-1] - window[0]) / (len(window) - 1)


def simulate(tmg: TimedMarkedGraph, cycles: int = 50,
             seed: Optional[int] = None,
             deterministic: Optional[str] = None) -> SimulationTrace:
    """Simulate ``cycles`` firings of every transition.

    ``deterministic`` forces all delays to one interval endpoint
    (``"min"``/``"max"``); otherwise delays are uniform in the interval
    (reproducible via ``seed``).

    Max-plus semantics on the unrolled occurrence graph:
    ``τ(t, k) = max over input places p (τ(producer(p), k - m0(p))) + d``.
    """
    rng = random.Random(seed)
    edges = tmg.dependencies()
    transitions = sorted(tmg.net.transitions)
    preds: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for k in range(cycles):
        for t in transitions:
            preds[(t, k)] = []
    for producer, consumer, tokens in edges:
        for k in range(cycles):
            j = k - tokens
            if j >= 0:
                preds[(consumer, k)].append((producer, j))

    def draw(t: str) -> float:
        lo, hi = tmg.delays[t]
        if deterministic == "min":
            return lo
        if deterministic == "max":
            return hi
        if deterministic is not None:
            raise ModelError("deterministic must be 'min', 'max' or None")
        return rng.uniform(lo, hi)

    # topological evaluation (occurrence index then residual order)
    times: Dict[Tuple[str, int], float] = {}
    pending = dict(preds)
    resolved: Dict[Tuple[str, int], bool] = {}
    order: List[Tuple[str, int]] = []
    indeg = {node: len(ps) for node, ps in pending.items()}
    succs: Dict[Tuple[str, int], List[Tuple[str, int]]] = {
        node: [] for node in pending}
    for node, ps in pending.items():
        for p in ps:
            succs[p].append(node)
    ready = sorted(n for n, d in indeg.items() if d == 0)
    while ready:
        node = ready.pop()
        order.append(node)
        for s in succs[node]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != len(pending):
        raise ModelError("timed simulation requires a live marked graph")
    for node in order:
        base = max((times[p] for p in preds[node]), default=0.0)
        times[node] = base + draw(node[0])

    trace = SimulationTrace()
    for t in transitions:
        trace.times[t] = [times[(t, k)] for k in range(cycles)]
    return trace


def empirical_max_separation(tmg: TimedMarkedGraph, a: str, b: str,
                             occurrence_offset: int = 0,
                             cycles: int = 30, samples: int = 50,
                             seed: int = 0) -> float:
    """Largest observed separation over random delay samples.

    Always a *lower bound* on the exact
    :func:`~repro.timing.separation.max_separation` — asserted by the
    property tests.
    """
    best = float("-inf")
    for i in range(samples):
        trace = simulate(tmg, cycles=cycles, seed=seed + i)
        observed = trace.separation(a, b, occurrence_offset)
        # skip warm-up occurrences
        for value in observed[2:]:
            if value > best:
                best = value
    if best == float("-inf"):
        raise ModelError("no observable occurrences of %r/%r" % (a, b))
    return best
