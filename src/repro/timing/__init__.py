"""Timing: relative-timing constraints, time separation of events,
performance analysis (paper Section 5)."""

from .constraints import (
    LazySTG,
    SeparationConstraint,
    apply_timing_assumption,
    timed_state_graph,
)
from .separation import (
    TimedMarkedGraph,
    UnrolledGraph,
    max_separation,
    max_separation_unrolled,
    validates_assumption,
)
from .performance import (bottleneck_report, critical_cycle, cycle_time,
                          delay_slack, latency, throughput)
from .simulate import SimulationTrace, empirical_max_separation, simulate

__all__ = [
    "LazySTG", "SeparationConstraint", "apply_timing_assumption",
    "timed_state_graph",
    "TimedMarkedGraph", "UnrolledGraph", "max_separation",
    "max_separation_unrolled", "validates_assumption",
    "bottleneck_report", "critical_cycle", "cycle_time", "delay_slack",
    "latency", "throughput",
    "SimulationTrace", "empirical_max_separation", "simulate",
]
