"""The canonical state-space budgets, in one place.

Every exhaustive exploration in the library is bounded by a state
budget so a blow-up surfaces as a structured
:class:`~repro.errors.StateExplosionError` instead of an unbounded
burn.  Historically each call site hardcoded its own default (the
builder and :mod:`repro.petri.properties` said one million, implicit
place detection said 100 000, decomposition said 200 000) and the
numbers drifted independently.  They now all derive from
:data:`DEFAULT_STATE_BOUND` here:

* :data:`DEFAULT_STATE_BOUND` — full reachability-graph construction
  and whole-net property checks (``build_reachability_graph``,
  ``explore``, ``check_implementability``);
* :data:`REDUCTION_STATE_BOUND` — the behavioural implicit-place test
  of :mod:`repro.petri.reductions`, which re-explores after every
  removal and therefore budgets one tenth of the default per pass;
* :data:`DECOMPOSE_STATE_BOUND` — hazard-free decomposition
  (:mod:`repro.tech.decompose`) and spec-level composition
  (:mod:`repro.verify.spec_composition`), which build one state graph
  per candidate and budget one fifth of the default per build;
* :data:`COMPOSE_STATE_BOUND` — circuit-against-specification product
  exploration (:mod:`repro.verify.composition`), whose product spaces
  run larger than either factor and budget one half of the default.

**Override path.**  Every one of these is a keyword default, never a
hard limit: each entry point takes an explicit ``max_states=`` that
wins over the constant (``build_reachability_graph(net,
max_states=10_000_000)``, ``decompose(stg, max_states=...)``,
``remove_implicit_places(net, max_states=...)``).  Processes that need
a different global default can set the ``REPRO_STATE_BOUND``
environment variable before the first ``repro`` import; the derived
budgets scale with it.
"""

from __future__ import annotations

import os

ENV_STATE_BOUND = "REPRO_STATE_BOUND"


def _default_bound() -> int:
    """The process-wide default bound, honouring ``REPRO_STATE_BOUND``."""
    raw = os.environ.get(ENV_STATE_BOUND, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                "%s must be an integer, got %r" % (ENV_STATE_BOUND, raw))
        if value <= 0:
            raise ValueError(
                "%s must be positive, got %d" % (ENV_STATE_BOUND, value))
        return value
    return 1_000_000


#: Default budget for full reachability exploration.
DEFAULT_STATE_BOUND = _default_bound()

#: Budget per implicit-place re-exploration (reductions re-explore after
#: every removal, so each pass gets a tenth of the default).
REDUCTION_STATE_BOUND = max(1, DEFAULT_STATE_BOUND // 10)

#: Budget per candidate state graph during hazard-free decomposition
#: and per composed spec during spec-level composition.
DECOMPOSE_STATE_BOUND = max(1, DEFAULT_STATE_BOUND // 5)

#: Budget for circuit-vs-spec product exploration.
COMPOSE_STATE_BOUND = max(1, DEFAULT_STATE_BOUND // 2)
