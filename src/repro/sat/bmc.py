"""Bounded model checking: find a firing sequence to a bad state.

BMC asks, for growing ``k``: *is there a firing sequence of at most*
``k`` *steps from the initial marking to a state satisfying the target
predicate?*  Each iteration adds one step to the shared unrolling and one
incremental solver call under assumptions — learnt clauses and variable
activities carry over between bounds, which is where the CDCL solver's
incremental interface pays off.

A positive answer comes back as a :class:`Witness` carrying the firing
sequence **and** the replayed markings: every witness is re-executed
through the real token game (:func:`repro.petri.token_game.fire_safe`)
before being returned, so a BMC result is never an artifact of the
encoding.  ``None`` means "no such trace within the bound" — a bounded
verdict, not a proof (for proofs see :mod:`repro.sat.kinduction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from .. import obs
from ..errors import ModelError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.token_game import fire_safe
from ..stg.stg import STG
from .encodings import SafeNetEncoding, STGEncoding
from .solver import ClauseFeeder, Solver

DEFAULT_BOUND = 30

TargetFn = Callable[[SafeNetEncoding, int], Sequence[int]]


@dataclass
class Witness:
    """A concrete counterexample trace found by BMC.

    ``transitions`` is the flattened firing sequence; ``steps`` groups it
    per unrolling step (singletons under interleaving semantics, possibly
    larger sets under the parallel semantics, empty stutter steps already
    dropped); ``markings`` is the replayed trajectory, with
    ``markings[0]`` the initial marking and ``markings[-1]`` the state
    satisfying the target.
    """

    transitions: List[str]
    steps: List[List[str]] = field(repr=False)
    markings: List[Marking] = field(repr=False)
    bound: int = 0

    def __len__(self) -> int:
        return len(self.transitions)

    @property
    def final_marking(self) -> Marking:
        return self.markings[-1]


def replay_witness(net: PetriNet, encoding: SafeNetEncoding, model_value,
                   frame: int) -> Witness:
    """Decode the fired steps of a satisfying assignment and replay them.

    Stutter steps are dropped; every remaining transition is fired through
    :func:`~repro.petri.token_game.fire_safe`, so the returned markings
    are token-game truth, not solver output.  Shared by the BMC loop and
    the two-copy CSC query.
    """
    steps = []
    for step in range(frame):
        fired = encoding.decode_step(model_value, step)
        if fired:
            steps.append(fired)
    marking = net.initial_marking
    markings = [marking]
    transitions: List[str] = []
    for fired in steps:
        for t in fired:
            marking = fire_safe(net, marking, t)
            markings.append(marking)
            transitions.append(t)
    return Witness(transitions=transitions, steps=steps,
                   markings=markings, bound=frame)


class BMC:
    """An incremental bounded-model-checking run over one encoding.

    The encoding's clauses are streamed into a private solver as the
    unrolling grows; :meth:`run` drives the bound loop for a target
    predicate expressed as assumption literals.
    """

    def __init__(self, model: Union[PetriNet, STG],
                 semantics: str = "interleaving",
                 invariants: bool = True,
                 track_consistency: bool = False):
        if isinstance(model, STG):
            self.net = model.net
            self.encoding: SafeNetEncoding = STGEncoding(
                model, semantics=semantics, invariants=invariants,
                track_consistency=track_consistency)
        else:
            if track_consistency:
                raise ModelError(
                    "consistency tracking needs an STG, not a bare net")
            self.net = model
            self.encoding = SafeNetEncoding(
                model, semantics=semantics, invariants=invariants)
        self.solver = Solver()
        self._feed = ClauseFeeder(self.solver, self.encoding.cnf)
        self._feed()

    def solve_at(self, target: TargetFn, frame: int) -> bool:
        """One solver call: can the target hold at exactly ``frame``?"""
        self.encoding.ensure_steps(frame)
        self._feed()
        assumptions = list(target(self.encoding, frame))
        self._feed()  # target construction may add definition clauses
        return self.solver.solve(assumptions)

    def run(self, target: TargetFn, bound: int = DEFAULT_BOUND,
            start: int = 0) -> Optional[Witness]:
        """Search bounds ``start..bound`` for a trace satisfying the target.

        ``target(encoding, frame)`` returns the assumption literals that
        must hold at ``frame`` (it may add auxiliary clauses first).
        Returns a replayed :class:`Witness` or None.

        When :func:`repro.obs.enabled`, the whole bound loop runs under
        a ``sat.bmc`` span counting ``bounds_explored`` (the per-call
        ``sat.solve`` spans nest inside it).
        """
        with obs.span("sat.bmc", net=self.net.name, bound=bound) as span:
            for k in range(start, bound + 1):
                span.add("bounds_explored")
                if self.solve_at(target, k):
                    span.annotate(result="witness", k=k)
                    return self.witness(k)
            span.annotate(result="no-trace")
        return None

    def witness(self, frame: int) -> Witness:
        """Decode and replay the model of the last (SAT) solver call."""
        return replay_witness(self.net, self.encoding,
                              self.solver.model_value, frame)


# ---------------------------------------------------------------------- #
# target predicates
# ---------------------------------------------------------------------- #

def deadlock_target(encoding: SafeNetEncoding, frame: int) -> Sequence[int]:
    """Target: no transition enabled at ``frame``."""
    return [encoding.deadlock_lit(frame)]


def marking_target(target: Marking, partial: bool = False) -> TargetFn:
    """Target factory: the frame equals (or covers, if ``partial``) the
    given marking."""
    def fn(encoding: SafeNetEncoding, frame: int) -> Sequence[int]:
        return encoding.marking_lits(frame, target, partial=partial)
    return fn
