"""k-induction: turn bounded refutation into unbounded proof.

BMC alone can only *find* counterexamples.  k-induction adds the proof
direction: a safety property ``P`` ("no reachable deadlock", "no
reachable bad state") holds in **every** reachable marking if

* **base case** — no trace of length at most ``k`` from the initial
  marking violates ``P`` (a BMC run), and
* **inductive step** — no path of ``k+1`` transitions through *arbitrary*
  markings that satisfies ``P`` in its first ``k+1`` states can violate
  ``P`` in its last state.

The step case is solved on an *unanchored* unrolling (frame 0 is any
marking allowed by the P-invariant constraints, not the initial one) with
the *simple-path* refinement: all frames pairwise distinct.  Without it,
induction would almost never converge (any ``P``-state looping to itself
blocks the proof); with it, ``k`` need never exceed the longest simple
path, so the method is complete for finite state spaces — though the
practical bound cutoff returns :class:`Unknown` long before that.

The verdict is a three-valued result object:

* :class:`Proved` — the property holds in all reachable markings;
* :class:`Refuted` — a replayed counterexample :class:`Witness`;
* :class:`Unknown` — neither within the configured ``max_k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .. import obs
from ..petri.net import PetriNet
from ..stg.stg import STG
from .bmc import BMC, TargetFn, Witness
from .encodings import SafeNetEncoding, STGEncoding
from .solver import ClauseFeeder, Solver

DEFAULT_MAX_K = 15


@dataclass
class Proved:
    """The property holds in every reachable marking (proved at depth k).

    "Reachable" means reachable under the contact-free safe-net
    semantics of the encoding — identical to the token game on 1-safe
    nets, a restriction on unsafe ones (see
    :mod:`repro.sat.encodings`)."""

    k: int

    def __bool__(self):
        return True


@dataclass
class Refuted:
    """A reachable marking violates the property; ``witness`` replays."""

    witness: Witness

    @property
    def k(self) -> int:
        return self.witness.bound

    def __bool__(self):
        return False


@dataclass
class Unknown:
    """No counterexample and no proof up to depth ``k``.

    ``reason`` explains *why* the proof loop gave up, in a stable
    vocabulary so run reports (``repro sat-check --json``) and the
    portfolio degradation ladder can act on it without re-running:

    * ``"step-satisfiable"`` — the bound was reached while the
      inductive step still admitted a spurious path of length ``k+1``
      despite the simple-path refinement (the normal stall: raise
      ``max_k``);
    * ``"bound-reached"`` — the depth loop was cut off before the step
      case was last evaluated (e.g. ``max_k < 0``).
    """

    k: int
    reason: str = "bound-reached"

    def __bool__(self):
        return False


Verdict = Union[Proved, Refuted, Unknown]


class _StepCase:
    """The unanchored inductive-step unrolling with its own solver."""

    def __init__(self, model, semantics: str, invariants: bool):
        if isinstance(model, STG):
            self.encoding: SafeNetEncoding = STGEncoding(
                model, semantics=semantics, invariants=invariants,
                anchor_initial=False)
        else:
            self.encoding = SafeNetEncoding(
                model, semantics=semantics, invariants=invariants,
                anchor_initial=False)
        self.solver = Solver()
        self._feed = ClauseFeeder(self.solver, self.encoding.cnf)

    def holds_at(self, bad: TargetFn, k: int) -> bool:
        """True iff the step case of depth ``k`` is unsatisfiable.

        Checks: frames ``0..k`` good and pairwise distinct, frame ``k+1``
        (= one more step) bad.  The good-frame constraints are asserted
        permanently as the unrolling grows, which keeps the solver fully
        incremental across depths.
        """
        enc = self.encoding
        while enc.steps() < k + 1:
            frame = enc.steps()  # about to gain a successor: mark it good
            bad_lits = bad(enc, frame)
            self._feed()
            # "good" is the negation of the bad *cube*: one clause
            self.solver.add_clause([-lit for lit in bad_lits])
            for j in range(frame):
                enc.distinct_frames(j, frame)
            enc.add_step()
            self._feed()
        assumptions = list(bad(enc, k + 1))
        self._feed()
        return not self.solver.solve(assumptions)


def k_induction(model, bad: TargetFn,
                max_k: int = DEFAULT_MAX_K,
                semantics: str = "interleaving",
                invariants: bool = True) -> Verdict:
    """Prove or refute that no reachable marking satisfies ``bad``.

    ``bad(encoding, frame)`` returns assumption literals describing the
    bad states (e.g. :func:`repro.sat.bmc.deadlock_target`).  Interleaves
    the BMC base case and the inductive step case at each depth.

    When :func:`repro.obs.enabled`, the proof loop runs under a
    ``sat.kinduction`` span counting ``base_calls`` / ``step_calls``
    and tagged with the verdict and final depth.
    """
    base = BMC(model, semantics=semantics, invariants=invariants)
    step = _StepCase(model, semantics=semantics, invariants=invariants)
    reason = "bound-reached"
    with obs.span("sat.kinduction", net=base.net.name,
                  max_k=max_k) as span:
        for k in range(max_k + 1):
            span.add("base_calls")
            if base.solve_at(bad, k):
                span.annotate(verdict="refuted", k=k)
                return Refuted(base.witness(k))
            span.add("step_calls")
            if step.holds_at(bad, k):
                span.annotate(verdict="proved", k=k)
                return Proved(k)
            # the step case was SAT: a spurious path of length k+1
            # survives the simple-path refinement at this depth
            reason = "step-satisfiable"
        span.annotate(verdict="unknown", k=max_k, reason=reason)
    return Unknown(max_k, reason=reason)
