"""User-facing SAT queries: reachability, deadlock, CSC, consistency.

These are the entry points the rest of the library calls.  Each query
answers one targeted question about a net or STG **without building its
state graph** — the whole point of the subsystem (paper, Section 2.2:
state explosion is the obstacle; SMPT's BMC/k-induction is the modern
answer).  Counterexamples are replayed through the token game before
being returned, so callers can hand witness markings straight to the
explicit machinery (e.g. :func:`repro.petri.properties.find_deadlocks`
with its ``markings`` parameter uses the same reporting format for SAT
and explicit results).

Bounded queries (``find_deadlock``, ``reach_marking``, ``csc_conflict``,
``consistency_violation``) return a witness or ``None`` ("nothing within
the bound"); proof queries (``prove_deadlock_free``,
``prove_unreachable``) return the three-valued
:class:`~repro.sat.kinduction.Proved` / ``Refuted`` / ``Unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from .. import obs
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.token_game import enabled_transitions
from ..stg.stg import STG
from .bmc import (
    BMC,
    DEFAULT_BOUND,
    Witness,
    deadlock_target,
    marking_target,
    replay_witness,
)
from .cnf import CNF
from .encodings import STGEncoding, state_equation_refutes
from .kinduction import DEFAULT_MAX_K, Verdict, k_induction
from .solver import ClauseFeeder, Solver


def _net_of(model: Union[PetriNet, STG]) -> PetriNet:
    return model.net if isinstance(model, STG) else model


def _validate_target(net: PetriNet, target: Marking) -> None:
    """Reject unknown places up front, before any screening step can
    mask a typo'd target as an innocuous negative verdict."""
    from ..errors import ModelError

    for p in target.places():
        if p not in net.places:
            raise ModelError("unknown place %r in target marking" % p)


# ---------------------------------------------------------------------- #
# reachability and deadlock
# ---------------------------------------------------------------------- #

def reach_marking(model: Union[PetriNet, STG], target: Marking,
                  bound: int = DEFAULT_BOUND,
                  partial: bool = False,
                  semantics: str = "interleaving") -> Optional[Witness]:
    """A firing sequence reaching ``target`` within ``bound`` steps.

    ``partial=True`` asks for a marking *covering* the target (only the
    marked places are constrained).  Exact queries are first screened by
    the state-equation over-approximation: a target breaking a
    P-invariant is rejected without touching the solver.
    """
    net = _net_of(model)
    _validate_target(net, target)
    if not partial and state_equation_refutes(net, target):
        return None
    bmc = BMC(net, semantics=semantics)
    return bmc.run(marking_target(target, partial=partial), bound)


def find_deadlock(model: Union[PetriNet, STG],
                  bound: int = DEFAULT_BOUND,
                  semantics: str = "interleaving") -> Optional[Witness]:
    """A firing sequence into a dead marking, or None within the bound."""
    bmc = BMC(_net_of(model), semantics=semantics)
    return bmc.run(deadlock_target, bound)


def prove_deadlock_free(model: Union[PetriNet, STG],
                        max_k: int = DEFAULT_MAX_K,
                        semantics: str = "interleaving") -> Verdict:
    """k-induction verdict on deadlock freedom.

    ``Proved`` — no reachable marking is dead; ``Refuted`` — the witness
    trace ends in a dead marking; ``Unknown`` — undecided at ``max_k``.
    """
    return k_induction(_net_of(model), deadlock_target, max_k=max_k,
                       semantics=semantics)


def prove_unreachable(model: Union[PetriNet, STG], target: Marking,
                      max_k: int = DEFAULT_MAX_K,
                      semantics: str = "interleaving") -> Verdict:
    """k-induction verdict on unreachability of an exact marking."""
    net = _net_of(model)
    _validate_target(net, target)
    if state_equation_refutes(net, target):
        from .kinduction import Proved
        return Proved(0)
    return k_induction(net, marking_target(target), max_k=max_k,
                       semantics=semantics)


# ---------------------------------------------------------------------- #
# CSC
# ---------------------------------------------------------------------- #

@dataclass
class SatCSCConflict:
    """A CSC conflict found by BMC: two reachable states with the same
    binary code but different non-input excitation.

    Code equality is established on *parity vectors* (state code =
    initial code XOR parity), so no state-graph construction or initial
    value computation is needed.  Both traces replay from the initial
    marking; the excitation signatures are recomputed in the token game.
    """

    trace_a: Witness
    trace_b: Witness
    enabled_a: FrozenSet[Tuple[str, str]]
    enabled_b: FrozenSet[Tuple[str, str]]

    @property
    def marking_a(self) -> Marking:
        return self.trace_a.final_marking

    @property
    def marking_b(self) -> Marking:
        return self.trace_b.final_marking

    def __str__(self):
        return ("CSC conflict between %r (%s) and %r (%s)"
                % (self.marking_a, sorted("".join(e) for e in self.enabled_a),
                   self.marking_b, sorted("".join(e) for e in self.enabled_b)))


def _noninput_signature(stg: STG,
                        marking: Marking) -> FrozenSet[Tuple[str, str]]:
    """Enabled (signal, direction) pairs of non-input signals."""
    result = set()
    for t in enabled_transitions(stg.net, marking):
        event = stg.event_of(t)
        if event.is_dummy:
            continue
        if stg.type_of(event.signal).is_noninput:
            result.add(event.base())
    return frozenset(result)


def csc_pair_lits(stg: STG, cnf: CNF, enc_a: STGEncoding,
                  enc_b: STGEncoding, frame: int) -> Tuple[list, int]:
    """The CSC constraint over a pair of unrollings at one frame.

    Returns ``(equal_lits, different_lit)``: the literals forcing the two
    copies' parity vectors (hence binary codes) to agree on every signal,
    and the literal true iff some non-input signal's excitation differs.
    :func:`csc_conflict` assumes them per bound; the CLI's ``--dimacs``
    dump asserts them as clauses — one constraint definition for both.
    """
    from ..stg.signals import FALL, RISE

    equal = []
    for s in stg.signals:
        xor = cnf.new_xor(enc_a.parity_var(frame, s),
                          enc_b.parity_var(frame, s))
        equal.append(-xor)
    diffs = []
    for s in stg.signals:
        if not stg.type_of(s).is_noninput:
            continue
        for d in (RISE, FALL):
            diffs.append(cnf.new_xor(enc_a.excitation_lit(frame, s, d),
                                     enc_b.excitation_lit(frame, s, d)))
    return equal, cnf.new_or(diffs)


def csc_conflict(stg: STG, bound: int = DEFAULT_BOUND,
                 semantics: str = "interleaving"
                 ) -> Optional[SatCSCConflict]:
    """Search for a CSC conflict by BMC over a *pair* of unrollings.

    Two independent copies of the token game run from the initial
    marking; the query asks for a bound ``k`` at which their parity
    vectors agree on **every** signal (same binary code) while some
    non-input signal is excited in one copy but not the other.  Thanks to
    stuttering, a bound-``k`` call covers all trace pairs of length at
    most ``k`` each.
    """
    noninput = [s for s in stg.signals if stg.type_of(s).is_noninput]
    if not noninput:
        return None
    cnf = CNF()
    enc_a = STGEncoding(stg, cnf=cnf, semantics=semantics, prefix="A.")
    enc_b = STGEncoding(stg, cnf=cnf, semantics=semantics, prefix="B.")
    solver = Solver()
    feed = ClauseFeeder(solver, cnf)

    with obs.span("sat.csc", net=stg.net.name, bound=bound) as span:
        for k in range(bound + 1):
            span.add("bounds_explored")
            enc_a.ensure_steps(k)
            enc_b.ensure_steps(k)
            # same binary code, different non-input excitation signature
            equal, different = csc_pair_lits(stg, cnf, enc_a, enc_b, k)
            assumptions = equal + [different]
            feed()
            if solver.solve(assumptions):
                span.annotate(result="conflict", k=k)
                trace_a = replay_witness(stg.net, enc_a,
                                         solver.model_value, k)
                trace_b = replay_witness(stg.net, enc_b,
                                         solver.model_value, k)
                return SatCSCConflict(
                    trace_a=trace_a, trace_b=trace_b,
                    enabled_a=_noninput_signature(stg,
                                                  trace_a.final_marking),
                    enabled_b=_noninput_signature(stg,
                                                  trace_b.final_marking))
        span.annotate(result="no-conflict")
    return None


# ---------------------------------------------------------------------- #
# consistency
# ---------------------------------------------------------------------- #

def consistency_violation(stg: STG, bound: int = DEFAULT_BOUND,
                          semantics: str = "interleaving"
                          ) -> Optional[Witness]:
    """A firing sequence on which some signal fires twice in the same
    direction with no opposite transition in between.

    This is the single-trace form of STG inconsistency (the explicit
    checker additionally detects *cross-path* divergence, where two
    branches imply different initial values; a trace witnessing that
    cannot exist on one path, so this query reports the dominant,
    replayable class of violations).  The returned witness ends with the
    offending transition.
    """
    bmc = BMC(stg, semantics=semantics, track_consistency=True)
    encoding = bmc.encoding
    assert isinstance(encoding, STGEncoding)

    with obs.span("sat.consistency", net=stg.net.name,
                  bound=bound) as span:
        for k in range(bound):
            span.add("bounds_explored")
            encoding.ensure_steps(k + 1)
            bmc._feed()
            if bmc.solver.solve([encoding.violation_lit(k)]):
                span.annotate(result="violation", k=k + 1)
                return bmc.witness(k + 1)
        span.annotate(result="no-violation")
    return None
