"""Net-to-CNF encodings: the unrolled token game of a 1-safe net.

This is the translation layer between the Petri-net kernel and the SAT
solver.  A :class:`SafeNetEncoding` unrolls the token game of an ordinary
(weight-1) 1-safe net for a growing number of steps:

* one Boolean *marking variable* per place per frame (``m[i][p]`` — place
  ``p`` carries a token after ``i`` steps);
* one *firing variable* per transition per step (``f[i][t]`` — ``t``
  fires in step ``i``);
* *enabling* clauses ``f[i][t] -> m[i][p]`` for every input place, plus
  *contact-freedom* ``f[i][t] -> not m[i][p]`` for every pure output
  place (safe-net firing semantics — witnesses replay under
  :func:`repro.petri.token_game.fire_safe`);
* *frame axioms*: ``m[i+1][p] <-> produced(p) or (m[i][p] and not
  consumed(p))`` — a place is marked afterwards iff some producer fired,
  or it was marked and no pure consumer fired.

Two step semantics are supported.  ``"interleaving"`` adds an
at-most-one constraint over each step's firing variables (a step fires
one transition or stutters — stuttering makes a bound-``k`` query cover
all shorter traces too).  ``"parallel"`` instead forbids only
*conflicting* pairs — transitions sharing an input or an output place —
so any number of independent transitions fire per step (the
∅-conflict step semantics: every such step replays sequentially in any
order, which keeps witnesses checkable in the token game while reaching
deep states with far fewer frames).

Every frame is additionally constrained by the net's minimal
P-invariants (:func:`repro.petri.structure.p_invariants`) where they
translate to unit or exactly-one clauses: this is the *state-equation
over-approximation* of the reachability set (paper, Section 2.2) pushed
into the CNF, and it is what makes k-induction complete enough to prove
deadlock-freedom on the library nets.  The same invariants power
:func:`state_equation_refutes` — a solver-free unreachability test run
before any unrolling.

The :class:`STGEncoding` subclass adds the signal interpretation needed
by the CSC and consistency queries: per-frame signal *parity* bits (the
binary code of a state relative to the initial code) and a per-signal
rise/fall alternation automaton.

**Scope caveat** — the encoding implements the *contact-free (safe-net)
semantics*: a transition whose firing would put a second token on a
place is simply not fireable.  On 1-safe nets this coincides exactly
with the ordinary token game (locked down by the cross-engine tests);
on a net that is **not** 1-safe the two diverge — the explicit engines
raise :class:`~repro.errors.UnboundedError` where this encoding
silently explores the contact-free restriction, so a ``Proved`` verdict
there speaks about the restricted game only.  Whether a net is 1-safe
is itself a behavioural property (only the *initial* marking can be
checked statically, and is); callers with doubts should confirm
safeness first (:func:`repro.petri.properties.is_safe` or the
Karp-Miller test).  Witness traces are immune to the caveat: every one
is replayed through :func:`~repro.petri.token_game.fire_safe` before
being returned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError, UnboundedError
from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.structure import p_invariants
from ..stg.signals import RISE
from ..stg.stg import STG
from .cnf import CNF

SEMANTICS = ("interleaving", "parallel")


def state_equation_refutes(net: PetriNet, target: Marking) -> bool:
    """Solver-free unreachability test from the P-invariant dual of the
    state equation.

    Every reachable marking conserves the weighted token count of every
    P-invariant; a target that breaks one cannot be reached, no matter the
    bound.  Returns True when the target is *provably unreachable* (False
    means "unknown — ask the solver").
    """
    initial = net.initial_marking
    for inv in p_invariants(net):
        expected = sum(w * initial.get(p) for p, w in inv.items())
        if sum(w * target.get(p) for p, w in inv.items()) != expected:
            return True
    return False


class SafeNetEncoding:
    """Incrementally unrolled CNF encoding of a 1-safe net's token game.

    ``frames()`` is the number of markings encoded so far (initially 1 —
    the anchor frame); :meth:`add_step` appends one transition step.  All
    clauses are appended to :attr:`cnf`; a solver loop feeds them
    incrementally (see :class:`repro.sat.bmc.BMC`).
    """

    def __init__(self, net: PetriNet, cnf: Optional[CNF] = None,
                 semantics: str = "interleaving",
                 invariants: bool = True,
                 anchor_initial: bool = True,
                 initial: Optional[Marking] = None,
                 prefix: str = ""):
        if semantics not in SEMANTICS:
            raise ModelError("unknown step semantics %r (expected one of %s)"
                             % (semantics, SEMANTICS))
        if not net.has_ordinary_arcs():
            raise ModelError(
                "SAT encoding requires an ordinary (weight-1) net")
        if initial is None:
            initial = net.initial_marking
        if not initial.is_safe():
            raise UnboundedError(
                "SAT encoding requires a 1-safe initial marking")
        for p in initial.places():
            if p not in net.places:
                raise ModelError("unknown place %r in initial marking" % p)
        self.net = net
        self.semantics = semantics
        self.cnf = cnf if cnf is not None else CNF()
        self.prefix = prefix
        self.places: List[str] = sorted(net.places)
        self.transitions: List[str] = sorted(net.transitions)
        self._pre: Dict[str, Tuple[str, ...]] = {}
        self._post: Dict[str, Tuple[str, ...]] = {}
        # pure consumers/producers per place (self-loops keep the token)
        self._consumers: Dict[str, List[str]] = {p: [] for p in self.places}
        self._producers: Dict[str, List[str]] = {p: [] for p in self.places}
        for t in self.transitions:
            pre = tuple(sorted(net.pre(t)))
            post = tuple(sorted(net.post(t)))
            self._pre[t] = pre
            self._post[t] = post
            for p in pre:
                if p not in net.post(t):
                    self._consumers[p].append(t)
            for p in post:
                self._producers[p].append(t)
        # per-frame marking vars and per-step firing vars
        self._marking_vars: List[Dict[str, int]] = []
        self._fire_vars: List[Dict[str, int]] = []
        self._enabled_cache: Dict[Tuple[int, str], int] = {}
        self._deadlock_cache: Dict[int, int] = {}
        self._invariants: List[Dict[str, int]] = (
            p_invariants(net) if invariants else [])
        self._initial = initial
        self._push_frame()
        if anchor_initial:
            for p in self.places:
                var = self._marking_vars[0][p]
                self.cnf.add_clause(var if initial.get(p) else -var)

    # ------------------------------------------------------------------ #
    # variables
    # ------------------------------------------------------------------ #

    def frames(self) -> int:
        """Number of marking frames encoded (steps + 1)."""
        return len(self._marking_vars)

    def steps(self) -> int:
        """Number of transition steps encoded."""
        return len(self._fire_vars)

    def marking_var(self, frame: int, place: str) -> int:
        """CNF variable of ``place`` at ``frame``."""
        return self._marking_vars[frame][place]

    def fire_var(self, step: int, transition: str) -> int:
        """CNF variable of ``transition`` firing in ``step``."""
        return self._fire_vars[step][transition]

    def _push_frame(self) -> None:
        frame = len(self._marking_vars)
        self._marking_vars.append({
            p: self.cnf.new_var("%sm%d[%s]" % (self.prefix, frame, p))
            for p in self.places
        })
        self._constrain_invariants(frame)

    def _constrain_invariants(self, frame: int) -> None:
        """Add the invariant clauses that have a direct CNF form."""
        mvars = self._marking_vars[frame]
        for inv in self._invariants:
            if any(w != 1 for w in inv.values()):
                continue
            count = sum(self._initial.get(p) for p in inv)
            lits = [mvars[p] for p in sorted(inv)]
            if count == 0:
                for lit in lits:
                    self.cnf.add_clause(-lit)
            elif count == 1:
                self.cnf.exactly_one(lits)
            elif count == len(lits):
                for lit in lits:
                    self.cnf.add_clause(lit)

    # ------------------------------------------------------------------ #
    # unrolling
    # ------------------------------------------------------------------ #

    def add_step(self) -> int:
        """Unroll one more step; returns the index of the new step."""
        step = len(self._fire_vars)
        cnf = self.cnf
        fire = {
            t: cnf.new_var("%sf%d[%s]" % (self.prefix, step, t))
            for t in self.transitions
        }
        self._fire_vars.append(fire)
        current = self._marking_vars[step]
        self._push_frame()
        succ = self._marking_vars[step + 1]

        for t in self.transitions:
            f = fire[t]
            for p in self._pre[t]:
                cnf.add_clause(-f, current[p])  # enabling
            for p in self._post[t]:
                if p not in self.net.pre(t):
                    cnf.add_clause(-f, -current[p])  # contact-freedom

        if self.semantics == "interleaving":
            cnf.at_most_one([fire[t] for t in self.transitions])
        else:
            self._forbid_conflicting_pairs(fire)

        for p in self.places:
            self._frame_axiom(current[p], succ[p],
                              [fire[t] for t in self._producers[p]],
                              [fire[t] for t in self._consumers[p]])
        return step

    def ensure_steps(self, n: int) -> None:
        """Unroll until at least ``n`` steps are encoded."""
        while self.steps() < n:
            self.add_step()

    def _forbid_conflicting_pairs(self, fire: Dict[str, int]) -> None:
        """∅-conflict parallel step: no two fired transitions may share an
        input place (they would race for its token) or an output place
        (their tokens would collide in a safe net)."""
        ts = self.transitions
        for i in range(len(ts)):
            pre_i = set(self._pre[ts[i]])
            post_i = set(self._post[ts[i]])
            for j in range(i + 1, len(ts)):
                if pre_i.intersection(self._pre[ts[j]]) or \
                        post_i.intersection(self._post[ts[j]]):
                    self.cnf.add_clause(-fire[ts[i]], -fire[ts[j]])

    def _frame_axiom(self, now: int, nxt: int,
                     producers: List[int], consumers: List[int]) -> None:
        """``nxt <-> OR(producers) | (now & ~OR(consumers))``."""
        cnf = self.cnf
        if not producers and not consumers:
            cnf.iff_lit(nxt, now)
            return
        prod = producers[0] if len(producers) == 1 else (
            cnf.new_or(producers) if producers else None)
        cons = consumers[0] if len(consumers) == 1 else (
            cnf.new_or(consumers) if consumers else None)
        if prod is None:
            # nxt <-> now & ~cons
            cnf.add_clause(-nxt, now)
            cnf.add_clause(-nxt, -cons)
            cnf.add_clause(nxt, -now, cons)
        elif cons is None:
            # nxt <-> prod | now
            cnf.add_clause(-nxt, prod, now)
            cnf.add_clause(nxt, -prod)
            cnf.add_clause(nxt, -now)
        else:
            cnf.add_clause(-nxt, prod, now)
            cnf.add_clause(-nxt, prod, -cons)
            cnf.add_clause(nxt, -prod)
            cnf.add_clause(nxt, -now, cons)

    # ------------------------------------------------------------------ #
    # query literals
    # ------------------------------------------------------------------ #

    def enabled_lit(self, frame: int, transition: str) -> int:
        """Literal true iff ``transition`` is enabled (all input places
        marked) at ``frame``; memoized per (frame, transition)."""
        key = (frame, transition)
        lit = self._enabled_cache.get(key)
        if lit is None:
            mvars = self._marking_vars[frame]
            pre = self._pre[transition]
            if len(pre) == 1:
                lit = mvars[pre[0]]
            else:
                lit = self.cnf.new_and([mvars[p] for p in pre])
            self._enabled_cache[key] = lit
        return lit

    def deadlock_lit(self, frame: int) -> int:
        """Literal true iff no transition is enabled at ``frame``."""
        lit = self._deadlock_cache.get(frame)
        if lit is None:
            lit = self.cnf.new_and(
                [-self.enabled_lit(frame, t) for t in self.transitions])
            self._deadlock_cache[frame] = lit
        return lit

    def marking_lits(self, frame: int, target: Marking,
                     partial: bool = False) -> List[int]:
        """Assumption literals pinning ``frame`` to ``target``.

        ``partial`` requires only the marked places (a *cover* query);
        otherwise the frame must equal the target exactly.
        """
        mvars = self._marking_vars[frame]
        lits = []
        for p in self.places:
            tokens = target.get(p)
            if tokens > 1:
                raise UnboundedError(
                    "target marking is not 1-safe at place %r" % p)
            if tokens:
                lits.append(mvars[p])
            elif not partial:
                lits.append(-mvars[p])
        for p in target.places():
            if p not in self.net.places:
                raise ModelError("unknown place %r in target marking" % p)
        return lits

    def distinct_frames(self, i: int, j: int) -> None:
        """Assert that frames ``i`` and ``j`` encode different markings
        (the simple-path constraint of k-induction)."""
        diffs = [
            self.cnf.new_xor(self._marking_vars[i][p],
                             self._marking_vars[j][p])
            for p in self.places
        ]
        self.cnf.add_clause(*diffs)

    # ------------------------------------------------------------------ #
    # model decoding
    # ------------------------------------------------------------------ #

    def decode_marking(self, model_value, frame: int) -> Marking:
        """Read a frame's marking out of a satisfying assignment
        (``model_value`` is :meth:`repro.sat.solver.Solver.model_value`)."""
        mvars = self._marking_vars[frame]
        return Marking({p: 1 for p in self.places if model_value(mvars[p])})

    def decode_step(self, model_value, step: int) -> List[str]:
        """Transitions fired in a step (sorted; [] for a stutter step)."""
        fire = self._fire_vars[step]
        return [t for t in self.transitions if model_value(fire[t])]


class STGEncoding(SafeNetEncoding):
    """A :class:`SafeNetEncoding` with the signal interpretation on top.

    Adds, per frame and per signal:

    * a *parity* bit — the number of this signal's transitions fired so
      far, mod 2.  Two frames carry the same binary code iff their parity
      vectors coincide (state code = initial code XOR parity), which lets
      the CSC query compare codes without knowing the initial values;
    * optionally (``track_consistency=True``) a rise/fall alternation
      automaton: ``seen`` (some event of the signal fired) and ``last``
      (the most recent one was rising), from which a per-step *violation*
      literal flags two same-direction events with no opposite event in
      between — the single-trace form of an STG consistency violation.
    """

    def __init__(self, stg: STG, cnf: Optional[CNF] = None,
                 semantics: str = "interleaving",
                 invariants: bool = True,
                 anchor_initial: bool = True,
                 track_consistency: bool = False,
                 prefix: str = ""):
        self.stg = stg
        self.signals: List[str] = stg.signals
        self.track_consistency = track_consistency
        # transitions grouped by signal/direction, resolved before the
        # base constructor runs the first _push_frame
        self._rising: Dict[str, List[str]] = {s: [] for s in self.signals}
        self._falling: Dict[str, List[str]] = {s: [] for s in self.signals}
        for t in sorted(stg.net.transitions):
            event = stg.event_of(t)
            if event.is_dummy:
                continue
            group = self._rising if event.direction == RISE else self._falling
            group[event.signal].append(t)
        self._parity_vars: List[Dict[str, int]] = []
        self._seen_vars: List[Dict[str, int]] = []
        self._last_vars: List[Dict[str, int]] = []
        self._violation_vars: List[int] = []
        super().__init__(stg.net, cnf=cnf, semantics=semantics,
                         invariants=invariants,
                         anchor_initial=anchor_initial, prefix=prefix)
        # frame 0: parity all zero; alternation automaton empty
        for s in self.signals:
            self.cnf.add_clause(-self._parity_vars[0][s])
            if track_consistency:
                self.cnf.add_clause(-self._seen_vars[0][s])

    # ------------------------------------------------------------------ #

    def _push_frame(self) -> None:
        super()._push_frame()
        frame = self.frames() - 1
        cnf = self.cnf
        self._parity_vars.append({
            s: cnf.new_var("%spar%d[%s]" % (self.prefix, frame, s))
            for s in self.signals
        })
        if self.track_consistency:
            self._seen_vars.append({
                s: cnf.new_var("%sseen%d[%s]" % (self.prefix, frame, s))
                for s in self.signals
            })
            self._last_vars.append({
                s: cnf.new_var("%slast%d[%s]" % (self.prefix, frame, s))
                for s in self.signals
            })

    def add_step(self) -> int:
        step = super().add_step()
        cnf = self.cnf
        fire = self._fire_vars[step]
        violations: List[int] = []
        for s in self.signals:
            rise_lits = [fire[t] for t in self._rising[s]]
            fall_lits = [fire[t] for t in self._falling[s]]
            fired_rise = self._or_lit(rise_lits)
            fired_fall = self._or_lit(fall_lits)
            fired = self._or_lit([lit for lit in (fired_rise, fired_fall)
                                  if lit is not None])
            par, par_next = (self._parity_vars[step][s],
                             self._parity_vars[step + 1][s])
            if fired is None:
                cnf.iff_lit(par_next, par)
            else:
                # parity tracking needs at most one event of the signal
                # per step; interleaving guarantees that already, the
                # parallel semantics does not (two instances of the same
                # signal transition may be structurally independent)
                if self.semantics == "parallel" and \
                        len(rise_lits) + len(fall_lits) > 1:
                    cnf.at_most_one(rise_lits + fall_lits)
                cnf.iff_xor(par_next, par, fired)
            if not self.track_consistency:
                continue
            seen, seen_next = (self._seen_vars[step][s],
                               self._seen_vars[step + 1][s])
            last, last_next = (self._last_vars[step][s],
                               self._last_vars[step + 1][s])
            if fired is None:
                cnf.iff_lit(seen_next, seen)
                cnf.iff_lit(last_next, last)
                continue
            cnf.iff_or(seen_next, [seen, fired])
            # last' = rising fired ? 1 : (falling fired ? 0 : last)
            if fired_rise is not None:
                cnf.implies(fired_rise, last_next)
            if fired_fall is not None:
                cnf.implies(fired_fall, -last_next)
            cnf.add_clause(fired, -last_next, last)
            cnf.add_clause(fired, last_next, -last)
            # two same-direction events without the opposite in between
            if fired_rise is not None:
                violations.append(cnf.new_and([fired_rise, seen, last]))
            if fired_fall is not None:
                violations.append(cnf.new_and([fired_fall, seen, -last]))
        if self.track_consistency:
            self._violation_vars.append(
                self.cnf.new_or(violations) if violations
                else self.cnf.tseitin(("or",)))
        return step

    def _or_lit(self, lits: List[int]) -> Optional[int]:
        if not lits:
            return None
        if len(lits) == 1:
            return lits[0]
        return self.cnf.new_or(lits)

    # ------------------------------------------------------------------ #
    # query literals
    # ------------------------------------------------------------------ #

    def parity_var(self, frame: int, signal: str) -> int:
        """Parity bit of ``signal`` at ``frame``."""
        return self._parity_vars[frame][signal]

    def violation_lit(self, step: int) -> int:
        """Literal: an alternation violation happened in ``step``."""
        if not self.track_consistency:
            raise ModelError("encoding built without track_consistency")
        return self._violation_vars[step]

    def excitation_lit(self, frame: int, signal: str, direction: str) -> int:
        """Literal: some transition of ``signal`` in ``direction`` is
        enabled at ``frame``."""
        group = self._rising if direction == RISE else self._falling
        lits = [self.enabled_lit(frame, t) for t in group[signal]]
        if not lits:
            return self.cnf.tseitin(("or",))  # constant false
        if len(lits) == 1:
            return lits[0]
        return self.cnf.new_or(lits)
